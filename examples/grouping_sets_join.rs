//! GROUPING SETS over a join, with Group By pushdown and `Grp-Tag`
//! (§5.1.1 / Figure 8 of the paper).
//!
//! ```sh
//! cargo run --release -p gbmqo-examples --bin grouping_sets_join
//! ```
//!
//! A lineitem-like fact table joins a small supplier dimension. The
//! analyst asks for GROUPING SETS over fact columns; the example pushes
//! the grouping below the join (sharing work across the pushed-down
//! Group Bys via the GB-MQO optimizer), tags and unions the partial
//! results, joins once, and verifies against the join-then-group plan.

use gbmqo_core::grouping_sets_over_join;
use gbmqo_datagen::{ColumnGen, TableSpec};
use gbmqo_exec::{hash_group_by, hash_join, AggSpec, Engine, ExecMetrics};
use gbmqo_storage::{Catalog, DataType, Field, Schema, Table, TableBuilder, Value};
use std::time::Instant;

fn fact(rows: usize) -> Table {
    TableSpec::new(
        vec![
            ("suppkey".into(), ColumnGen::IntCat { distinct: 100 }),
            (
                "returnflag".into(),
                ColumnGen::Text {
                    distinct: 3,
                    avg_len: 1,
                },
            ),
            (
                "shipmode".into(),
                ColumnGen::Text {
                    distinct: 7,
                    avg_len: 5,
                },
            ),
            (
                "linestatus".into(),
                ColumnGen::Text {
                    distinct: 2,
                    avg_len: 1,
                },
            ),
        ],
        11,
    )
    .generate(rows)
}

fn dimension() -> Table {
    let schema = Schema::new(vec![
        Field::new("suppkey", DataType::Int64),
        Field::new("nation", DataType::Utf8),
    ])
    .unwrap();
    let mut tb = TableBuilder::new(schema);
    for i in 0..100i64 {
        tb.push_row(&[Value::Int(i), Value::str(&format!("nation{}", i % 25))])
            .unwrap();
    }
    tb.finish().unwrap()
}

fn main() {
    let rows = 150_000;
    let mut catalog = Catalog::new();
    catalog.register("fact", fact(rows)).unwrap();
    catalog.register("supplier", dimension()).unwrap();
    let mut engine = Engine::new(catalog);
    println!("fact: {rows} rows; supplier: 100 rows (keyed by suppkey)\n");

    let requests = [
        vec!["returnflag"],
        vec!["shipmode"],
        vec!["linestatus"],
        vec!["returnflag", "shipmode"],
    ];

    let start = Instant::now();
    let pushed =
        grouping_sets_over_join(&mut engine, "fact", "supplier", "suppkey", &requests).unwrap();
    let t_pushed = start.elapsed().as_secs_f64();

    println!("pushed-down plan (§5.1.1):");
    println!(
        "  tagged UNION ALL below the join: {} rows (vs {} fact rows)",
        pushed.tagged_union_rows, rows
    );
    for (tag, result) in &pushed.results {
        println!("  GROUPING SET ({tag:<22}) → {} groups", result.num_rows());
    }

    // Reference: join first, then one Group By per set.
    let fact_t = engine.catalog().table("fact").unwrap().clone();
    let supp_t = engine.catalog().table("supplier").unwrap().clone();
    let mut m = ExecMetrics::new();
    let start = Instant::now();
    let joined = hash_join(&fact_t, &supp_t, &[0], &[0], &mut m).unwrap();
    for req in &requests {
        let cols: Vec<usize> = req
            .iter()
            .map(|c| joined.schema().index_of(c).unwrap())
            .collect();
        let _ = hash_group_by(&joined, &cols, &[AggSpec::count()], &mut m).unwrap();
    }
    let t_direct = start.elapsed().as_secs_f64();

    println!(
        "\npushed-down: {t_pushed:.3}s   join-then-group: {t_direct:.3}s   ({:.2}×)",
        t_direct / t_pushed
    );

    // Verify one set end-to-end.
    let cols = vec![joined.schema().index_of("returnflag").unwrap()];
    let direct = hash_group_by(&joined, &cols, &[AggSpec::count()], &mut m).unwrap();
    let ours = &pushed
        .results
        .iter()
        .find(|(t, _)| t == "returnflag")
        .unwrap()
        .1;
    let norm = |t: &Table| {
        let mut v: Vec<(Value, i64)> = (0..t.num_rows())
            .map(|r| {
                (
                    t.value(r, 0),
                    t.value(r, t.num_columns() - 1).as_int().unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(ours), norm(&direct));
    println!("verified: pushed-down results match join-then-group ✓");
}
