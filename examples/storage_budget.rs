//! Intermediate-storage management (§4.4 of the paper).
//!
//! ```sh
//! cargo run --release -p gbmqo-examples --bin storage_budget
//! ```
//!
//! Shows (1) the breadth-first/depth-first marking that minimizes peak
//! temp-table storage for a fixed plan, and (2) the storage-*constrained*
//! search: as the temp-space budget shrinks, the optimizer trades run
//! time for smaller intermediates until it degenerates to the naive plan.

use gbmqo_core::prelude::*;
use gbmqo_core::schedule::{plan_min_storage, schedule_plan, simulate_peak};
use gbmqo_cost::{CardinalityCostModel, CostModel};
use gbmqo_datagen::{lineitem, LINEITEM_SC_COLUMNS};
use gbmqo_stats::ExactSource;

fn main() {
    let table = lineitem(100_000, 0.0, 3);
    let workload = Workload::single_columns("lineitem", &table, &LINEITEM_SC_COLUMNS).unwrap();
    let mut session = Session::builder()
        .table("lineitem", table.clone())
        .search(SearchConfig::pruned())
        .build()
        .unwrap();

    println!("== unconstrained plan ==");
    let (plan, stats) = session.plan(&workload).unwrap();
    println!("{}", plan.render(&workload.column_names));

    // Predicted minimum peak storage under the model's size estimates.
    let mut d = {
        let mut m2 = CardinalityCostModel::new(ExactSource::new(&table));
        move |s: ColSet| {
            let cols: Vec<usize> = s.iter().collect();
            m2.result_bytes(&cols)
        }
    };
    let predicted = plan_min_storage(&plan, &mut d);
    let steps = schedule_plan(&plan, &mut d);
    let simulated = simulate_peak(&steps, &mut d);
    println!(
        "predicted min peak temp storage: {:.0} bytes (schedule simulates {:.0})",
        predicted, simulated
    );

    let report = session
        .run_plan_scheduled(&plan, &workload, &mut d)
        .unwrap();
    println!(
        "actual executed peak: {} bytes over {} materializations\n",
        report.peak_temp_bytes, report.metrics.tables_materialized
    );

    println!("== storage-constrained search (§4.4.2) ==");
    println!(
        "{:>14}  {:>12}  {:>12}  {:>6}",
        "budget (bytes)", "est. cost", "peak bytes", "temps"
    );
    for budget in [f64::INFINITY, 2_000_000.0, 200_000.0, 20_000.0, 0.0] {
        let config = SearchConfig {
            max_intermediate_bytes: budget.is_finite().then_some(budget),
            ..SearchConfig::pruned()
        };
        let mut model = CardinalityCostModel::new(ExactSource::new(&table));
        let (plan, stats) = GbMqo::with_config(config)
            .plan(&workload, &mut model)
            .unwrap();
        let mut d2 = {
            let mut m2 = CardinalityCostModel::new(ExactSource::new(&table));
            move |s: ColSet| {
                let cols: Vec<usize> = s.iter().collect();
                m2.result_bytes(&cols)
            }
        };
        let report = session
            .run_plan_scheduled(&plan, &workload, &mut d2)
            .unwrap();
        let label = if budget.is_finite() {
            format!("{budget:.0}")
        } else {
            "∞".to_string()
        };
        println!(
            "{label:>14}  {:>12.0}  {:>12}  {:>6}",
            stats.final_cost, report.peak_temp_bytes, report.metrics.tables_materialized
        );
        assert!(
            !budget.is_finite() || (report.peak_temp_bytes as f64) <= budget.max(1.0) * 1.5,
            "executed peak must respect the (estimated) budget"
        );
    }
    println!(
        "\nnote: at budget 0 the search returns the naive plan (cost {:.0})",
        stats.naive_cost
    );
}
