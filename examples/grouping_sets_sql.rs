//! The SQL front end end to end: CUBE and star-join GROUPING SETS
//! statements compiled by `gbmqo-sqlfe` and executed through a
//! `Session`.
//!
//! ```sh
//! cargo run --release -p gbmqo-examples --bin grouping_sets_sql
//! ```
//!
//! Two statements over a generated retail star schema
//! (`sales ⋈ product ⋈ store`):
//!
//! 1. `GROUP BY CUBE (qty, channel, promo)` on the fact table alone —
//!    lowers to a 7-set GB-MQO workload that the greedy optimizer
//!    shares (one scan, pipelined Group Bys), exactly the paper's
//!    multiple-group-by setting.
//! 2. `GROUP BY GROUPING SETS` over the three-table star join with a
//!    dimension filter — the front end pushes fact-side grouping below
//!    the join (§5), so the join and filter run once for all sets.

use gbmqo_core::prelude::*;
use gbmqo_datagen::star;
use gbmqo_sqlfe::{compile, execute, LoweredQuery};

const ROWS: usize = 50_000;

fn run(sql: &str, session: &mut Session, preview: usize) {
    println!("sql> {sql}");
    let lowered = match compile(sql, session.engine().catalog()) {
        Ok(q) => q,
        Err(e) => {
            // Compile errors carry spans; render() draws the caret.
            eprintln!("{}", e.render(sql));
            std::process::exit(1);
        }
    };
    let shape = match &lowered {
        LoweredQuery::Workload { .. } => "single-table workload",
        LoweredQuery::Star { dims, .. } => {
            if dims.is_empty() {
                "filtered fact scan"
            } else {
                "star join with pushed-down grouping"
            }
        }
    };
    println!(
        "  lowered to a {shape}, {} grouping set(s)",
        lowered.sets().len()
    );
    let out = execute(&lowered, session, CacheControl::Default).expect("execute");
    for (tag, table) in &out.results {
        println!("  GROUP BY ({tag}): {} rows", table.num_rows());
    }
    let (tag, first) = &out.results[0];
    println!("  first set ({tag}):");
    for line in first.display(preview).lines() {
        println!("    {line}");
    }
    println!();
}

fn main() {
    println!("generating a {ROWS}-row star schema (sales, product, store) ...\n");
    let schema = star(ROWS, 7);
    let mut builder = Session::builder();
    for (name, table) in schema.tables() {
        builder = builder.table(name, table.clone());
    }
    let mut session = builder
        .mode(ExecutionMode::Parallel)
        .search(SearchConfig::pruned())
        .build()
        .expect("session");

    // 1. A CUBE over low-cardinality fact columns: 2^3 - 1 = 7 sets,
    //    optimized and executed as one shared GB-MQO plan.
    run(
        "SELECT qty, channel, promo, COUNT(*) AS n \
         FROM sales GROUP BY CUBE (qty, channel, promo)",
        &mut session,
        4,
    );

    // 2. GROUPING SETS over the star join, filtered on a dimension
    //    attribute. Grouping columns are fact-side, so the Group Bys
    //    run below the join; the filter and join happen once.
    run(
        "SELECT COUNT(*) AS n FROM sales \
         JOIN product ON sales.prod_key = product.prod_key \
         JOIN store ON sales.store_key = store.store_key \
         WHERE qty >= 5 \
         GROUP BY GROUPING SETS ((prod_key), (store_key), (prod_key, store_key))",
        &mut session,
        4,
    );
}
