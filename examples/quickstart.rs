//! Quickstart: optimize and execute a batch of Group By queries.
//!
//! ```sh
//! cargo run --release -p gbmqo-examples --bin quickstart
//! ```
//!
//! Builds a small TPC-H-like `lineitem`, asks for every single-column
//! Group By (the paper's data-profiling scenario), optimizes the batch
//! with the GB-MQO algorithm through a [`Session`], prints the chosen
//! plan and the equivalent SQL script, executes it with the
//! dependency-parallel executor, and cross-checks the result row counts.

use gbmqo_core::prelude::*;
use gbmqo_core::render_sql;
use gbmqo_datagen::{lineitem, LINEITEM_SC_COLUMNS};

fn main() {
    // 1. A scaled lineitem (the paper uses 6M rows; 50k keeps this demo
    //    instant while preserving the column correlations that matter).
    let table = lineitem(50_000, 0.0, 42);
    println!(
        "lineitem: {} rows × {} columns",
        table.num_rows(),
        table.num_columns()
    );

    // 2. The workload: one Group By per non-float column (12 queries).
    let workload = Workload::single_columns("lineitem", &table, &LINEITEM_SC_COLUMNS).unwrap();
    println!(
        "workload: {} single-column Group By queries\n",
        workload.len()
    );

    // 3. A session: exact statistics + cardinality cost model (the
    //    default), §4.3 pruning, dependency-parallel execution, and a
    //    plan cache for repeated workloads.
    let mut session = Session::builder()
        .table("lineitem", table.clone())
        .search(SearchConfig::pruned())
        .mode(ExecutionMode::Parallel)
        .plan_cache(8)
        .build()
        .unwrap();

    let (plan, stats) = session.plan(&workload).unwrap();
    println!("chosen logical plan (* = requested query):");
    println!("{}", plan.render(&workload.column_names));
    println!(
        "estimated cost: naive {:.0} → optimized {:.0}  ({:.2}× better, {} optimizer calls)\n",
        stats.naive_cost,
        stats.final_cost,
        stats.naive_cost / stats.final_cost,
        stats.optimizer_calls
    );

    // 4. The client-side SQL script (§5.2 of the paper).
    println!("equivalent SQL script:");
    for stmt in render_sql(&plan, &workload) {
        println!("  {stmt}");
    }
    println!();

    // 5. Execute and cross-check.
    let report = session.run_plan(&plan, &workload).unwrap();
    println!("results:");
    for (set, result) in &report.results {
        let names = workload.col_names(*set).join(", ");
        println!("  GROUP BY {names:<16} → {} groups", result.num_rows());
    }
    println!(
        "\nexecuted {} queries, scanned {} rows, peak temp storage {} bytes",
        report.metrics.queries_executed, report.metrics.rows_scanned, report.peak_temp_bytes
    );

    // Sanity: each result's counts must sum to the table size.
    for (set, result) in &report.results {
        let cnt_col = result.num_columns() - 1;
        let total: i64 = (0..result.num_rows())
            .map(|r| result.value(r, cnt_col).as_int().unwrap())
            .sum();
        assert_eq!(total, 50_000, "counts for {set:?} must cover every row");
    }
    println!("verified: every result's counts sum to the row count ✓");

    // 6. The same workload again: the session serves the plan from its
    //    cache, with zero optimizer calls.
    let again = session.grouping_sets(&workload).unwrap();
    assert!(again.stats.cache_hit && again.stats.optimizer_calls == 0);
    let cache = session.cache_stats();
    println!(
        "repeat request: plan served from cache ({} hit / {} miss), {} union rows",
        cache.hits,
        cache.misses,
        again.table.num_rows()
    );
}
