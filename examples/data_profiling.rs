//! Data-quality profiling — the paper's §1 motivating scenario.
//!
//! ```sh
//! cargo run --release -p gbmqo-examples --bin data_profiling
//! ```
//!
//! An analyst wants the value distribution of every column of a sales
//! warehouse (plus a couple of joint distributions to check a suspected
//! key). The example runs the batch three ways — naive, simulated
//! commercial GROUPING SETS, and GB-MQO — and reports wall-clock times
//! and the distribution summaries an analyst would look at.

use gbmqo_core::prelude::*;
use gbmqo_core::{grouping_sets_plan, BaselineKind};
use gbmqo_datagen::{sales, SALES_COLUMNS};
use gbmqo_stats::DistinctEstimator;
use gbmqo_storage::{Table, Value};
use std::time::Instant;

fn run(
    label: &str,
    plan: &LogicalPlan,
    workload: &Workload,
    session: &mut Session,
) -> (f64, Vec<(ColSet, Table)>) {
    let start = Instant::now();
    let report = session.run_plan(plan, workload).unwrap();
    let secs = start.elapsed().as_secs_f64();
    println!(
        "  {label:<22} {secs:>8.3}s   ({} queries, {} temp tables, peak {} KiB)",
        report.metrics.queries_executed,
        report.metrics.tables_materialized,
        report.peak_temp_bytes / 1024
    );
    (secs, report.results)
}

fn main() {
    let rows = 200_000;
    let table = sales(rows, 7);
    println!(
        "sales warehouse: {rows} rows × {} columns\n",
        table.num_columns()
    );

    // Profile every column, plus joint distributions for a candidate key.
    let mut requests: Vec<Vec<&str>> = SALES_COLUMNS.iter().map(|c| vec![*c]).collect();
    requests.push(vec!["store_id", "product_id"]);
    requests.push(vec!["sale_date", "ship_date"]);
    let workload = Workload::new("sales", &table, &SALES_COLUMNS, &requests).unwrap();

    // Optimize with the realistic setup: sampled statistics + the
    // simulated query-optimizer cost model, wired up once by the session.
    let mut session = Session::builder()
        .table("sales", table)
        .cost_model(CostModelSpec::Optimizer {
            sample_size: 5_000,
            estimator: DistinctEstimator::Hybrid,
            seed: 1,
        })
        .search(SearchConfig::pruned())
        .build()
        .unwrap();
    let (plan, stats) = session.plan(&workload).unwrap();

    println!("GB-MQO plan:");
    println!("{}", plan.render(&workload.column_names));

    let naive = LogicalPlan::naive(&workload);
    let (gs_plan, gs_kind) = grouping_sets_plan(&workload);
    println!("timings over {} requested Group Bys:", workload.len());
    let (t_naive, reference) = run("naive (one per query)", &naive, &workload, &mut session);
    let gs_label = match gs_kind {
        BaselineKind::UnionTop => "GROUPING SETS (union)",
        BaselineKind::SharedSort => "GROUPING SETS (sorts)",
    };
    let (t_gs, _) = run(gs_label, &gs_plan, &workload, &mut session);
    let (t_opt, results) = run("GB-MQO", &plan, &workload, &mut session);
    println!(
        "\nspeedup vs naive: {:.2}×;  vs GROUPING SETS: {:.2}×",
        t_naive / t_opt,
        t_gs / t_opt
    );
    println!(
        "(optimization itself issued {} cost-model calls)\n",
        stats.optimizer_calls
    );

    // The analyst's view: distinct counts + top value per column.
    println!("profile:");
    for (set, result) in &results {
        if set.len() != 1 {
            continue;
        }
        let name = workload.col_names(*set)[0];
        let cnt_col = result.num_columns() - 1;
        let mut top_row = 0;
        for r in 0..result.num_rows() {
            if result.value(r, cnt_col).as_int() > result.value(top_row, cnt_col).as_int() {
                top_row = r;
            }
        }
        let top_val = result.value(top_row, 0);
        let top_cnt = result.value(top_row, cnt_col).as_int().unwrap();
        println!(
            "  {name:<14} {:>7} distinct   mode = {} ({:.1}% of rows)",
            result.num_rows(),
            match top_val {
                Value::Null => "NULL".to_string(),
                v => v.to_string(),
            },
            100.0 * top_cnt as f64 / rows as f64
        );
    }

    // Key check: is (store_id, product_id) almost a key? (It shouldn't be.)
    let key_set = workload
        .requests
        .iter()
        .find(|s| s.len() == 2 && workload.col_names(**s).contains(&"store_id"))
        .copied()
        .unwrap();
    let key_groups = results
        .iter()
        .find(|(s, _)| *s == key_set)
        .unwrap()
        .1
        .num_rows();
    println!(
        "\nkey check: (store_id, product_id) has {key_groups} distinct pairs over {rows} rows → {}",
        if key_groups == rows {
            "a key"
        } else {
            "NOT a key"
        }
    );

    // cross-check against the naive reference
    for (set, t) in &results {
        let r = &reference.iter().find(|(s, _)| s == set).unwrap().1;
        assert_eq!(t.num_rows(), r.num_rows(), "row count mismatch for {set:?}");
    }
}
