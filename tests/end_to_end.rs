//! End-to-end integration: generators → optimizer → executor → results,
//! across cost models, statistics sources and datasets.

use gbmqo_core::prelude::*;
use gbmqo_core::render_sql;
use gbmqo_cost::{CardinalityCostModel, IndexSnapshot, OptimizerCostModel};
use gbmqo_datagen::{
    lineitem, neighboring_seq, sales, LINEITEM_SC_COLUMNS, NREF_COLUMNS, SALES_COLUMNS,
};
use gbmqo_integration::{assert_same_results, session_with};
use gbmqo_stats::{CardinalitySource, DistinctEstimator, ExactSource, SampledSource};
use gbmqo_storage::IndexKind;

#[test]
fn lineitem_sc_exact_cardinality_model() {
    let t = lineitem(20_000, 0.0, 1);
    let w = Workload::single_columns("lineitem", &t, &LINEITEM_SC_COLUMNS).unwrap();
    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (plan, stats) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    plan.validate(&w).unwrap();
    assert!(
        stats.final_cost < stats.naive_cost,
        "merging must pay off on lineitem"
    );
    assert!(plan.materialized_count() >= 1);

    let mut session = session_with(t, "lineitem");
    let optimized = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &optimized, "lineitem SC");
    assert_eq!(optimized.results.len(), 12);
}

#[test]
fn lineitem_sc_sampled_optimizer_model() {
    let t = lineitem(20_000, 0.0, 2);
    let w = Workload::single_columns("lineitem", &t, &LINEITEM_SC_COLUMNS).unwrap();
    let source = SampledSource::new(&t, 2_000, DistinctEstimator::Hybrid, 9);
    let mut model = OptimizerCostModel::new(source, IndexSnapshot::none());
    let (plan, stats) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    plan.validate(&w).unwrap();
    assert!(stats.final_cost <= stats.naive_cost);
    // statistics were created lazily and logged
    let log = model.source().creation_log().unwrap();
    assert!(log.count() >= 12, "per-column stats plus merged sets");

    let mut session = session_with(t, "lineitem");
    let optimized = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &optimized, "lineitem SC sampled");
}

#[test]
fn sales_two_column_workload() {
    let t = sales(10_000, 3);
    let universe: Vec<&str> = SALES_COLUMNS[..8].to_vec();
    let w = Workload::two_columns("sales", &t, &universe).unwrap();
    assert_eq!(w.len(), 28);
    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (plan, stats) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    plan.validate(&w).unwrap();
    assert!(stats.final_cost < stats.naive_cost);

    let mut session = session_with(t, "sales");
    let optimized = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &optimized, "sales TC");
}

#[test]
fn nref_single_columns() {
    let t = neighboring_seq(10_000, 5);
    let w = Workload::single_columns("nref", &t, &NREF_COLUMNS).unwrap();
    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    let mut session = session_with(t, "nref");
    let optimized = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &optimized, "nref SC");
}

#[test]
fn physical_design_changes_plans_and_stays_correct() {
    let t = lineitem(15_000, 0.0, 4);
    let w = Workload::single_columns("lineitem", &t, &LINEITEM_SC_COLUMNS).unwrap();

    let mut session = session_with(t.clone(), "lineitem");
    // index the high-cardinality comment column
    let comment_ord = t.schema().index_of("l_comment").unwrap();
    session
        .engine_mut()
        .catalog_mut()
        .create_index(
            "lineitem",
            "nc_comment",
            IndexKind::NonClustered,
            vec![comment_ord],
        )
        .unwrap();

    let snap = IndexSnapshot::capture(session.engine().catalog(), "lineitem");
    assert!(snap.serves_grouping(&[comment_ord]));
    let mut model = OptimizerCostModel::new(ExactSource::new(&t), snap);
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    plan.validate(&w).unwrap();

    let optimized = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &optimized, "indexed lineitem");
}

#[test]
fn sql_script_matches_plan_shape() {
    let t = lineitem(5_000, 0.0, 6);
    let w = Workload::single_columns("lineitem", &t, &LINEITEM_SC_COLUMNS).unwrap();
    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    let sql = render_sql(&plan, &w);
    let selects = sql.iter().filter(|s| s.starts_with("SELECT")).count();
    let intos = sql.iter().filter(|s| s.contains(" INTO ")).count();
    let drops = sql.iter().filter(|s| s.starts_with("DROP")).count();
    assert_eq!(selects, plan.node_count());
    assert_eq!(intos, plan.materialized_count());
    assert_eq!(drops, intos, "every temp table is dropped");
    // every query over a temp table re-aggregates with SUM(cnt)
    for stmt in &sql {
        if stmt.contains("FROM __gbmqo_tmp_") {
            assert!(stmt.contains("SUM(cnt)"), "{stmt}");
        }
    }
}

#[test]
fn skewed_data_still_correct_and_cheaper() {
    for skew in [0.0, 1.0, 2.5] {
        let t = lineitem(10_000, skew, 8);
        let w = Workload::single_columns("lineitem", &t, &LINEITEM_SC_COLUMNS).unwrap();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let (plan, stats) = GbMqo::with_config(SearchConfig::pruned())
            .plan(&w, &mut model)
            .unwrap();
        assert!(
            stats.final_cost <= stats.naive_cost,
            "skew {skew}: optimized must not regress"
        );
        let mut session = session_with(t, "lineitem");
        let optimized = session.run_plan(&plan, &w).unwrap();
        let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
        assert_same_results(&w, &naive, &optimized, &format!("skew {skew}"));
    }
}

#[test]
fn multi_aggregate_workload_roundtrips() {
    use gbmqo_exec::AggSpec;
    let t = lineitem(8_000, 0.0, 10);
    let w = Workload::single_columns(
        "lineitem",
        &t,
        &["l_returnflag", "l_linestatus", "l_shipmode"],
    )
    .unwrap()
    .with_aggregates(vec![
        AggSpec::count(),
        AggSpec::min("l_quantity", "min_qty"),
        AggSpec::max("l_quantity", "max_qty"),
        AggSpec::sum("l_extendedprice", "sum_price"),
    ]);
    // workload aggregates reference non-universe columns: the merged node
    // carries them (§7.2's union-of-aggregates approach)
    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    let mut session = session_with(t.clone(), "lineitem");
    let optimized = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();

    for (set, nt) in &naive.results {
        let names = w.col_names(*set);
        let ot = &optimized.results.iter().find(|(s, _)| s == set).unwrap().1;
        // Compare all columns; float sums only approximately, because
        // re-aggregated partial sums associate differently.
        let norm = |t: &gbmqo_storage::Table| {
            let mut rows: Vec<Vec<gbmqo_storage::Value>> = (0..t.num_rows())
                .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
                .collect();
            rows.sort();
            rows
        };
        let (a, b) = (norm(nt), norm(ot));
        assert_eq!(a.len(), b.len(), "row counts differ for {names:?}");
        for (ra, rb) in a.iter().zip(&b) {
            for (va, vb) in ra.iter().zip(rb) {
                match (va, vb) {
                    (gbmqo_storage::Value::Float(x), gbmqo_storage::Value::Float(y)) => {
                        assert!(
                            (x - y).abs() <= 1e-6 * x.abs().max(1.0),
                            "float aggregate differs for {names:?}: {x} vs {y}"
                        );
                    }
                    _ => assert_eq!(va, vb, "aggregates differ for {names:?}"),
                }
            }
        }
    }
}
