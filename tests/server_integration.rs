//! End-to-end tests of the TCP server: concurrent clients, admission
//! control, deadlines, micro-batching, and graceful shutdown.

use gbmqo_core::prelude::*;
use gbmqo_exec::{hash_group_by, AggSpec, ExecMetrics};
use gbmqo_integration::{col_names, modular_table, normalize};
use gbmqo_server::{
    stats_field, CacheControl, Client, ClientOptions, ErrorCode, Server, ServerConfig, ServerError,
    FEATURE_LZ4,
};
use gbmqo_storage::Table;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

fn serve(table: Table, config: ServerConfig) -> gbmqo_server::ServerHandle {
    let session = Session::builder()
        .table("r", table)
        .search(SearchConfig::pruned())
        .plan_cache(32)
        .build()
        .unwrap();
    Server::bind("127.0.0.1:0", session, config).unwrap()
}

/// Compute the expected Group By result locally.
fn expected(table: &Table, cols: &[&str]) -> Table {
    let ords: Vec<usize> = cols
        .iter()
        .map(|c| table.schema().index_of(c).unwrap())
        .collect();
    let mut m = ExecMetrics::new();
    hash_group_by(table, &ords, &[AggSpec::count()], &mut m).unwrap()
}

fn assert_result(table: &Table, cols: &[&str], got: &Table, context: &str) {
    let want = expected(table, cols);
    assert_eq!(
        normalize(got, cols),
        normalize(&want, cols),
        "{context}: wrong result for {cols:?}"
    );
}

#[test]
fn sixteen_concurrent_clients_mixed_requests() {
    let cards = [4usize, 7, 10, 13];
    let table = modular_table(5_000, &cards);
    let handle = serve(
        table.clone(),
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            batch_window: Some(Duration::from_millis(2)),
            default_deadline: None,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let names = col_names(cards.len());
    let table = Arc::new(table);
    let names = Arc::new(names);

    let n_clients = 16;
    let barrier = Arc::new(Barrier::new(n_clients));
    let joins: Vec<_> = (0..n_clients)
        .map(|i| {
            let table = Arc::clone(&table);
            let names = Arc::clone(&names);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                client.ping().unwrap();

                // a single query (goes through the batcher)
                let col = names[i % names.len()].as_str();
                let result = client.query("r", &[col], 0).unwrap();
                assert_result(&table, &[col], &result, "client query");

                // a full workload (worker path), two sets incl. a pair
                let a = names[i % names.len()].as_str();
                let b = names[(i + 1) % names.len()].as_str();
                let results = client
                    .submit_workload("r", &[a, b], &[vec![a], vec![a, b]], 0)
                    .unwrap();
                assert_eq!(results.len(), 2, "workload returns both sets");
                for (tag, got) in &results {
                    let cols: Vec<&str> = tag.split(',').collect();
                    assert_result(&table, &cols, got, "client workload");
                }

                // stats always parses
                let json = client.stats().unwrap();
                assert!(
                    stats_field(&json, "requests").is_some(),
                    "bad stats: {json}"
                );
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let json = client.stats().unwrap();
    // 16 queries + 16 workloads + 16 stats + this stats request
    assert_eq!(stats_field(&json, "requests"), Some(49), "stats: {json}");
    assert_eq!(stats_field(&json, "temp_tables"), Some(0), "stats: {json}");
    drop(client);
    handle.shutdown();
}

#[test]
fn full_admission_queue_sheds_load_with_server_busy() {
    // One worker and a depth-2 queue: a slow request occupies the
    // worker, two more fill the queue, the rest must be rejected
    // immediately with ServerBusy instead of hanging.
    let table = modular_table(400_000, &[101, 97, 89]);
    let handle = serve(
        table,
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            batch_window: None,
            default_deadline: None,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Pipelined: the heavy workload first, then a beat for the worker
    // to pick it up, then four quick queries.
    let heavy = client
        .send_workload(
            "r",
            &["c0", "c1", "c2"],
            &[
                vec!["c0", "c1", "c2"],
                vec!["c0", "c1"],
                vec!["c1", "c2"],
                vec!["c0", "c2"],
            ],
            0,
        )
        .unwrap();
    thread::sleep(Duration::from_millis(150));
    let quick: Vec<u64> = (0..4)
        .map(|_| client.send_query("r", &["c0"], 0).unwrap())
        .collect();

    let mut ok = 0;
    let mut busy = 0;
    for id in quick {
        match client.wait(id) {
            Ok(_) => ok += 1,
            Err(ServerError::Remote {
                code: ErrorCode::ServerBusy,
                ..
            }) => busy += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        busy >= 1,
        "queue depth 2 must shed some of 4 queued queries"
    );
    assert_eq!(ok + busy, 4, "every request gets a terminal response");
    // the heavy request itself completes fine
    client.wait(heavy).unwrap();

    let json = client.stats().unwrap();
    assert!(
        stats_field(&json, "busy_rejections").unwrap() >= busy,
        "stats: {json}"
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn expired_deadline_times_out_and_drops_temps() {
    let table = modular_table(400_000, &[101, 97, 89]);
    let handle = serve(
        table,
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            batch_window: None,
            default_deadline: None,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let err = client
        .submit_workload(
            "r",
            &["c0", "c1", "c2"],
            &[
                vec!["c0", "c1", "c2"],
                vec!["c0", "c1"],
                vec!["c1", "c2"],
                vec!["c0"],
                vec!["c1"],
                vec!["c2"],
            ],
            1, // 1 ms: cannot possibly finish
        )
        .unwrap_err();
    match err {
        ServerError::Remote {
            code: ErrorCode::Timeout,
            ..
        } => {}
        other => panic!("expected Timeout, got {other}"),
    }

    // The cancelled execution must not leak its temp tables, and the
    // server keeps serving normally afterwards.
    let json = client.stats().unwrap();
    assert_eq!(stats_field(&json, "temp_tables"), Some(0), "stats: {json}");
    assert!(
        stats_field(&json, "timeouts").unwrap() >= 1,
        "stats: {json}"
    );
    let result = client.query("r", &["c0"], 0).unwrap();
    assert_eq!(result.num_rows(), 101);
    drop(client);
    handle.shutdown();
}

#[test]
fn micro_batching_merges_concurrent_queries_into_one_plan() {
    let cards = [6usize, 10, 15];
    let table = modular_table(20_000, &cards);
    let sets: [&str; 3] = ["c0", "c1", "c2"];

    // Baseline: batching disabled, two clients issue three queries each.
    let unbatched = {
        let handle = serve(
            table.clone(),
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                batch_window: None,
                default_deadline: None,
                ..ServerConfig::default()
            },
        );
        let addr = handle.local_addr();
        let barrier = Arc::new(Barrier::new(2));
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    for set in sets {
                        client.query("r", &[set], 0).unwrap();
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let mut client = Client::connect(addr).unwrap();
        let json = client.stats().unwrap();
        let q = stats_field(&json, "queries_executed").unwrap();
        drop(client);
        handle.shutdown();
        q
    };

    // Batched: same six queries inside one 300 ms window.
    let (batched, batches, batched_queries) = {
        let handle = serve(
            table.clone(),
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                batch_window: Some(Duration::from_millis(300)),
                default_deadline: None,
                ..ServerConfig::default()
            },
        );
        let addr = handle.local_addr();
        let barrier = Arc::new(Barrier::new(2));
        let table = Arc::new(table);
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    // pipelined so all six queries land in one window
                    let ids: Vec<u64> = sets
                        .iter()
                        .map(|s| client.send_query("r", &[s], 0).unwrap())
                        .collect();
                    for (set, id) in sets.iter().zip(ids) {
                        match client.wait(id).unwrap() {
                            gbmqo_server::Reply::Results(mut r) => {
                                assert_eq!(r.len(), 1);
                                let (_, got) = r.pop().unwrap();
                                assert_result(&table, &[set], &got, "batched query");
                            }
                            other => panic!("unexpected reply: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let mut client = Client::connect(addr).unwrap();
        let json = client.stats().unwrap();
        let out = (
            stats_field(&json, "queries_executed").unwrap(),
            stats_field(&json, "batches").unwrap(),
            stats_field(&json, "batched_queries").unwrap(),
        );
        drop(client);
        handle.shutdown();
        out
    };

    assert!(batches >= 1, "the batcher must have merged a window");
    assert_eq!(batched_queries, 6, "all six queries went through batching");
    assert!(
        batched < unbatched,
        "micro-batching must execute fewer queries: batched {batched} vs unbatched {unbatched}"
    );
    // Numbers land in EXPERIMENTS.md; print for easy refresh.
    println!("micro-batching: unbatched={unbatched} batched={batched} batches={batches}");
}

/// Two constituents of one merged batch request the same column *set*
/// in different orders; each must get its columns back in the order it
/// asked for (the merged plan computes the set once, in one order).
#[test]
fn batched_results_preserve_each_clients_column_order() {
    let table = modular_table(5_000, &[6, 10]);
    let handle = serve(
        table,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            batch_window: Some(Duration::from_millis(200)),
            default_deadline: None,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // Pipelined so both land in one batch window.
    let id_ab = client.send_query("r", &["c0", "c1"], 0).unwrap();
    let id_ba = client.send_query("r", &["c1", "c0"], 0).unwrap();
    for (id, want) in [(id_ab, ["c0", "c1"]), (id_ba, ["c1", "c0"])] {
        match client.wait(id).unwrap() {
            gbmqo_server::Reply::Results(mut r) => {
                assert_eq!(r.len(), 1);
                let (tag, got) = r.pop().unwrap();
                assert_eq!(tag, want.join(","));
                assert_eq!(&got.schema().names()[..2], &want[..], "columns for {tag}");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    drop(client);
    handle.shutdown();
}

/// A client that sends a frame header and then stalls mid-payload must
/// not pin its reader thread: shutdown still completes.
#[test]
fn shutdown_completes_with_a_client_stalled_mid_frame() {
    use std::io::Write;
    let table = modular_table(1_000, &[5]);
    let handle = serve(table, ServerConfig::default());
    let addr = handle.local_addr();

    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(&100u32.to_le_bytes()).unwrap(); // frame claims 100 bytes...
    stalled.write_all(&[0u8; 10]).unwrap(); // ...but only 10 arrive
    stalled.flush().unwrap();
    thread::sleep(Duration::from_millis(50)); // let the reader enter the payload loop

    let done = thread::spawn(move || handle.shutdown());
    let start = std::time::Instant::now();
    while !done.is_finished() {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown hung on a client stalled mid-frame"
        );
        thread::sleep(Duration::from_millis(20));
    }
    done.join().unwrap();
    drop(stalled);
}

#[test]
fn graceful_shutdown_drains_and_rejects_new_requests() {
    let table = modular_table(2_000, &[5, 8]);
    let handle = serve(
        table.clone(),
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            batch_window: None,
            default_deadline: None,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();

    // An idle connected client must not block shutdown.
    let mut idle = Client::connect(addr).unwrap();
    idle.ping().unwrap();

    let mut client = Client::connect(addr).unwrap();
    let result = client.query("r", &["c0"], 0).unwrap();
    assert_result(&table, &["c0"], &result, "pre-shutdown query");

    handle.shutdown(); // joins every thread; hangs the test if draining breaks

    // The listener is gone: new connections or requests fail cleanly.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.ping().is_err(),
    };
    assert!(refused, "server must stop serving after shutdown");
}

#[test]
fn shared_cache_serves_repeat_queries_across_connections() {
    let cards = [4usize, 9, 15];
    let table = modular_table(4_000, &cards);
    let session = Session::builder()
        .table("r", table.clone())
        .search(SearchConfig::pruned())
        .plan_cache(32)
        .mat_cache_budget_bytes(8 << 20)
        .build()
        .unwrap();
    let handle = Server::bind("127.0.0.1:0", session, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // First client warms the cache with the superset.
    let mut warmer = Client::connect(addr).unwrap();
    let warm = warmer.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&table, &["c0", "c1"], &warm, "warming query");

    // A different connection is served from the same cache — both the
    // exact repeat and a strict subset.
    let mut reader = Client::connect(addr).unwrap();
    let repeat = reader.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&table, &["c0", "c1"], &repeat, "warm repeat");
    let subset = reader.query("r", &["c1"], 0).unwrap();
    assert_result(&table, &["c1"], &subset, "subset of cached superset");

    let json = reader.stats().unwrap();
    assert!(
        stats_field(&json, "matcache_hits").unwrap() >= 2,
        "stats: {json}"
    );
    assert!(
        stats_field(&json, "matcache_entries").unwrap() >= 1,
        "stats: {json}"
    );
    assert!(
        stats_field(&json, "matcache_hit_pct").unwrap() > 0,
        "stats: {json}"
    );

    // Bypass must recompute — the hit counter stays flat.
    let hits_before = stats_field(&json, "matcache_hits").unwrap();
    let bypassed = reader
        .query_with("r", &["c0", "c1"], 0, CacheControl::Bypass)
        .unwrap();
    assert_result(&table, &["c0", "c1"], &bypassed, "bypass");
    let json = reader.stats().unwrap();
    assert_eq!(
        stats_field(&json, "matcache_hits").unwrap(),
        hits_before,
        "stats: {json}"
    );

    // Re-registering the table invalidates every cached aggregate.
    let table2 = modular_table(3_000, &cards);
    warmer.register_table("r", &table2).unwrap();
    let fresh = reader.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&table2, &["c0", "c1"], &fresh, "after replace");

    handle.shutdown();
}

#[test]
fn wire_append_refreshes_cached_aggregates() {
    let cards = [4usize, 9];
    let table = modular_table(4_000, &cards);
    let delta = modular_table(1_000, &cards);
    let session = Session::builder()
        .table("r", table.clone())
        .search(SearchConfig::pruned())
        .plan_cache(32)
        .mat_cache_budget_bytes(8 << 20)
        .build()
        .unwrap();
    let handle = Server::bind("127.0.0.1:0", session, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Warm the cache, then append rows over the wire.
    let warm = client.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&table, &["c0", "c1"], &warm, "warming query");
    client.append("r", &delta).unwrap();

    // The repeat query must reflect the appended rows; under the lazy
    // refresh policy the stale entry is delta-refreshed, not recomputed.
    let combined = Table::concat(&[&table, &delta]).unwrap();
    let after = client.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&combined, &["c0", "c1"], &after, "post-append query");

    let json = client.stats().unwrap();
    assert_eq!(stats_field(&json, "appends"), Some(1), "stats: {json}");
    assert_eq!(
        stats_field(&json, "appended_rows"),
        Some(1_000),
        "stats: {json}"
    );
    assert!(
        stats_field(&json, "delta_refreshes").unwrap() >= 1,
        "stats: {json}"
    );
    assert_eq!(
        stats_field(&json, "delta_fallbacks"),
        Some(0),
        "stats: {json}"
    );

    // A mismatched schema is the client's fault, not a server error.
    let bad = modular_table(10, &[4]);
    match client.append("r", &bad).unwrap_err() {
        ServerError::Remote {
            code: ErrorCode::BadRequest,
            ..
        } => {}
        other => panic!("expected BadRequest, got {other}"),
    }

    drop(client);
    handle.shutdown();
}

#[test]
fn streaming_large_result_arrives_in_bounded_chunks() {
    let table = modular_table(30_000, &[9_973]);
    let handle = serve(
        table.clone(),
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            chunk_rows: 512,
            chunk_bytes: 64 << 10,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let mut chunks = 0u32;
    let mut rows = 0u64;
    {
        let mut stream = client.stream_query("r", &["c0"], 0).unwrap();
        for batch in &mut stream {
            let batch = batch.unwrap();
            assert_eq!(batch.set_tag, "c0");
            assert!(
                batch.rows.num_rows() <= 512,
                "chunk of {} rows exceeds the configured cap",
                batch.rows.num_rows()
            );
            chunks += 1;
            rows += batch.rows.num_rows() as u64;
        }
        let summary = stream.summary().expect("stream ends with a summary");
        assert_eq!(summary.total_chunks, chunks, "summary chunk count");
        assert_eq!(summary.total_rows, rows, "summary row count");
    }
    assert!(chunks > 1, "9973 groups over 512-row chunks must split");
    assert_eq!(rows, 9_973);

    // The collect-style API sees the same data reassembled.
    let got = client.query("r", &["c0"], 0).unwrap();
    assert_result(&table, &["c0"], &got, "collected stream");
    drop(client);
    handle.shutdown();
}

#[test]
fn abandoned_stream_leaves_the_connection_usable() {
    let table = modular_table(30_000, &[9_973, 7]);
    let handle = serve(
        table.clone(),
        ServerConfig {
            chunk_rows: 256,
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let mut stream = client.stream_query("r", &["c0"], 0).unwrap();
    let first = stream.next().unwrap().unwrap();
    assert!(first.rows.num_rows() > 0);
    drop(stream); // walk away mid-stream

    // Later traffic on the same connection drains the leftovers and
    // gets clean responses.
    let got = client.query("r", &["c1"], 0).unwrap();
    assert_result(&table, &["c1"], &got, "query after abandoned stream");
    drop(client);
    handle.shutdown();
}

#[test]
fn lz4_negotiation_and_compressed_results_roundtrip() {
    let table = modular_table(20_000, &[4_001, 7]);
    let handle = serve(table.clone(), ServerConfig::default());
    let addr = handle.local_addr();

    let mut plain = Client::connect(addr).unwrap();
    assert_eq!(plain.negotiated_features(), 0, "compression is opt-in");
    let mut lz = Client::connect_with(addr, ClientOptions { compress: true }).unwrap();
    assert_eq!(
        lz.negotiated_features() & FEATURE_LZ4,
        FEATURE_LZ4,
        "server accepts the offered feature"
    );

    let a = plain.query("r", &["c0"], 0).unwrap();
    let b = lz.query("r", &["c0"], 0).unwrap();
    assert_eq!(
        normalize(&a, &["c0"]),
        normalize(&b, &["c0"]),
        "compressed and plain connections agree"
    );
    drop((plain, lz));
    handle.shutdown();
}

/// Read one length-prefixed frame off a raw socket.
fn read_raw_frame(sock: &mut std::net::TcpStream) -> Vec<u8> {
    use std::io::Read;
    let mut len = [0u8; 4];
    sock.read_exact(&mut len).unwrap();
    let mut frame = len.to_vec();
    frame.resize(4 + u32::from_le_bytes(len) as usize, 0);
    sock.read_exact(&mut frame[4..]).unwrap();
    frame
}

fn raw_frame(version: u8, flags: u8, request_id: u64, opcode: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = vec![version, flags];
    payload.extend_from_slice(&request_id.to_le_bytes());
    payload.push(opcode);
    payload.extend_from_slice(body);
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

#[test]
fn unknown_version_gets_unsupported_and_a_hangup() {
    use std::io::{Read, Write};
    let table = modular_table(1_000, &[5]);
    let handle = serve(table, ServerConfig::default());
    let addr = handle.local_addr();

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    sock.write_all(&raw_frame(0x7F, 0, 42, 0x00, &[])).unwrap();
    let frame = read_raw_frame(&mut sock);
    let (rid, resp) = gbmqo_server::protocol::decode_response(&frame, 0).unwrap();
    assert_eq!(rid, 0, "nothing after a bad version byte can be trusted");
    match resp {
        gbmqo_server::Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Unsupported);
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("expected Unsupported error, got {other:?}"),
    }
    // ... and the connection is closed.
    let mut rest = Vec::new();
    sock.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no garbage after the error frame");
    handle.shutdown();
}

#[test]
fn unknown_flag_bits_get_unsupported_but_keep_the_connection() {
    use std::io::Write;
    let table = modular_table(1_000, &[5]);
    let handle = serve(table, ServerConfig::default());
    let addr = handle.local_addr();

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    // Valid version, undefined flag bit: the header parses, so the
    // error echoes the real request id and the connection survives.
    sock.write_all(&raw_frame(
        gbmqo_server::PROTOCOL_VERSION,
        0x80,
        7,
        0x00,
        &[],
    ))
    .unwrap();
    let frame = read_raw_frame(&mut sock);
    let (rid, resp) = gbmqo_server::protocol::decode_response(&frame, 0).unwrap();
    assert_eq!(rid, 7, "the parsed request id is echoed");
    match resp {
        gbmqo_server::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::Unsupported)
        }
        other => panic!("expected Unsupported error, got {other:?}"),
    }
    // A well-formed ping on the same socket still works.
    sock.write_all(&raw_frame(gbmqo_server::PROTOCOL_VERSION, 0, 8, 0x00, &[]))
        .unwrap();
    let frame = read_raw_frame(&mut sock);
    let (rid, resp) = gbmqo_server::protocol::decode_response(&frame, 0).unwrap();
    assert_eq!(rid, 8);
    assert!(matches!(resp, gbmqo_server::Response::Pong));
    handle.shutdown();
}

#[test]
fn compressed_frame_without_negotiation_is_rejected() {
    use std::io::Write;
    let table = modular_table(1_000, &[5]);
    let handle = serve(table, ServerConfig::default());
    let addr = handle.local_addr();

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    // FLAG_COMPRESSED (0x01) without a Hello that negotiated it.
    sock.write_all(&raw_frame(
        gbmqo_server::PROTOCOL_VERSION,
        0x01,
        9,
        0x00,
        &[0, 0, 0, 0],
    ))
    .unwrap();
    let frame = read_raw_frame(&mut sock);
    let (rid, resp) = gbmqo_server::protocol::decode_response(&frame, 0).unwrap();
    assert_eq!(rid, 9);
    match resp {
        gbmqo_server::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::Unsupported)
        }
        other => panic!("expected Unsupported error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn oversized_declared_length_closes_the_connection() {
    use std::io::{Read, Write};
    let table = modular_table(1_000, &[5]);
    let handle = serve(table, ServerConfig::default());
    let addr = handle.local_addr();

    let mut sock = std::net::TcpStream::connect(addr).unwrap();
    sock.write_all(&u32::MAX.to_le_bytes()).unwrap();
    // The server must hang up rather than try to buffer 4 GiB.
    let mut buf = Vec::new();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let got = sock.read_to_end(&mut buf);
    assert!(
        got.is_ok(),
        "connection should be closed cleanly, not left hanging"
    );
    handle.shutdown();
}
