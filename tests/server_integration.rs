//! End-to-end tests of the TCP server: concurrent clients, admission
//! control, deadlines, micro-batching, and graceful shutdown.

use gbmqo_core::prelude::*;
use gbmqo_exec::{hash_group_by, AggSpec, ExecMetrics};
use gbmqo_integration::{col_names, modular_table, normalize};
use gbmqo_server::{
    stats_field, CacheControl, Client, ErrorCode, Server, ServerConfig, ServerError,
};
use gbmqo_storage::Table;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

fn serve(table: Table, config: ServerConfig) -> gbmqo_server::ServerHandle {
    let session = Session::builder()
        .table("r", table)
        .search(SearchConfig::pruned())
        .plan_cache(32)
        .build()
        .unwrap();
    Server::bind("127.0.0.1:0", session, config).unwrap()
}

/// Compute the expected Group By result locally.
fn expected(table: &Table, cols: &[&str]) -> Table {
    let ords: Vec<usize> = cols
        .iter()
        .map(|c| table.schema().index_of(c).unwrap())
        .collect();
    let mut m = ExecMetrics::new();
    hash_group_by(table, &ords, &[AggSpec::count()], &mut m).unwrap()
}

fn assert_result(table: &Table, cols: &[&str], got: &Table, context: &str) {
    let want = expected(table, cols);
    assert_eq!(
        normalize(got, cols),
        normalize(&want, cols),
        "{context}: wrong result for {cols:?}"
    );
}

#[test]
fn sixteen_concurrent_clients_mixed_requests() {
    let cards = [4usize, 7, 10, 13];
    let table = modular_table(5_000, &cards);
    let handle = serve(
        table.clone(),
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            batch_window: Some(Duration::from_millis(2)),
            default_deadline: None,
        },
    );
    let addr = handle.local_addr();
    let names = col_names(cards.len());
    let table = Arc::new(table);
    let names = Arc::new(names);

    let n_clients = 16;
    let barrier = Arc::new(Barrier::new(n_clients));
    let joins: Vec<_> = (0..n_clients)
        .map(|i| {
            let table = Arc::clone(&table);
            let names = Arc::clone(&names);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                client.ping().unwrap();

                // a single query (goes through the batcher)
                let col = names[i % names.len()].as_str();
                let result = client.query("r", &[col], 0).unwrap();
                assert_result(&table, &[col], &result, "client query");

                // a full workload (worker path), two sets incl. a pair
                let a = names[i % names.len()].as_str();
                let b = names[(i + 1) % names.len()].as_str();
                let results = client
                    .submit_workload("r", &[a, b], &[vec![a], vec![a, b]], 0)
                    .unwrap();
                assert_eq!(results.len(), 2, "workload returns both sets");
                for (tag, got) in &results {
                    let cols: Vec<&str> = tag.split(',').collect();
                    assert_result(&table, &cols, got, "client workload");
                }

                // stats always parses
                let json = client.stats().unwrap();
                assert!(
                    stats_field(&json, "requests").is_some(),
                    "bad stats: {json}"
                );
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let json = client.stats().unwrap();
    // 16 queries + 16 workloads + 16 stats + this stats request
    assert_eq!(stats_field(&json, "requests"), Some(49), "stats: {json}");
    assert_eq!(stats_field(&json, "temp_tables"), Some(0), "stats: {json}");
    drop(client);
    handle.shutdown();
}

#[test]
fn full_admission_queue_sheds_load_with_server_busy() {
    // One worker and a depth-2 queue: a slow request occupies the
    // worker, two more fill the queue, the rest must be rejected
    // immediately with ServerBusy instead of hanging.
    let table = modular_table(400_000, &[101, 97, 89]);
    let handle = serve(
        table,
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            batch_window: None,
            default_deadline: None,
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Pipelined: the heavy workload first, then a beat for the worker
    // to pick it up, then four quick queries.
    let heavy = client
        .send_workload(
            "r",
            &["c0", "c1", "c2"],
            &[
                vec!["c0", "c1", "c2"],
                vec!["c0", "c1"],
                vec!["c1", "c2"],
                vec!["c0", "c2"],
            ],
            0,
        )
        .unwrap();
    thread::sleep(Duration::from_millis(150));
    let quick: Vec<u64> = (0..4)
        .map(|_| client.send_query("r", &["c0"], 0).unwrap())
        .collect();

    let mut ok = 0;
    let mut busy = 0;
    for id in quick {
        match client.wait(id) {
            Ok(_) => ok += 1,
            Err(ServerError::Remote {
                code: ErrorCode::ServerBusy,
                ..
            }) => busy += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        busy >= 1,
        "queue depth 2 must shed some of 4 queued queries"
    );
    assert_eq!(ok + busy, 4, "every request gets a terminal response");
    // the heavy request itself completes fine
    client.wait(heavy).unwrap();

    let json = client.stats().unwrap();
    assert!(
        stats_field(&json, "busy_rejections").unwrap() >= busy,
        "stats: {json}"
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn expired_deadline_times_out_and_drops_temps() {
    let table = modular_table(400_000, &[101, 97, 89]);
    let handle = serve(
        table,
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            batch_window: None,
            default_deadline: None,
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let err = client
        .submit_workload(
            "r",
            &["c0", "c1", "c2"],
            &[
                vec!["c0", "c1", "c2"],
                vec!["c0", "c1"],
                vec!["c1", "c2"],
                vec!["c0"],
                vec!["c1"],
                vec!["c2"],
            ],
            1, // 1 ms: cannot possibly finish
        )
        .unwrap_err();
    match err {
        ServerError::Remote {
            code: ErrorCode::Timeout,
            ..
        } => {}
        other => panic!("expected Timeout, got {other}"),
    }

    // The cancelled execution must not leak its temp tables, and the
    // server keeps serving normally afterwards.
    let json = client.stats().unwrap();
    assert_eq!(stats_field(&json, "temp_tables"), Some(0), "stats: {json}");
    assert!(
        stats_field(&json, "timeouts").unwrap() >= 1,
        "stats: {json}"
    );
    let result = client.query("r", &["c0"], 0).unwrap();
    assert_eq!(result.num_rows(), 101);
    drop(client);
    handle.shutdown();
}

#[test]
fn micro_batching_merges_concurrent_queries_into_one_plan() {
    let cards = [6usize, 10, 15];
    let table = modular_table(20_000, &cards);
    let sets: [&str; 3] = ["c0", "c1", "c2"];

    // Baseline: batching disabled, two clients issue three queries each.
    let unbatched = {
        let handle = serve(
            table.clone(),
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                batch_window: None,
                default_deadline: None,
            },
        );
        let addr = handle.local_addr();
        let barrier = Arc::new(Barrier::new(2));
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    for set in sets {
                        client.query("r", &[set], 0).unwrap();
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let mut client = Client::connect(addr).unwrap();
        let json = client.stats().unwrap();
        let q = stats_field(&json, "queries_executed").unwrap();
        drop(client);
        handle.shutdown();
        q
    };

    // Batched: same six queries inside one 300 ms window.
    let (batched, batches, batched_queries) = {
        let handle = serve(
            table.clone(),
            ServerConfig {
                workers: 2,
                queue_capacity: 64,
                batch_window: Some(Duration::from_millis(300)),
                default_deadline: None,
            },
        );
        let addr = handle.local_addr();
        let barrier = Arc::new(Barrier::new(2));
        let table = Arc::new(table);
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    // pipelined so all six queries land in one window
                    let ids: Vec<u64> = sets
                        .iter()
                        .map(|s| client.send_query("r", &[s], 0).unwrap())
                        .collect();
                    for (set, id) in sets.iter().zip(ids) {
                        match client.wait(id).unwrap() {
                            gbmqo_server::Reply::Results(mut r) => {
                                assert_eq!(r.len(), 1);
                                let (_, got) = r.pop().unwrap();
                                assert_result(&table, &[set], &got, "batched query");
                            }
                            other => panic!("unexpected reply: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let mut client = Client::connect(addr).unwrap();
        let json = client.stats().unwrap();
        let out = (
            stats_field(&json, "queries_executed").unwrap(),
            stats_field(&json, "batches").unwrap(),
            stats_field(&json, "batched_queries").unwrap(),
        );
        drop(client);
        handle.shutdown();
        out
    };

    assert!(batches >= 1, "the batcher must have merged a window");
    assert_eq!(batched_queries, 6, "all six queries went through batching");
    assert!(
        batched < unbatched,
        "micro-batching must execute fewer queries: batched {batched} vs unbatched {unbatched}"
    );
    // Numbers land in EXPERIMENTS.md; print for easy refresh.
    println!("micro-batching: unbatched={unbatched} batched={batched} batches={batches}");
}

/// Two constituents of one merged batch request the same column *set*
/// in different orders; each must get its columns back in the order it
/// asked for (the merged plan computes the set once, in one order).
#[test]
fn batched_results_preserve_each_clients_column_order() {
    let table = modular_table(5_000, &[6, 10]);
    let handle = serve(
        table,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            batch_window: Some(Duration::from_millis(200)),
            default_deadline: None,
        },
    );
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    // Pipelined so both land in one batch window.
    let id_ab = client.send_query("r", &["c0", "c1"], 0).unwrap();
    let id_ba = client.send_query("r", &["c1", "c0"], 0).unwrap();
    for (id, want) in [(id_ab, ["c0", "c1"]), (id_ba, ["c1", "c0"])] {
        match client.wait(id).unwrap() {
            gbmqo_server::Reply::Results(mut r) => {
                assert_eq!(r.len(), 1);
                let (tag, got) = r.pop().unwrap();
                assert_eq!(tag, want.join(","));
                assert_eq!(&got.schema().names()[..2], &want[..], "columns for {tag}");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    drop(client);
    handle.shutdown();
}

/// A client that sends a frame header and then stalls mid-payload must
/// not pin its reader thread: shutdown still completes.
#[test]
fn shutdown_completes_with_a_client_stalled_mid_frame() {
    use std::io::Write;
    let table = modular_table(1_000, &[5]);
    let handle = serve(table, ServerConfig::default());
    let addr = handle.local_addr();

    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(&100u32.to_le_bytes()).unwrap(); // frame claims 100 bytes...
    stalled.write_all(&[0u8; 10]).unwrap(); // ...but only 10 arrive
    stalled.flush().unwrap();
    thread::sleep(Duration::from_millis(50)); // let the reader enter the payload loop

    let done = thread::spawn(move || handle.shutdown());
    let start = std::time::Instant::now();
    while !done.is_finished() {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown hung on a client stalled mid-frame"
        );
        thread::sleep(Duration::from_millis(20));
    }
    done.join().unwrap();
    drop(stalled);
}

#[test]
fn graceful_shutdown_drains_and_rejects_new_requests() {
    let table = modular_table(2_000, &[5, 8]);
    let handle = serve(
        table.clone(),
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            batch_window: None,
            default_deadline: None,
        },
    );
    let addr = handle.local_addr();

    // An idle connected client must not block shutdown.
    let mut idle = Client::connect(addr).unwrap();
    idle.ping().unwrap();

    let mut client = Client::connect(addr).unwrap();
    let result = client.query("r", &["c0"], 0).unwrap();
    assert_result(&table, &["c0"], &result, "pre-shutdown query");

    handle.shutdown(); // joins every thread; hangs the test if draining breaks

    // The listener is gone: new connections or requests fail cleanly.
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.ping().is_err(),
    };
    assert!(refused, "server must stop serving after shutdown");
}

#[test]
fn shared_cache_serves_repeat_queries_across_connections() {
    let cards = [4usize, 9, 15];
    let table = modular_table(4_000, &cards);
    let session = Session::builder()
        .table("r", table.clone())
        .search(SearchConfig::pruned())
        .plan_cache(32)
        .mat_cache_budget_bytes(8 << 20)
        .build()
        .unwrap();
    let handle = Server::bind("127.0.0.1:0", session, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // First client warms the cache with the superset.
    let mut warmer = Client::connect(addr).unwrap();
    let warm = warmer.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&table, &["c0", "c1"], &warm, "warming query");

    // A different connection is served from the same cache — both the
    // exact repeat and a strict subset.
    let mut reader = Client::connect(addr).unwrap();
    let repeat = reader.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&table, &["c0", "c1"], &repeat, "warm repeat");
    let subset = reader.query("r", &["c1"], 0).unwrap();
    assert_result(&table, &["c1"], &subset, "subset of cached superset");

    let json = reader.stats().unwrap();
    assert!(
        stats_field(&json, "matcache_hits").unwrap() >= 2,
        "stats: {json}"
    );
    assert!(
        stats_field(&json, "matcache_entries").unwrap() >= 1,
        "stats: {json}"
    );
    assert!(
        stats_field(&json, "matcache_hit_pct").unwrap() > 0,
        "stats: {json}"
    );

    // Bypass must recompute — the hit counter stays flat.
    let hits_before = stats_field(&json, "matcache_hits").unwrap();
    let bypassed = reader
        .query_with("r", &["c0", "c1"], 0, CacheControl::Bypass)
        .unwrap();
    assert_result(&table, &["c0", "c1"], &bypassed, "bypass");
    let json = reader.stats().unwrap();
    assert_eq!(
        stats_field(&json, "matcache_hits").unwrap(),
        hits_before,
        "stats: {json}"
    );

    // Re-registering the table invalidates every cached aggregate.
    let table2 = modular_table(3_000, &cards);
    warmer.register_table("r", &table2).unwrap();
    let fresh = reader.query("r", &["c0", "c1"], 0).unwrap();
    assert_result(&table2, &["c0", "c1"], &fresh, "after replace");

    handle.shutdown();
}
