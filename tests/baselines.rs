//! Baseline comparisons: naive, simulated commercial GROUPING SETS, and
//! the exhaustive optimum, mirroring the paper's §6.1–§6.3 setups at
//! test scale.

use gbmqo_core::prelude::*;
use gbmqo_core::{grouping_sets_plan, optimal_plan, BaselineKind};
use gbmqo_cost::{CardinalityCostModel, CostModel};
use gbmqo_datagen::lineitem;
use gbmqo_integration::{assert_same_results, session_with};
use gbmqo_stats::ExactSource;

const SC7: [&str; 7] = [
    "l_returnflag",
    "l_linestatus",
    "l_shipmode",
    "l_shipinstruct",
    "l_linenumber",
    "l_commitdate",
    "l_receiptdate",
];

#[test]
fn grouping_sets_baseline_is_correct_but_weaker_on_sc() {
    let t = lineitem(20_000, 0.0, 11);
    let w = Workload::single_columns("lineitem", &t, &SC7).unwrap();

    let (gs_plan, kind) = grouping_sets_plan(&w);
    assert_eq!(kind, BaselineKind::UnionTop);
    gs_plan.validate(&w).unwrap();

    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (our_plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();

    // cost comparison under one model
    let mut m2 = CardinalityCostModel::new(ExactSource::new(&t));
    let mut coster = gbmqo_core::coster::EdgeCoster::new(&mut m2, w.base_ordinals.clone());
    let gs_cost = gs_plan.cost(&mut coster);
    let our_cost = our_plan.cost(&mut coster);
    assert!(
        our_cost < gs_cost,
        "GB-MQO ({our_cost}) must beat union-top GROUPING SETS ({gs_cost}) on SC"
    );

    // and both must produce the same answers
    let mut session = session_with(t, "lineitem");
    let gs = session.run_plan(&gs_plan, &w).unwrap();
    let ours = session.run_plan(&our_plan, &w).unwrap();
    assert_same_results(&w, &gs, &ours, "GS vs GB-MQO");
}

#[test]
fn grouping_sets_baseline_shared_sort_on_cont() {
    // the paper's CONT workload over the three date columns
    let t = lineitem(20_000, 0.0, 12);
    let w = Workload::new(
        "lineitem",
        &t,
        &["l_shipdate", "l_commitdate", "l_receiptdate"],
        &[
            vec!["l_shipdate"],
            vec!["l_commitdate"],
            vec!["l_receiptdate"],
            vec!["l_shipdate", "l_commitdate"],
            vec!["l_shipdate", "l_receiptdate"],
            vec!["l_commitdate", "l_receiptdate"],
        ],
    )
    .unwrap();
    let (gs_plan, kind) = grouping_sets_plan(&w);
    assert_eq!(kind, BaselineKind::SharedSort);
    gs_plan.validate(&w).unwrap();

    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (our_plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();

    let mut m2 = CardinalityCostModel::new(ExactSource::new(&t));
    let mut coster = gbmqo_core::coster::EdgeCoster::new(&mut m2, w.base_ordinals.clone());
    let gs_cost = gs_plan.cost(&mut coster);
    let our_cost = our_plan.cost(&mut coster);
    // Table 2's CONT row: the two are comparable.
    assert!(
        our_cost <= gs_cost * 1.05,
        "on CONT ours ({our_cost}) should at least match shared sorts ({gs_cost})"
    );

    let mut session = session_with(t, "lineitem");
    let gs = session.run_plan(&gs_plan, &w).unwrap();
    let ours = session.run_plan(&our_plan, &w).unwrap();
    assert_same_results(&w, &gs, &ours, "CONT");
}

#[test]
fn greedy_close_to_optimal_on_seven_columns() {
    // §6.3's experiment shape: 7-column SC instances; the greedy plan's
    // cost must be within a modest factor of the exhaustive optimum.
    for seed in [1u64, 2, 3] {
        let t = lineitem(10_000, 0.0, seed);
        let w = Workload::single_columns("lineitem", &t, &SC7).unwrap();

        let mut m1 = CardinalityCostModel::new(ExactSource::new(&t));
        let (opt_plan, opt_cost) = optimal_plan(&w, &mut m1).unwrap();
        opt_plan.validate(&w).unwrap();

        let mut m2 = CardinalityCostModel::new(ExactSource::new(&t));
        let (greedy_plan, stats) = GbMqo::new().plan(&w, &mut m2).unwrap();
        greedy_plan.validate(&w).unwrap();

        assert!(opt_cost <= stats.final_cost + 1e-6, "seed {seed}");
        assert!(
            stats.final_cost <= opt_cost * 1.25,
            "seed {seed}: greedy {} too far from optimal {opt_cost}",
            stats.final_cost
        );

        // and the optimal plan actually executes correctly
        let mut session = session_with(t, "lineitem");
        let a = session.run_plan(&opt_plan, &w).unwrap();
        let b = session.run_plan(&greedy_plan, &w).unwrap();
        assert_same_results(&w, &a, &b, &format!("optimal vs greedy seed {seed}"));
    }
}

#[test]
fn pruning_reduces_calls_without_changing_binary_plans() {
    // §4.3 soundness at integration scale: under the cardinality model
    // with binary merges and disjoint inputs, pruning must not change the
    // final cost but must reduce optimizer calls.
    let t = lineitem(10_000, 0.0, 13);
    let w = Workload::single_columns("lineitem", &t, &SC7).unwrap();

    let run = |config: SearchConfig| {
        let mut m = CardinalityCostModel::new(ExactSource::new(&t));
        let (_, stats) = GbMqo::with_config(config).plan(&w, &mut m).unwrap();
        (stats.final_cost, m.calls(), stats)
    };
    let binary = SearchConfig {
        binary_only: true,
        ..Default::default()
    };
    let (cost_plain, calls_plain, _) = run(binary.clone());
    let (cost_pruned, calls_pruned, stats) = run(SearchConfig {
        subsumption_pruning: true,
        monotonicity_pruning: true,
        ..binary
    });
    assert_eq!(cost_plain, cost_pruned, "pruning must be sound here");
    assert!(
        calls_pruned <= calls_plain,
        "pruning must not increase calls ({calls_pruned} vs {calls_plain})"
    );
    assert!(stats.pruned_subsumption + stats.pruned_monotonicity > 0);
}
