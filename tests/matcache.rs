//! Integration tests for the materialized aggregate cache: warm-cache
//! answers must be row-identical to cold execution (serial and
//! parallel), stale versions must never be served after a table is
//! replaced, eviction must respect the byte budget, and the per-request
//! `CacheControl` knob must bypass or refresh as advertised.

use gbmqo_core::prelude::*;
use gbmqo_integration::{assert_same_results, col_names, modular_table};
use proptest::prelude::*;

fn workload_of(table: &gbmqo_storage::Table, requests: &[Vec<usize>]) -> Workload {
    let names = col_names(table.num_columns());
    let reqs: Vec<Vec<&str>> = requests
        .iter()
        .map(|r| r.iter().map(|&c| names[c].as_str()).collect())
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Workload::new("t", table, &refs, &reqs).unwrap()
}

fn session_with(table: &gbmqo_storage::Table, mode: ExecutionMode, cache_budget: usize) -> Session {
    Session::builder()
        .table("t", table.clone())
        .search(SearchConfig::pruned())
        .mode(mode)
        .parallelism(2)
        .mat_cache_budget_bytes(cache_budget)
        .build()
        .unwrap()
}

const BUDGET: usize = 8 << 20;

fn dedup(raw: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    let mut requests: Vec<Vec<usize>> = raw
        .into_iter()
        .map(|mut r| {
            r.sort_unstable();
            r.dedup();
            r
        })
        .collect();
    requests.sort();
    requests.dedup();
    requests
}

/// Strategy: 2–4 columns with assorted cardinalities plus two request
/// lists — one to warm the cache, one to answer from it.
#[allow(clippy::type_complexity)]
fn two_phase_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<usize>>, Vec<Vec<usize>>)> {
    prop::collection::vec(prop::sample::select(vec![2usize, 3, 5, 11, 60]), 2..=4).prop_flat_map(
        |cards| {
            let n = cards.len();
            let reqs = || prop::collection::vec(prop::collection::vec(0..n, 1..=n.min(3)), 1..=n);
            (Just(cards), reqs(), reqs())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever state the cache is in after the warm-up workload, the
    /// follow-up workload's results are row-identical to a cold
    /// cacheless session's — in both execution modes.
    #[test]
    fn warm_cache_answers_match_cold(
        (cards, warm_raw, query_raw) in two_phase_strategy(),
        parallel in any::<bool>(),
    ) {
        let warm_requests = dedup(warm_raw);
        let query_requests = dedup(query_raw);

        let table = modular_table(600, &cards);
        let mode = if parallel { ExecutionMode::Parallel } else { ExecutionMode::ClientSide };
        let mut cold = session_with(&table, mode, 0);
        let mut warm = session_with(&table, mode, BUDGET);

        let warm_w = workload_of(&table, &warm_requests);
        warm.run_workload(&warm_w, CacheControl::Default).unwrap();

        let query_w = workload_of(&table, &query_requests);
        let cold_out = cold.run_workload(&query_w, CacheControl::Default).unwrap();
        let warm_out = warm.run_workload(&query_w, CacheControl::Default).unwrap();
        assert_same_results(&query_w, &cold_out.report, &warm_out.report, "warm vs cold");

        // Cached roots are pinned only for the execution's duration.
        prop_assert!(warm.engine().catalog().temp_names().is_empty());
        let mc = warm.mat_cache_stats();
        prop_assert!(mc.bytes <= BUDGET as u64, "cache over budget: {mc:?}");
    }
}

#[test]
fn repeat_run_is_served_from_the_cache() {
    let table = modular_table(2_000, &[4, 10, 25]);
    let mut session = session_with(&table, ExecutionMode::ClientSide, BUDGET);
    let w = workload_of(&table, &[vec![0], vec![1], vec![0, 1]]);

    let first = session.run_workload(&w, CacheControl::Default).unwrap();
    assert_eq!(first.report.metrics.matcache_hits, 0, "cold start");

    let second = session.run_workload(&w, CacheControl::Default).unwrap();
    assert_eq!(
        second.report.metrics.matcache_hits, 3,
        "every repeated request is covered"
    );
    // Scans touch only the small cached aggregates, never the base.
    assert!(
        second.report.metrics.rows_scanned < table.num_rows() as u64,
        "a fully covered workload must not rescan the base table: {}",
        second.report.metrics.rows_scanned
    );
    assert_same_results(&w, &first.report, &second.report, "repeat vs first");
}

#[test]
fn subset_queries_reaggregate_from_a_cached_superset() {
    let table = modular_table(2_000, &[4, 10, 25]);
    let mut session = session_with(&table, ExecutionMode::ClientSide, BUDGET);

    // Warm with the superset only.
    let warm = workload_of(&table, &[vec![0, 1, 2]]);
    session.run_workload(&warm, CacheControl::Default).unwrap();

    // Strict subsets are answered by re-aggregating the cached
    // superset — never by scanning the base table.
    let query = workload_of(&table, &[vec![0], vec![1, 2]]);
    let out = session.run_workload(&query, CacheControl::Default).unwrap();
    assert_eq!(out.report.metrics.matcache_hits, 2);
    assert!(
        out.report.metrics.rows_scanned < table.num_rows() as u64,
        "subsets re-aggregate the cached superset, not the base table"
    );

    let mut cold = session_with(&table, ExecutionMode::ClientSide, 0);
    let reference = cold.run_workload(&query, CacheControl::Default).unwrap();
    assert_same_results(&query, &reference.report, &out.report, "subset vs cold");
}

#[test]
fn replacing_the_table_invalidates_cached_aggregates() {
    let old = modular_table(1_000, &[4, 10]);
    let mut session = session_with(&old, ExecutionMode::ClientSide, BUDGET);
    let w = workload_of(&old, &[vec![0], vec![0, 1]]);
    session.run_workload(&w, CacheControl::Default).unwrap();
    assert!(session.mat_cache_stats().entries > 0);

    // Same schema, different contents: every cached aggregate is stale.
    let new = modular_table(1_500, &[7, 13]);
    session.register_table("t", new.clone()).unwrap();

    let out = session.run_workload(&w, CacheControl::Default).unwrap();
    assert_eq!(
        out.report.metrics.matcache_hits, 0,
        "stale aggregates must never be served"
    );
    let mut fresh = session_with(&new, ExecutionMode::ClientSide, 0);
    let reference = fresh.run_workload(&w, CacheControl::Default).unwrap();
    assert_same_results(&w, &reference.report, &out.report, "replaced vs fresh");
}

#[test]
fn bypass_ignores_and_refresh_recomputes() {
    let table = modular_table(1_000, &[4, 10]);
    let mut session = session_with(&table, ExecutionMode::ClientSide, BUDGET);
    let w = workload_of(&table, &[vec![0], vec![1]]);
    session.run_workload(&w, CacheControl::Default).unwrap();

    // Bypass: no lookups, no admissions.
    let stats_before = session.mat_cache_stats();
    let bypass = session.run_workload(&w, CacheControl::Bypass).unwrap();
    assert_eq!(bypass.report.metrics.matcache_hits, 0);
    let stats_after = session.mat_cache_stats();
    assert_eq!(stats_before.hits, stats_after.hits);
    assert_eq!(stats_before.insertions, stats_after.insertions);

    // Refresh: recomputes (no hit) and replaces the cached payloads in
    // place — entry and insertion counts stay flat.
    let refresh = session.run_workload(&w, CacheControl::Refresh).unwrap();
    assert_eq!(refresh.report.metrics.matcache_hits, 0);
    assert!(refresh.report.metrics.rows_scanned > 0);
    assert_eq!(session.mat_cache_stats().insertions, stats_after.insertions);
    assert_eq!(session.mat_cache_stats().entries, stats_after.entries);

    // And the refreshed entries serve the next default-mode run.
    let warm = session.run_workload(&w, CacheControl::Default).unwrap();
    assert_eq!(warm.report.metrics.matcache_hits, 2);
}

#[test]
fn tiny_budget_evicts_rather_than_overflows() {
    let table = modular_table(4_000, &[64, 101, 57]);
    let budget = 4 << 10; // 4 KiB: far too small for every aggregate
    let mut session = session_with(&table, ExecutionMode::ClientSide, budget);

    for reqs in [
        vec![vec![0], vec![0, 1]],
        vec![vec![1], vec![1, 2]],
        vec![vec![2], vec![0, 2]],
    ] {
        let w = workload_of(&table, &reqs);
        session.run_workload(&w, CacheControl::Default).unwrap();
        let mc = session.mat_cache_stats();
        assert!(mc.bytes <= budget as u64, "over budget: {mc:?}");
    }
    let mc = session.mat_cache_stats();
    assert!(
        mc.evictions > 0 || mc.rejected > 0,
        "a 4 KiB budget must evict or reject: {mc:?}"
    );
}

#[test]
fn parallel_intermediates_are_admitted_before_recycling() {
    let table = modular_table(3_000, &[3, 40, 90]);
    let mut session = session_with(&table, ExecutionMode::Parallel, BUDGET);

    // A workload whose plan materializes intermediates; the scheduler's
    // temps are offered to the cache at reader-count zero instead of
    // being dropped outright.
    let warm = workload_of(
        &table,
        &[
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![1, 2],
            vec![0, 1, 2],
        ],
    );
    session.run_workload(&warm, CacheControl::Default).unwrap();
    assert!(session.engine().catalog().temp_names().is_empty());
    assert!(session.mat_cache_stats().insertions > 0);

    // Everything the warm run computed now answers without a scan.
    let query = workload_of(&table, &[vec![0, 1], vec![2]]);
    let out = session.run_workload(&query, CacheControl::Default).unwrap();
    assert_eq!(out.report.metrics.matcache_hits, 2);
    assert!(
        out.report.metrics.rows_scanned < table.num_rows() as u64,
        "covered sets must not rescan the base table"
    );

    let mut cold = session_with(&table, ExecutionMode::ClientSide, 0);
    let reference = cold.run_workload(&query, CacheControl::Default).unwrap();
    assert_same_results(
        &query,
        &reference.report,
        &out.report,
        "parallel warm vs cold",
    );
}

#[test]
fn partially_covered_workloads_merge_cached_and_fresh_subplans() {
    let table = modular_table(2_500, &[5, 12, 33]);
    let mut session = session_with(&table, ExecutionMode::ClientSide, BUDGET);

    let warm = workload_of(&table, &[vec![0, 1]]);
    session.run_workload(&warm, CacheControl::Default).unwrap();

    // {0} is covered by the cached {0,1}; {2} and {1,2} are not and go
    // through the ordinary merge search.
    let mixed = workload_of(&table, &[vec![0], vec![2], vec![1, 2]]);
    let out = session.run_workload(&mixed, CacheControl::Default).unwrap();
    assert_eq!(out.report.metrics.matcache_hits, 1);
    assert!(
        out.report.metrics.rows_scanned > 0,
        "uncovered sets still scan"
    );
    assert_eq!(out.report.results.len(), 3);

    let mut cold = session_with(&table, ExecutionMode::ClientSide, 0);
    let reference = cold.run_workload(&mixed, CacheControl::Default).unwrap();
    assert_same_results(&mixed, &reference.report, &out.report, "mixed vs cold");
}
