//! Cross-crate integration tests for the GROUPING SETS facade (§5.1/§5.2),
//! the spec parser, shared scans, and sort-based aggregation.

use gbmqo_core::prelude::*;
use gbmqo_core::{parse_grouping_sets, ExecutionMode};
use gbmqo_cost::CardinalityCostModel;
use gbmqo_datagen::{lineitem, sales};
use gbmqo_exec::{hash_group_by, sort_group_by, AggSpec, ExecMetrics};
use gbmqo_integration::engine_with;
use gbmqo_stats::ExactSource;
use gbmqo_storage::{Table, Value};

/// Normalize a tagged union-all: per row, keep only the columns named in
/// its own `grp_tag` (the union's column order differs between execution
/// modes; NULL-padded columns are irrelevant to the member result).
fn tagged_norm(t: &Table) -> Vec<(String, Vec<Value>, i64)> {
    let tag_col = t.schema().index_of("grp_tag").unwrap();
    let cnt_col = t.schema().index_of("cnt").unwrap();
    let mut rows: Vec<(String, Vec<Value>, i64)> = (0..t.num_rows())
        .map(|r| {
            let tag = t.value(r, tag_col).as_str().unwrap().to_string();
            let keys: Vec<Value> = tag
                .split(',')
                .map(|name| t.value(r, t.schema().index_of(name).unwrap()))
                .collect();
            (tag, keys, t.value(r, cnt_col).as_int().unwrap())
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn parsed_spec_to_tagged_result_end_to_end() {
    let table = lineitem(8_000, 0.0, 51);
    let sets = parse_grouping_sets(
        "GROUPING SETS ((l_returnflag), (l_linestatus), (l_returnflag, l_linestatus))",
    )
    .unwrap();
    let request_refs: Vec<Vec<&str>> = sets
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let w = Workload::new(
        "lineitem",
        &table,
        &["l_returnflag", "l_linestatus"],
        &request_refs,
    )
    .unwrap();
    let mut session = Session::builder()
        .table("lineitem", table.clone())
        .search(SearchConfig::pruned())
        .mode(ExecutionMode::ClientSide)
        .build()
        .unwrap();
    let out = session.grouping_sets(&w).unwrap();
    // three grouping sets: 3 + 2 + 6 rows
    assert_eq!(out.table.num_rows(), 3 + 2 + 6);
    // grand-total check per tag
    let rows = tagged_norm(&out.table);
    for tag in ["l_returnflag", "l_linestatus", "l_returnflag,l_linestatus"] {
        let total: i64 = rows
            .iter()
            .filter(|(t, _, _)| t == tag)
            .map(|(_, _, c)| c)
            .sum();
        assert_eq!(total, 8_000, "tag {tag}");
    }
}

#[test]
fn client_and_server_modes_agree_on_lineitem() {
    let table = lineitem(10_000, 0.0, 52);
    let w = Workload::single_columns(
        "lineitem",
        &table,
        &[
            "l_returnflag",
            "l_linestatus",
            "l_shipmode",
            "l_shipinstruct",
            "l_linenumber",
            "l_commitdate",
            "l_receiptdate",
        ],
    )
    .unwrap();
    let mut session = Session::builder()
        .table("lineitem", table.clone())
        .search(SearchConfig::pruned())
        .mode(ExecutionMode::ClientSide)
        .build()
        .unwrap();
    let client = session.grouping_sets(&w).unwrap();
    session.set_mode(ExecutionMode::ServerSide);
    let server = session.grouping_sets(&w).unwrap();
    assert_eq!(tagged_norm(&client.table), tagged_norm(&server.table));
    assert!(
        session.engine().catalog().temp_names().is_empty(),
        "temps leaked"
    );
    // the server side shares scans: it must not scan more rows than the
    // client side (which re-scans per query)
    assert!(server.metrics.rows_scanned <= client.metrics.rows_scanned);
}

#[test]
fn shared_scan_engine_api_matches_per_query_execution() {
    let table = sales(6_000, 53);
    let mut engine = engine_with(table.clone(), "sales");
    let groupings: Vec<Vec<String>> = vec![
        vec!["region".into()],
        vec!["gender".into()],
        vec!["region".into(), "channel".into()],
    ];
    let shared = engine
        .run_shared_group_bys("sales", &groupings, &[AggSpec::count()])
        .unwrap();
    let mut m = ExecMetrics::new();
    for (cols, out) in groupings.iter().zip(&shared) {
        let ords: Vec<usize> = cols
            .iter()
            .map(|c| table.schema().index_of(c).unwrap())
            .collect();
        let direct = hash_group_by(&table, &ords, &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(out.num_rows(), direct.num_rows(), "grouping {cols:?}");
        let sum = |t: &Table| -> i64 {
            (0..t.num_rows())
                .map(|r| t.value(r, t.num_columns() - 1).as_int().unwrap())
                .sum()
        };
        assert_eq!(sum(out), sum(&direct));
    }
}

#[test]
fn sort_based_aggregation_is_equivalent_and_ordered() {
    let table = lineitem(5_000, 1.0, 54);
    let ship = table.schema().index_of("l_shipdate").unwrap();
    let mut m = ExecMetrics::new();
    let sorted = sort_group_by(&table, &[ship], &[AggSpec::count()], &mut m).unwrap();
    let hashed = hash_group_by(&table, &[ship], &[AggSpec::count()], &mut m).unwrap();
    assert_eq!(sorted.num_rows(), hashed.num_rows());
    for w in 0..sorted.num_rows() - 1 {
        assert!(sorted.value(w, 0) <= sorted.value(w + 1, 0), "row {w}");
    }
}

#[test]
fn dot_rendering_of_an_optimized_plan() {
    let table = lineitem(5_000, 0.0, 55);
    let w = Workload::single_columns(
        "lineitem",
        &table,
        &["l_returnflag", "l_linestatus", "l_shipmode"],
    )
    .unwrap();
    let mut model = CardinalityCostModel::new(ExactSource::new(&table));
    let (plan, _) = GbMqo::new().plan(&w, &mut model).unwrap();
    let dot = plan.render_dot(&w.column_names);
    assert!(dot.contains("digraph plan"));
    assert_eq!(dot.matches(" -> ").count(), plan.node_count());
}
