//! Integration tests for the `Session` API: dependency-parallel
//! execution equivalence, the workload plan cache, and the unified
//! error type.

use gbmqo_core::prelude::*;
use gbmqo_integration::{assert_same_results, col_names, modular_table};
use proptest::prelude::*;

fn workload_of(table: &gbmqo_storage::Table, requests: &[Vec<usize>]) -> Workload {
    let names = col_names(table.num_columns());
    let reqs: Vec<Vec<&str>> = requests
        .iter()
        .map(|r| r.iter().map(|&c| names[c].as_str()).collect())
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Workload::new("t", table, &refs, &reqs).unwrap()
}

fn session_with(table: &gbmqo_storage::Table, mode: ExecutionMode, threads: usize) -> Session {
    Session::builder()
        .table("t", table.clone())
        .search(SearchConfig::pruned())
        .mode(mode)
        .parallelism(threads)
        .build()
        .unwrap()
}

/// Strategy: 2–5 columns with assorted cardinalities plus a random
/// request list mixing single- and multi-column sets.
fn workload_strategy() -> impl Strategy<Value = (Vec<usize>, Vec<Vec<usize>>)> {
    prop::collection::vec(prop::sample::select(vec![2usize, 3, 5, 11, 60, 300]), 2..=5)
        .prop_flat_map(|cards| {
            let n = cards.len();
            let requests =
                prop::collection::vec(prop::collection::vec(0..n, 1..=n.min(3)), 1..=(n + 2));
            (Just(cards), requests)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The dependency-parallel executor computes exactly what the serial
    /// client-side driver computes, on arbitrary workloads and thread
    /// counts, up to row order.
    #[test]
    fn parallel_session_matches_serial(
        (cards, raw_requests) in workload_strategy(),
        threads in 1usize..=4,
    ) {
        // Dedup column indices inside each request; drop dup requests.
        let mut requests: Vec<Vec<usize>> = raw_requests
            .into_iter()
            .map(|mut r| { r.sort_unstable(); r.dedup(); r })
            .collect();
        requests.sort();
        requests.dedup();

        let table = modular_table(600, &cards);
        let w = workload_of(&table, &requests);

        let mut serial = session_with(&table, ExecutionMode::ClientSide, 1);
        let mut parallel = session_with(&table, ExecutionMode::Parallel, threads);

        let (plan_s, _) = serial.plan(&w).unwrap();
        let (plan_p, _) = parallel.plan(&w).unwrap();
        prop_assert_eq!(
            plan_s.render(&w.column_names),
            plan_p.render(&w.column_names),
            "identical sessions must choose identical plans"
        );

        let rep_s = serial.run_plan(&plan_s, &w).unwrap();
        let rep_p = parallel.run_plan(&plan_p, &w).unwrap();
        assert_same_results(&w, &rep_s, &rep_p, "parallel vs serial");

        // No temp tables may survive either execution.
        prop_assert!(serial.engine().catalog().temp_names().is_empty());
        prop_assert!(parallel.engine().catalog().temp_names().is_empty());
    }

    /// A memory budget degrades parallel execution (skipping
    /// materializations) but never changes results.
    #[test]
    fn budgeted_parallel_matches_serial(
        (cards, raw_requests) in workload_strategy(),
        budget_kb in 0usize..=64,
    ) {
        let mut requests: Vec<Vec<usize>> = raw_requests
            .into_iter()
            .map(|mut r| { r.sort_unstable(); r.dedup(); r })
            .collect();
        requests.sort();
        requests.dedup();

        let table = modular_table(600, &cards);
        let w = workload_of(&table, &requests);

        let mut serial = session_with(&table, ExecutionMode::ClientSide, 1);
        let mut budgeted = Session::builder()
            .table("t", table.clone())
            .search(SearchConfig::pruned())
            .mode(ExecutionMode::Parallel)
            .parallelism(2)
            .memory_budget(budget_kb * 1024)
            .build()
            .unwrap();

        let (plan, _) = serial.plan(&w).unwrap();
        let rep_s = serial.run_plan(&plan, &w).unwrap();
        let rep_b = budgeted.run_plan(&plan, &w).unwrap();
        assert_same_results(&w, &rep_s, &rep_b, "budgeted parallel vs serial");
        prop_assert!(budgeted.engine().catalog().temp_names().is_empty());
    }
}

#[test]
fn repeated_workload_skips_the_optimizer() {
    let table = modular_table(500, &[3, 7, 40]);
    let w = workload_of(&table, &[vec![0], vec![1], vec![2], vec![0, 1]]);
    let mut s = session_with(&table, ExecutionMode::Parallel, 2);

    let first = s.grouping_sets(&w).unwrap();
    assert!(!first.stats.cache_hit);
    assert!(first.stats.optimizer_calls > 0);

    let second = s.grouping_sets(&w).unwrap();
    assert!(second.stats.cache_hit);
    assert_eq!(
        second.stats.optimizer_calls, 0,
        "cache hits must issue zero optimizer cost calls"
    );
    assert_eq!(first.table.num_rows(), second.table.num_rows());
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn grouping_sets_union_matches_across_modes() {
    let table = modular_table(500, &[4, 6, 25]);
    let w = workload_of(&table, &[vec![0], vec![1], vec![2]]);
    let mut rows = Vec::new();
    for mode in [
        ExecutionMode::ClientSide,
        ExecutionMode::ServerSide,
        ExecutionMode::Parallel,
    ] {
        let mut s = session_with(&table, mode, 2);
        let out = s.grouping_sets(&w).unwrap();
        assert_eq!(out.grouping_set_count(), 3, "{mode:?}");
        rows.push(out.table.num_rows());
    }
    assert!(
        rows.windows(2).all(|w| w[0] == w[1]),
        "union sizes: {rows:?}"
    );
}

#[test]
fn unified_error_type_spans_subsystems() {
    // Storage errors surface as CoreError::Storage through the prelude
    // Result, stats errors as CoreError::Stats — one result type for the
    // whole public API.
    let table = modular_table(100, &[3]);
    let w = workload_of(&table, &[vec![0]]);
    let mut s = Session::builder().build().unwrap(); // no tables registered
    let err = s.grouping_sets(&w).unwrap_err();
    assert!(matches!(err, CoreError::Storage(_)), "got {err:?}");
    assert!(err.to_string().contains("table"));

    let err = Session::builder()
        .table("t", table)
        .cost_model(CostModelSpec::SampledCardinality {
            sample_size: 0,
            estimator: gbmqo_stats::DistinctEstimator::Hybrid,
            seed: 1,
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidSession(_)), "got {err:?}");
}
