//! Sharded execution invariants: radix-partitioned base tables must be
//! observationally identical to unsharded ones, and the aggregate
//! cache's per-shard entries must survive appends to sibling shards.

use gbmqo_core::prelude::*;
use gbmqo_exec::Engine;
use gbmqo_integration::{assert_same_results, col_names, modular_table, session_with};
use gbmqo_storage::{route_rows, shard_table_name, Catalog, Column, Schema, Table};
use proptest::prelude::*;

/// Strategy: 2–6 columns with cardinalities from tiny to row count.
fn cards_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(
        prop::sample::select(vec![2usize, 3, 7, 20, 100, 400]),
        2..=6,
    )
}

fn workload_of(table: &Table, n: usize) -> Workload {
    let names = col_names(n);
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    Workload::single_columns("t", table, &refs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any shard count, in both serial and parallel modes, computes
    /// exactly what the unsharded session computes.
    #[test]
    fn sharded_matches_unsharded(cards in cards_strategy()) {
        let table = modular_table(400, &cards);
        let w = workload_of(&table, cards.len());
        let mut reference = session_with(table.clone(), "t");
        let baseline = reference.run_workload(&w, CacheControl::Default).unwrap();

        for shards in [1u32, 2, 4, 8] {
            for mode in [ExecutionMode::ClientSide, ExecutionMode::Parallel] {
                let mut s = Session::builder()
                    .table("t", table.clone())
                    .shards(shards)
                    .mode(mode)
                    .build()
                    .unwrap();
                let out = s.run_workload(&w, CacheControl::Default).unwrap();
                assert_same_results(
                    &w,
                    &baseline.report,
                    &out.report,
                    &format!("{shards} shards, {mode:?}"),
                );
                // `shards(1)` registers an unsharded table; real shard
                // layouts surface in the metrics.
                let expected = if shards > 1 { u64::from(shards) } else { 0 };
                prop_assert_eq!(out.report.metrics.shards, expected);
                prop_assert!(
                    s.engine().catalog().temp_names().is_empty(),
                    "temps leaked at {} shards", shards
                );
            }
        }
    }
}

/// A grouping that covers the shard key needs no re-aggregation merge
/// (hash-disjoint shards hold disjoint group sets); any other grouping
/// re-aggregates the concatenated partials.
#[test]
fn merge_elided_only_when_grouping_covers_shard_key() {
    let t = modular_table(4000, &[3, 7]);
    let mut catalog = Catalog::new();
    catalog
        .register_sharded("t", t.clone(), 4, Some(vec!["c0".to_string()]))
        .unwrap();
    let mut s = Session::builder()
        .engine(Engine::new(catalog))
        .mode(ExecutionMode::ClientSide)
        .build()
        .unwrap();
    let mut plain = session_with(t.clone(), "t");

    let covering = Workload::single_columns("t", &t, &["c0"]).unwrap();
    let out = s.run_workload(&covering, CacheControl::Default).unwrap();
    assert_eq!(out.report.metrics.shards, 4);
    assert_eq!(
        out.report.metrics.merge_rows, 0,
        "grouping by the shard key must concatenate without re-aggregating"
    );
    let base = plain
        .run_workload(&covering, CacheControl::Default)
        .unwrap();
    assert_same_results(&covering, &base.report, &out.report, "covering");

    let other = Workload::single_columns("t", &t, &["c1"]).unwrap();
    let out = s.run_workload(&other, CacheControl::Default).unwrap();
    assert!(
        out.report.metrics.merge_rows > 0,
        "a non-covering grouping must merge per-shard partials"
    );
    let base = plain.run_workload(&other, CacheControl::Default).unwrap();
    assert_same_results(&other, &base.report, &out.report, "non-covering");
}

/// Build a delta table whose rows all share one shard-key value (and
/// so all hash to one shard), returning `(delta, shard)`.
fn delta_for_one_shard(schema: &Schema, key_col: usize, shards: u32, rows: usize) -> (Table, u32) {
    let value = 0i64;
    let shard = route_rows(&[&Column::from_i64(vec![value])], 1, shards)[0];
    let columns: Vec<Column> = (0..schema.fields().len())
        .map(|c| {
            let v = if c == key_col { value } else { 1 };
            Column::from_i64(vec![v; rows])
        })
        .collect();
    (Table::new(schema.clone(), columns).unwrap(), shard)
}

/// The acceptance property from the issue: appending to one shard
/// invalidates only that shard's cached aggregates; the sibling
/// shards' entries stay warm and keep serving. Refresh is disabled so
/// the logical-level entries die with the append and the per-shard
/// path is what serves — under the default lazy policy the logical
/// entry would be delta-refreshed instead and cover both requests
/// outright (see `refreshed_cache_equals_cold_recompute`).
#[test]
fn single_shard_append_keeps_sibling_shards_warm() {
    let t = modular_table(4000, &[3, 7]);
    let w = Workload::single_columns("t", &t, &["c0", "c1"]).unwrap();
    let mut s = Session::builder()
        .table("t", t)
        .shards(4)
        .mode(ExecutionMode::ClientSide)
        .mat_cache_budget_bytes(1 << 20)
        .refresh_policy(RefreshPolicy::Disabled)
        .build()
        .unwrap();
    assert_eq!(s.shards(), 4);

    // Cold run: the optimizer shares a (c0, c1) parent between the two
    // requests; its per-shard partials are admitted under each shard
    // entry's own name and version when the temps retire.
    let cold = s.run_workload(&w, CacheControl::Default).unwrap();
    assert_eq!(cold.report.metrics.matcache_hits, 0);
    assert!(
        s.mat_cache_stats().insertions >= 4,
        "per-shard partials should be admitted on the cold run"
    );

    // Append rows that all route to a single shard.
    let desc = s.engine().catalog().shard_desc("t").unwrap().clone();
    let schema = s.engine().catalog().table("t").unwrap().schema().clone();
    let key_col = schema.index_of(&desc.key_cols[0]).unwrap();
    let (delta, touched) = delta_for_one_shard(&schema, key_col, desc.shard_count, 8);
    s.engine_mut().catalog_mut().append("t", delta).unwrap();
    s.bump_stats_version();
    let touched_rows = s
        .engine()
        .catalog()
        .table(&shard_table_name("t", touched))
        .unwrap()
        .num_rows() as u64;

    // Warm run: the logical-level entries died with the logical table
    // version, but three of the four shards kept their versions — both
    // requests are served per-shard: 3 warm hits each, and only the
    // touched shard's base entry is rescanned.
    let warm = s.run_workload(&w, CacheControl::Default).unwrap();
    assert_eq!(
        warm.report.metrics.matcache_hits, 6,
        "2 requests x 3 untouched shards must hit the cache"
    );
    assert_eq!(
        warm.report.metrics.shard_rows,
        2 * touched_rows,
        "only the appended shard recomputes from its base entry"
    );

    // And the mixed warm/cold merge is still correct.
    let after = s.engine().catalog().table("t").unwrap().clone();
    let mut fresh = session_with(after, "t");
    let expected = fresh.run_workload(&w, CacheControl::Default).unwrap();
    assert_same_results(&w, &expected.report, &warm.report, "post-append");
}

/// `register_table` on a sharded session re-shards the replacement and
/// drops stale per-shard cache entries.
#[test]
fn register_table_reshards_replacement() {
    let t = modular_table(1000, &[5, 11]);
    let w = Workload::single_columns("t", &t, &["c0", "c1"]).unwrap();
    let mut s = Session::builder()
        .table("t", t.clone())
        .shards(4)
        .mode(ExecutionMode::Parallel)
        .mat_cache_budget_bytes(1 << 20)
        .build()
        .unwrap();
    s.run_workload(&w, CacheControl::Default).unwrap();

    // Replace with different contents: every cached aggregate (logical
    // and per-shard) must be invalidated, and the new table re-sharded.
    let t2 = modular_table(1200, &[5, 11]);
    s.register_table("t", t2.clone()).unwrap();
    let desc = s.engine().catalog().shard_desc("t").unwrap();
    assert_eq!(desc.shard_count, 4);

    let out = s.run_workload(&w, CacheControl::Default).unwrap();
    assert_eq!(
        out.report.metrics.matcache_hits, 0,
        "stale entries must not serve the replaced table"
    );
    let mut fresh = session_with(t2, "t");
    let expected = fresh.run_workload(&w, CacheControl::Default).unwrap();
    assert_same_results(&w, &expected.report, &out.report, "replaced");
}
