//! Property-based tests over the optimizer's core invariants.

use gbmqo_core::prelude::*;
use gbmqo_core::schedule::{plan_min_storage, schedule_plan, simulate_peak};
use gbmqo_core::{optimal_plan, render_sql};
use gbmqo_cost::CardinalityCostModel;
use gbmqo_integration::{assert_same_results, col_names, modular_table, session_with};
use gbmqo_stats::{DistinctEstimator, ExactSource};
use gbmqo_storage::Table;
use proptest::prelude::*;

/// Strategy: 2–6 columns with cardinalities from tiny to row count.
fn cards_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(
        prop::sample::select(vec![2usize, 3, 7, 20, 100, 400]),
        2..=6,
    )
}

fn workload_of(table: &gbmqo_storage::Table, n: usize) -> Workload {
    let names = col_names(n);
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    Workload::single_columns("t", table, &refs).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any plan the greedy search returns (any configuration) computes
    /// exactly the same results as the naive plan.
    #[test]
    fn optimized_plan_is_semantically_equivalent(
        cards in cards_strategy(),
        binary in any::<bool>(),
        sub in any::<bool>(),
        mono in any::<bool>(),
    ) {
        let table = modular_table(400, &cards);
        let w = workload_of(&table, cards.len());
        let config = SearchConfig {
            binary_only: binary,
            subsumption_pruning: sub,
            monotonicity_pruning: mono,
            ..Default::default()
        };
        let mut model = CardinalityCostModel::new(ExactSource::new(&table));
        let (plan, stats) = GbMqo::with_config(config).plan(&w, &mut model).unwrap();
        plan.validate(&w).unwrap();
        prop_assert!(stats.final_cost <= stats.naive_cost + 1e-9);

        let mut session = session_with(table, "t");
        let optimized = session.run_plan(&plan, &w).unwrap();
        let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
        assert_same_results(&w, &naive, &optimized, "prop");
        // counts in every result sum to the row count
        for (_, t) in &optimized.results {
            let cnt = t.num_columns() - 1;
            let total: i64 = (0..t.num_rows()).map(|r| t.value(r, cnt).as_int().unwrap()).sum();
            prop_assert_eq!(total, 400);
        }
    }

    /// The exhaustive optimum never costs more than the greedy plan, and
    /// the greedy plan never costs more than naive.
    #[test]
    fn cost_ordering_optimal_greedy_naive(cards in cards_strategy()) {
        let table = modular_table(300, &cards);
        let w = workload_of(&table, cards.len());
        let mut m1 = CardinalityCostModel::new(ExactSource::new(&table));
        let (_, opt_cost) = optimal_plan(&w, &mut m1).unwrap();
        let mut m2 = CardinalityCostModel::new(ExactSource::new(&table));
        let (_, stats) = GbMqo::new().plan(&w, &mut m2).unwrap();
        prop_assert!(opt_cost <= stats.final_cost + 1e-6);
        prop_assert!(stats.final_cost <= stats.naive_cost + 1e-6);
    }

    /// §4.3 soundness: with the cardinality model, binary merges, and
    /// disjoint single-column inputs, pruning does not change the final
    /// plan cost.
    #[test]
    fn pruning_soundness_under_cardinality_model(cards in cards_strategy()) {
        let table = modular_table(500, &cards);
        let w = workload_of(&table, cards.len());
        let binary = SearchConfig { binary_only: true, ..Default::default() };
        let run = |cfg: SearchConfig| {
            let mut m = CardinalityCostModel::new(ExactSource::new(&table));
            GbMqo::with_config(cfg).plan(&w, &mut m).unwrap().1.final_cost
        };
        let plain = run(binary.clone());
        let pruned = run(SearchConfig {
            subsumption_pruning: true,
            monotonicity_pruning: true,
            ..binary
        });
        prop_assert!((plain - pruned).abs() < 1e-6, "plain {} pruned {}", plain, pruned);
    }

    /// The storage recursion is an upper bound the emitted schedule meets:
    /// simulating the schedule never exceeds the predicted peak.
    #[test]
    fn schedule_peak_matches_recursion(cards in cards_strategy()) {
        let table = modular_table(300, &cards);
        let w = workload_of(&table, cards.len());
        let mut model = CardinalityCostModel::new(ExactSource::new(&table));
        let (plan, _) = GbMqo::new().plan(&w, &mut model).unwrap();
        let mut m2 = CardinalityCostModel::new(ExactSource::new(&table));
        let mut coster = gbmqo_core::coster::EdgeCoster::new(&mut m2, w.base_ordinals.clone());
        let mut d = |s: ColSet| coster.result_bytes(s);
        let predicted = plan_min_storage(&plan, &mut d);
        let steps = schedule_plan(&plan, &mut d);
        let simulated = simulate_peak(&steps, &mut d);
        prop_assert!(simulated <= predicted + 1e-6,
            "simulated {} > predicted {}", simulated, predicted);
    }

    /// A storage constraint is respected by the chosen plan's predicted
    /// peak (and zero budget forces the naive plan).
    #[test]
    fn storage_constraint_is_respected(cards in cards_strategy(), budget in 0.0f64..50_000.0) {
        let table = modular_table(300, &cards);
        let w = workload_of(&table, cards.len());
        let mut model = CardinalityCostModel::new(ExactSource::new(&table));
        let (plan, _) = GbMqo::with_config(SearchConfig {
            max_intermediate_bytes: Some(budget),
            ..Default::default()
        })
        .plan(&w, &mut model)
        .unwrap();
        let mut m2 = CardinalityCostModel::new(ExactSource::new(&table));
        let mut coster = gbmqo_core::coster::EdgeCoster::new(&mut m2, w.base_ordinals.clone());
        let mut d = |s: ColSet| coster.result_bytes(s);
        let predicted = plan_min_storage(&plan, &mut d);
        prop_assert!(predicted <= budget + 1e-6,
            "plan needs {} bytes over budget {}", predicted, budget);
    }

    /// The compact plan text format roundtrips every plan the optimizer
    /// can produce.
    #[test]
    fn plan_text_roundtrip(cards in cards_strategy(), binary in any::<bool>()) {
        let table = modular_table(250, &cards);
        let w = workload_of(&table, cards.len());
        let mut model = CardinalityCostModel::new(ExactSource::new(&table));
        let (plan, _) = GbMqo::with_config(SearchConfig {
            binary_only: binary,
            ..Default::default()
        })
        .plan(&w, &mut model)
        .unwrap();
        let text = gbmqo_core::plan_to_text(&plan);
        let back = gbmqo_core::plan_from_text(&text).unwrap();
        prop_assert_eq!(&plan, &back);
        // and the deserialized plan still validates + executes identically
        back.validate(&w).unwrap();
        let mut session = session_with(table, "t");
        let a = session.run_plan(&plan, &w).unwrap();
        let b = session.run_plan(&back, &w).unwrap();
        assert_same_results(&w, &a, &b, "roundtrip");
    }

    /// SQL rendering is structurally consistent for arbitrary plans.
    #[test]
    fn sql_script_is_consistent(cards in cards_strategy()) {
        let table = modular_table(200, &cards);
        let w = workload_of(&table, cards.len());
        let mut model = CardinalityCostModel::new(ExactSource::new(&table));
        let (plan, _) = GbMqo::new().plan(&w, &mut model).unwrap();
        let sql = render_sql(&plan, &w);
        let selects = sql.iter().filter(|s| s.starts_with("SELECT")).count();
        let intos = sql.iter().filter(|s| s.contains(" INTO ")).count();
        let drops = sql.iter().filter(|s| s.starts_with("DROP")).count();
        prop_assert_eq!(selects, plan.node_count());
        prop_assert_eq!(intos, drops);
        prop_assert_eq!(intos, plan.materialized_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The serial executor's *actual* peak temp storage never exceeds
    /// the peak simulated for the schedule it runs, when the schedule
    /// is derived from exact materialized sizes. This ties the §4.4
    /// scheduling model to the catalog's byte-accurate accounting.
    #[test]
    fn executor_peak_never_exceeds_simulated_peak(cards in cards_strategy()) {
        let table = modular_table(300, &cards);
        let w = workload_of(&table, cards.len());
        let mut model = CardinalityCostModel::new(ExactSource::new(&table));
        let (plan, _) = GbMqo::new().plan(&w, &mut model).unwrap();

        // Exact size of a node's materialization: run the Group By and
        // measure the result (count-only workloads make a set's result
        // identical whichever ancestor it is computed from).
        let base = table.clone();
        let ords_of = |s: ColSet| w.base_cols(s);
        let mut exact = move |s: ColSet| -> f64 {
            let mut m = gbmqo_exec::ExecMetrics::new();
            let t = gbmqo_exec::hash_group_by(
                &base, &ords_of(s), &[gbmqo_exec::AggSpec::count()], &mut m,
            ).unwrap();
            t.byte_size() as f64
        };

        let steps = schedule_plan(&plan, &mut exact);
        let simulated = simulate_peak(&steps, &mut exact);

        let mut session = Session::builder().table("t", table).build().unwrap();
        let report = session.run_plan_scheduled(&plan, &w, &mut exact).unwrap();
        prop_assert!(
            report.peak_temp_bytes as f64 <= simulated + 1e-6,
            "actual peak {} > simulated peak {}",
            report.peak_temp_bytes, simulated
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Delta-propagation invariant: under any append schedule, a warm
    /// session whose cached aggregates are delta-refreshed returns
    /// exactly what a cold session computes from scratch over the full
    /// table — serial and parallel, sharded and unsharded, count-only
    /// and SUM/MIN/MAX workloads alike.
    #[test]
    fn refreshed_cache_equals_cold_recompute(
        cards in prop::collection::vec(prop::sample::select(vec![3usize, 7, 20, 400]), 2..=4),
        appends in prop::collection::vec(20usize..150, 1..=3),
        shards in prop::sample::select(vec![0u32, 4]),
        parallel in any::<bool>(),
        rich_aggs in any::<bool>(),
    ) {
        let base_rows = 300usize;
        let base = modular_table(base_rows, &cards);
        let names = col_names(cards.len());
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut w = Workload::single_columns("t", &base, &refs).unwrap();
        if rich_aggs {
            // every mergeable aggregate kind rides along with the count
            w = w.with_aggregates(vec![
                gbmqo_exec::AggSpec::count(),
                gbmqo_exec::AggSpec::sum("c0", "sum_c0"),
                gbmqo_exec::AggSpec::min("c1", "min_c1"),
                gbmqo_exec::AggSpec::max("c0", "max_c0"),
            ]);
        }

        let mode = if parallel { ExecutionMode::Parallel } else { ExecutionMode::ClientSide };
        let mut warm = Session::builder()
            .table("t", base.clone())
            .search(SearchConfig::pruned())
            .mode(mode)
            .shards(shards)
            .mat_cache_budget_bytes(1 << 20)
            .build()
            .unwrap();
        warm.run_workload(&w, CacheControl::Default).unwrap();

        let mut parts: Vec<Table> = vec![base];
        let mut offset = base_rows;
        for (i, &n) in appends.iter().enumerate() {
            // Slice past the rows generated so far, so high-cardinality
            // columns introduce group keys the cached aggregate has
            // never seen.
            let delta = modular_table(offset + n, &cards)
                .slice_rows(offset, n)
                .unwrap();
            offset += n;
            warm.append("t", delta.clone()).unwrap();
            parts.push(delta);

            let warm_out = warm.run_workload(&w, CacheControl::Default).unwrap();

            let all: Vec<&Table> = parts.iter().collect();
            let mut cold = Session::builder()
                .table("t", Table::concat(&all).unwrap())
                .search(SearchConfig::pruned())
                .mode(mode)
                .shards(shards)
                .build()
                .unwrap();
            let cold_out = cold.run_workload(&w, CacheControl::Default).unwrap();
            // Full-column comparison (not just keys + count): SUM/MIN/MAX
            // payloads must survive the delta merge bit-for-bit.
            for (set, warm_t) in &warm_out.report.results {
                let cold_t = &cold_out
                    .report
                    .results
                    .iter()
                    .find(|(s, _)| s == set)
                    .unwrap_or_else(|| panic!("append {i}: cold run missing a set"))
                    .1;
                prop_assert_eq!(
                    rows_by_name(warm_t),
                    rows_by_name(cold_t),
                    "append {} (shards {}, parallel {}, set {:?})",
                    i, shards, parallel, w.col_names(*set)
                );
            }
        }
    }
}

/// Every row of `t` as sorted `name=value` cells, with rows sorted —
/// equality independent of row and column order.
fn rows_by_name(t: &Table) -> Vec<Vec<String>> {
    let names = t.schema().names();
    let mut rows: Vec<Vec<String>> = (0..t.num_rows())
        .map(|r| {
            let mut cells: Vec<String> = (0..t.num_columns())
                .map(|c| format!("{}={:?}", names[c], t.value(r, c)))
                .collect();
            cells.sort();
            cells
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adaptive feedback only changes *estimates* — execution over an
    /// [`AdaptiveCardinalitySource`]-planned session produces results
    /// identical to static-stats execution in every mode, including the
    /// second round where feedback-corrected estimates (and possibly a
    /// re-optimized plan) are in effect.
    #[test]
    fn adaptive_execution_matches_static(
        cards in cards_strategy(),
        mode in prop::sample::select(vec![
            ExecutionMode::ClientSide,
            ExecutionMode::ServerSide,
            ExecutionMode::Parallel,
        ]),
        shards in prop::sample::select(vec![0u32, 4]),
    ) {
        let table = modular_table(400, &cards);
        let w = workload_of(&table, cards.len());
        let build = |adaptive: bool| {
            Session::builder()
                .table("t", table.clone())
                .cost_model(CostModelSpec::SampledCardinality {
                    sample_size: 32,
                    estimator: DistinctEstimator::Hybrid,
                    seed: 3,
                })
                .mode(mode)
                .shards(shards)
                .adaptive(adaptive)
                .build()
                .unwrap()
        };
        let (mut stat, mut adap) = (build(false), build(true));
        for round in 0..2 {
            let expect = stat.run_workload(&w, CacheControl::Default).unwrap();
            let got = adap.run_workload(&w, CacheControl::Default).unwrap();
            assert_same_results(
                &w,
                &expect.report,
                &got.report,
                &format!("mode {mode:?} shards {shards} round {round}"),
            );
        }
        prop_assert!(adap.feedback_len() > 0, "feedback store stayed empty");
    }
}

/// Non-proptest regression: overlapping (TC-style) workloads also satisfy
/// the semantic-equivalence invariant.
#[test]
fn overlapping_workloads_equivalent() {
    let table = modular_table(400, &[3, 5, 8, 13]);
    let names = col_names(4);
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let w = Workload::two_columns("t", &table, &refs).unwrap();
    let mut model = CardinalityCostModel::new(ExactSource::new(&table));
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();
    plan.validate(&w).unwrap();
    let mut session = session_with(table, "t");
    let optimized = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &optimized, "TC overlap");
}
