//! Kernel-equivalence properties: the radix-partitioned kernel, the
//! scalar hash kernel, and sort-based aggregation must agree on every
//! input — including NULL keys, dictionary strings, keys too wide for
//! packed codes (`RowKey::Heap` / u128 overflow), empty inputs, a single
//! group, and any thread count.

use gbmqo_exec::{hash_group_by, radix_group_by, sort_group_by, AggSpec, ExecMetrics};
use gbmqo_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use proptest::prelude::*;

/// Row = (small int key, word key, wide int key, value). `None` = NULL.
type Row = (Option<i64>, Option<&'static str>, Option<i64>, Option<i64>);

/// Schema: g_small (packable), g_str (dict-coded, one word longer than
/// 23 bytes so row-key fallbacks heap-allocate), g_wide (full i64 range:
/// one column needs 65 bits, two overflow u128), v (aggregated).
fn build(rows: &[Row]) -> Table {
    let schema = Schema::new(vec![
        Field::new("g_small", DataType::Int64),
        Field::new("g_str", DataType::Utf8),
        Field::new("g_wide", DataType::Int64),
        Field::new("v", DataType::Int64),
    ])
    .unwrap();
    let mut tb = TableBuilder::new(schema);
    let val = |o: Option<i64>| o.map(Value::Int).unwrap_or(Value::Null);
    for (a, s, w, v) in rows {
        tb.push_row(&[
            val(*a),
            s.map(Value::str).unwrap_or(Value::Null),
            val(*w),
            val(*v),
        ])
        .unwrap();
    }
    tb.finish().unwrap()
}

fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
    let small = prop_oneof![1 => Just(None), 7 => (-3i64..4).prop_map(Some)];
    let word = prop_oneof![
        1 => Just(None),
        7 => prop::sample::select(vec![
            "x",
            "y",
            "zzz",
            "a-string-well-beyond-twenty-three-bytes",
        ]).prop_map(Some),
    ];
    let wide = prop_oneof![
        1 => Just(None),
        4 => any::<i64>().prop_map(Some),
        3 => (0i64..3).prop_map(Some),
    ];
    let value = prop_oneof![1 => Just(None), 7 => (-100i64..100).prop_map(Some)];
    prop::collection::vec((small, word, wide, value), 0..300)
}

fn aggs() -> Vec<AggSpec> {
    vec![
        AggSpec::count(),
        AggSpec::sum("v", "sum_v"),
        AggSpec::min("v", "min_v"),
        AggSpec::max("g_str", "max_s"),
    ]
}

/// Sorted row-strings: order-insensitive table comparison.
fn norm(t: &Table) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = (0..t.num_rows())
        .map(|r| {
            (0..t.num_columns())
                .map(|c| t.value(r, c).to_string())
                .collect()
        })
        .collect();
    v.sort();
    v
}

fn assert_kernels_agree(table: &Table, group_cols: &[usize]) {
    let mut m = ExecMetrics::new();
    let reference = hash_group_by(table, group_cols, &aggs(), &mut m).unwrap();
    let sorted = sort_group_by(table, group_cols, &aggs(), &mut m).unwrap();
    assert_eq!(norm(&reference), norm(&sorted), "sort kernel diverged");
    for threads in [1usize, 2, 4] {
        let radix =
            radix_group_by(table, group_cols, &aggs(), threads, None, None, &mut m).unwrap();
        assert_eq!(
            norm(&reference),
            norm(&radix),
            "radix kernel diverged (threads {threads}, cols {group_cols:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// radix == hash == sort for every grouping over mixed-type keys
    /// with NULLs, at 1, 2 and 4 threads.
    #[test]
    fn kernels_agree_on_arbitrary_tables(rows in rows_strategy()) {
        let table = build(&rows);
        // Packed u64 (g_small), dict (g_str), 65-bit u128 (g_wide),
        // multi-column mixes, and the all-columns key.
        for cols in [
            vec![0usize],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![2, 0],
            vec![0, 1, 2],
        ] {
            assert_kernels_agree(&table, &cols);
        }
    }

    /// Two full-range i64 columns overflow the u128 code; the kernel must
    /// fall back to row keys and still agree with the scalar kernels.
    #[test]
    fn wide_keys_fall_back_to_row_keys(
        rows in prop::collection::vec((any::<i64>(), any::<i64>(), 0i64..50), 1..200),
    ) {
        let schema = Schema::new(vec![
            Field::new("w1", DataType::Int64),
            Field::new("w2", DataType::Int64),
            Field::new("v", DataType::Int64),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for (a, b, v) in &rows {
            tb.push_row(&[Value::Int(*a), Value::Int(*b), Value::Int(*v)]).unwrap();
        }
        let table = tb.finish().unwrap();
        let mut m = ExecMetrics::new();
        let reference = hash_group_by(&table, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        let radix = radix_group_by(&table, &[0, 1], &[AggSpec::count()], 4, None, None, &mut m).unwrap();
        prop_assert_eq!(norm(&reference), norm(&radix));
    }
}

#[test]
fn empty_input_yields_empty_result() {
    let table = build(&[]);
    for cols in [vec![0usize], vec![0, 1, 2]] {
        let mut m = ExecMetrics::new();
        let out = radix_group_by(&table, &cols, &aggs(), 4, None, None, &mut m).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), cols.len() + aggs().len());
    }
}

#[test]
fn single_group_input() {
    let rows: Vec<Row> = (0..5000)
        .map(|i| (Some(7), Some("x"), Some(42), Some(i % 10)))
        .collect();
    let table = build(&rows);
    assert_kernels_agree(&table, &[0, 1, 2]);
    let mut m = ExecMetrics::new();
    let out = radix_group_by(&table, &[0], &[AggSpec::count()], 4, None, None, &mut m).unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.value(0, 1), Value::Int(5000));
}

#[test]
fn metrics_track_packed_and_fallback_rows() {
    let rows: Vec<Row> = (0..1000)
        .map(|i| (Some(i % 5), Some("x"), Some(i64::MIN + i), Some(1)))
        .collect();
    let table = build(&rows);

    // g_small packs into a u64 code.
    let mut m = ExecMetrics::new();
    radix_group_by(&table, &[0], &[AggSpec::count()], 2, None, None, &mut m).unwrap();
    assert_eq!(m.packed_key_rows, 1000);
    assert_eq!(m.fallback_key_rows, 0);
    assert!(m.radix_partitions >= 1);

    // g_wide twice (65 bits each) overflows u128 → row-key fallback.
    let mut m = ExecMetrics::new();
    let wide = {
        let schema = Schema::new(vec![
            Field::new("w1", DataType::Int64),
            Field::new("w2", DataType::Int64),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for i in 0..1000i64 {
            // Packing is range-based: a column spanning exactly
            // i64::MIN..=i64::MAX needs 65 bits, so two such columns
            // overflow u128 and force the row-key fallback.
            let w1 = match i % 3 {
                0 => i64::MIN,
                1 => i64::MAX,
                _ => i,
            };
            let w2 = match i % 3 {
                0 => i64::MAX,
                1 => i64::MIN,
                _ => -i,
            };
            tb.push_row(&[Value::Int(w1), Value::Int(w2)]).unwrap();
        }
        tb.finish().unwrap()
    };
    radix_group_by(&wide, &[0, 1], &[AggSpec::count()], 2, None, None, &mut m).unwrap();
    assert_eq!(m.fallback_key_rows, 1000);
    assert_eq!(m.packed_key_rows, 0);
}

#[test]
fn estimated_groups_steers_partition_count() {
    let rows: Vec<Row> = (0..40_000)
        .map(|i| (Some(i % 97), Some("x"), Some(i % 3), Some(1)))
        .collect();
    let table = build(&rows);
    let mut m_small = ExecMetrics::new();
    radix_group_by(
        &table,
        &[0],
        &[AggSpec::count()],
        4,
        Some(97),
        None,
        &mut m_small,
    )
    .unwrap();
    let mut m_big = ExecMetrics::new();
    radix_group_by(
        &table,
        &[0],
        &[AggSpec::count()],
        4,
        Some(2_000_000),
        None,
        &mut m_big,
    )
    .unwrap();
    assert!(
        m_big.radix_partitions > m_small.radix_partitions,
        "a larger estimate must fan out wider ({} vs {})",
        m_big.radix_partitions,
        m_small.radix_partitions
    );
}
