//! Shared helpers for the cross-crate integration tests.

use gbmqo_core::prelude::*;
use gbmqo_exec::Engine;
use gbmqo_storage::{Catalog, Column, DataType, Field, Schema, Table, Value};

/// Normalize a Group By result to sorted `(key values, count)` rows so
/// results from different plans can be compared irrespective of row or
/// column order (columns are matched by name).
pub fn normalize(t: &Table, key_names: &[&str]) -> Vec<(Vec<Value>, i64)> {
    let cnt = t.num_columns() - 1;
    let idx: Vec<usize> = key_names
        .iter()
        .map(|n| t.schema().index_of(n).expect("key column present"))
        .collect();
    let mut rows: Vec<(Vec<Value>, i64)> = (0..t.num_rows())
        .map(|r| {
            (
                idx.iter().map(|&c| t.value(r, c)).collect(),
                t.value(r, cnt).as_int().expect("count column"),
            )
        })
        .collect();
    rows.sort();
    rows
}

/// Assert two execution reports agree on every requested set.
pub fn assert_same_results(
    workload: &Workload,
    a: &ExecutionReport,
    b: &ExecutionReport,
    context: &str,
) {
    assert_eq!(a.results.len(), b.results.len(), "{context}: result counts");
    for (set, ta) in &a.results {
        let names = workload.col_names(*set);
        let tb = &b
            .results
            .iter()
            .find(|(s, _)| s == set)
            .unwrap_or_else(|| panic!("{context}: missing result for {names:?}"))
            .1;
        assert_eq!(
            normalize(ta, &names),
            normalize(tb, &names),
            "{context}: results differ for {names:?}"
        );
    }
}

/// Build an engine holding one base table.
pub fn engine_with(table: Table, name: &str) -> Engine {
    let mut catalog = Catalog::new();
    catalog.register(name, table).expect("fresh catalog");
    Engine::new(catalog)
}

/// Wrap one base table in a serial client-side [`Session`] — the
/// execution entry point the integration tests drive plans through.
pub fn session_with(table: Table, name: &str) -> Session {
    Session::builder()
        .table(name, table)
        .mode(ExecutionMode::ClientSide)
        .build()
        .expect("fresh session")
}

/// A small synthetic table with controllable per-column cardinalities;
/// column `i` is named `c{i}` and holds `values[row] % card[i]` with a
/// per-column stride so columns with equal cardinality still differ.
pub fn modular_table(rows: usize, cards: &[usize]) -> Table {
    let fields: Vec<Field> = (0..cards.len())
        .map(|i| Field::new(format!("c{i}"), DataType::Int64))
        .collect();
    let columns: Vec<Column> = cards
        .iter()
        .enumerate()
        .map(|(i, &card)| {
            Column::from_i64(
                (0..rows)
                    .map(|r| ((r * (i + 1)) % card.max(1)) as i64)
                    .collect(),
            )
        })
        .collect();
    Table::new(Schema::new(fields).unwrap(), columns).unwrap()
}

/// Column-name slice `["c0", "c1", ...]` for [`modular_table`].
pub fn col_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("c{i}")).collect()
}
