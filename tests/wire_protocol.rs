//! Property-based and adversarial tests for wire protocol v2: chunked
//! table encode/decode round-trips (including null bitmaps split across
//! chunk boundaries), compressed frames, and hostile inputs — truncated
//! chunks, frames after the terminal response, oversized declared
//! lengths.

use gbmqo_server::codec::{self, Cursor, FrameStatus, RecvBuf};
use gbmqo_server::protocol::{
    decode_response, encode_chunk_frame, encode_frame, encode_response, frame_payload, parse_frame,
    FrameError, Response, FEATURE_LZ4, FLAG_COMPRESSED, MAX_FRAME_LEN, OP_PING, PROTOCOL_VERSION,
};
use gbmqo_server::{Client, ServerError};
use gbmqo_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a value of the given type; `v` seeds the payload, `null`
/// makes it a NULL regardless of type.
fn value_of(dt: DataType, v: i64, null: bool) -> Value {
    if null {
        return Value::Null;
    }
    match dt {
        DataType::Int64 => Value::Int(v),
        DataType::Float64 => Value::Float(v as f64 * 0.25),
        DataType::Utf8 => Value::Str(Arc::from(format!("s{}", v % 50))),
        DataType::Date32 => Value::Date(v as i32),
    }
}

/// Strategy: a table of 1–4 mixed-type columns and 0–120 rows, with
/// per-cell null flags so null bitmaps land on arbitrary chunk edges.
fn table_strategy() -> impl Strategy<Value = Table> {
    let dtypes = prop::collection::vec(
        prop::sample::select(vec![
            DataType::Int64,
            DataType::Float64,
            DataType::Utf8,
            DataType::Date32,
        ]),
        1..=4,
    );
    (dtypes, 0usize..120).prop_flat_map(|(dts, rows)| {
        // the second tuple element picks NULL with probability 1/4
        let cells = prop::collection::vec(
            prop::collection::vec((any::<i16>(), 0u8..4), dts.len()),
            rows..=rows,
        );
        cells.prop_map(move |rows_data| {
            let schema = Schema::new(
                dts.iter()
                    .enumerate()
                    .map(|(i, dt)| Field::new(format!("c{i}"), *dt))
                    .collect(),
            )
            .unwrap();
            let mut b = TableBuilder::new(schema);
            for row in &rows_data {
                let vals: Vec<Value> = row
                    .iter()
                    .zip(&dts)
                    .map(|((v, nz), dt)| value_of(*dt, *v as i64, *nz == 0))
                    .collect();
                b.push_row(&vals).unwrap();
            }
            b.finish().unwrap()
        })
    })
}

fn rows_of(t: &Table) -> Vec<Vec<Value>> {
    (0..t.num_rows())
        .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slicing a table into arbitrary-size chunk frames and decoding
    /// them back yields exactly the original rows, whatever the chunk
    /// size does to null-bitmap and dictionary boundaries.
    #[test]
    fn chunked_table_roundtrip(table in table_strategy(), chunk in 1usize..40, compress in any::<bool>()) {
        let features = if compress { FEATURE_LZ4 } else { 0 };
        let total = table.num_rows();
        let mut reassembled: Vec<Vec<Value>> = Vec::new();
        let mut start = 0usize;
        let mut index = 0u32;
        while start < total || (total == 0 && index == 0) {
            let end = (start + chunk).min(total);
            let frame = encode_chunk_frame(
                9, "tag", index, end == total, &table, start, end, features,
            );
            let (rid, resp) = decode_response(&frame, features).unwrap();
            prop_assert_eq!(rid, 9);
            match resp {
                Response::Chunk { set_tag, chunk_index, last_in_set, table: slice } => {
                    prop_assert_eq!(set_tag.as_str(), "tag");
                    prop_assert_eq!(chunk_index, index);
                    prop_assert_eq!(last_in_set, end == total);
                    prop_assert_eq!(slice.num_rows(), end - start);
                    reassembled.extend(rows_of(&slice));
                }
                other => panic!("not a chunk: {other:?}"),
            }
            index += 1;
            if end == total { break; }
            start = end;
        }
        prop_assert_eq!(reassembled, rows_of(&table));
    }

    /// Any frame body survives encode → parse under any feature set,
    /// and a frame truncated anywhere is rejected, never mis-decoded.
    #[test]
    fn frame_roundtrip_and_truncation(body in prop::collection::vec(any::<u8>(), 0..2048),
                                      compress in any::<bool>(),
                                      cut in 0usize..2048) {
        let features = if compress { FEATURE_LZ4 } else { 0 };
        let frame = encode_frame(77, OP_PING, &body, features);
        let payload = frame_payload(&frame).unwrap();
        let parsed = parse_frame(payload, features).unwrap();
        prop_assert_eq!(parsed.request_id, 77);
        prop_assert_eq!(parsed.opcode, OP_PING);
        prop_assert_eq!(parsed.body.as_ref(), &body[..]);

        // Truncation: cutting the frame anywhere short of full length
        // must fail the length check, not decode garbage.
        let cut = cut.min(frame.len().saturating_sub(1));
        prop_assert!(frame_payload(&frame[..cut]).is_err());
    }

    /// Compressible bodies round-trip through the compressed encoding;
    /// the peer that never negotiated the feature rejects the flag.
    #[test]
    fn compressed_frames_roundtrip(seed in any::<u8>(), len in 512usize..8192) {
        let body: Vec<u8> = (0..len).map(|i| seed.wrapping_add((i / 97) as u8)).collect();
        let frame = encode_frame(5, OP_PING, &body, FEATURE_LZ4);
        prop_assert_eq!(frame[4], PROTOCOL_VERSION);
        // this body is highly repetitive, so compression must win
        prop_assert_eq!(frame[5] & FLAG_COMPRESSED, FLAG_COMPRESSED);

        let payload = frame_payload(&frame).unwrap();
        let parsed = parse_frame(payload, FEATURE_LZ4).unwrap();
        prop_assert_eq!(parsed.body.as_ref(), &body[..]);

        // without the negotiated feature the flag is Unsupported
        match parse_frame(payload, 0) {
            Err(FrameError::Unsupported { request_id, .. }) => prop_assert_eq!(request_id, 5),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    /// A truncated chunk body fails decode cleanly (no panic, no
    /// partial table).
    #[test]
    fn truncated_chunk_body_is_rejected(table in table_strategy(), cut_seed in any::<u32>()) {
        if table.num_rows() > 0 {
            let frame = encode_chunk_frame(3, "t", 0, true, &table, 0, table.num_rows(), 0);
            let payload = frame_payload(&frame).unwrap();
            let f = parse_frame(payload, 0).unwrap();
            let cut = cut_seed as usize % f.body.len();
            let mut cur = Cursor::new(&f.body[..cut]);
            // decoding the truncated body must error, never panic
            let decoded = gbmqo_server::protocol::decode_response_body(f.opcode, &f.body[..cut]);
            prop_assert!(decoded.is_err());
            let _ = codec::get_table(&mut cur); // same guarantee at the codec layer
        }
    }
}

#[test]
fn oversized_declared_length_is_rejected_by_recvbuf() {
    let mut rb = RecvBuf::new();
    let mut data: &[u8] = &u32::MAX.to_le_bytes();
    rb.fill(&mut data).unwrap();
    assert!(
        rb.try_frame(MAX_FRAME_LEN).is_err(),
        "a 4 GiB declared length must be refused up front"
    );
}

#[test]
fn zero_length_frame_is_rejected_not_looped() {
    let mut rb = RecvBuf::new();
    let mut data: &[u8] = &0u32.to_le_bytes();
    rb.fill(&mut data).unwrap();
    // A zero-length payload can't hold the 11-byte header.
    match rb.try_frame(MAX_FRAME_LEN) {
        Ok(FrameStatus::Ready(s, e)) => {
            assert!(parse_frame(rb.payload(s, e), 0).is_err());
        }
        Ok(FrameStatus::Partial) => panic!("zero-length frame reported as partial"),
        Err(_) => {}
    }
}

/// A hostile server that sends a chunk frame *after* the terminal
/// `Finish` for the same request id: the client must flag a protocol
/// error instead of decoding it into anybody's result.
#[test]
fn chunk_after_terminal_frame_is_a_protocol_error() {
    use std::io::Write;
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let tiny = {
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]).unwrap();
        let mut b = TableBuilder::new(schema);
        b.push_row(&[Value::Int(1)]).unwrap();
        b.finish().unwrap()
    };

    let server = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let mut rb = RecvBuf::new();
        let next_frame = |sock: &mut std::net::TcpStream, rb: &mut RecvBuf| -> u64 {
            loop {
                match rb.try_frame(MAX_FRAME_LEN).unwrap() {
                    FrameStatus::Ready(s, e) => {
                        let f = parse_frame(rb.payload(s, e), 0).unwrap();
                        return f.request_id;
                    }
                    FrameStatus::Partial => {
                        assert!(rb.fill(sock).unwrap() > 0, "client hung up early");
                    }
                }
            }
        };
        // answer the handshake
        let hello_id = next_frame(&mut sock, &mut rb);
        sock.write_all(&encode_response(
            hello_id,
            &Response::HelloAck { features: 0 },
            0,
        ))
        .unwrap();
        // read the query, terminate it, then keep talking about it
        let query_id = next_frame(&mut sock, &mut rb);
        sock.write_all(&encode_response(
            query_id,
            &Response::Finish {
                total_chunks: 0,
                total_rows: 0,
                metrics_json: "{}".into(),
            },
            0,
        ))
        .unwrap();
        sock.write_all(&encode_chunk_frame(query_id, "", 0, true, &tiny, 0, 1, 0))
            .unwrap();
        sock.flush().unwrap();
        // hold the socket open long enough for the client to read both
        std::thread::sleep(std::time::Duration::from_millis(300));
    });

    let mut client = Client::connect(addr).unwrap();
    let id = client.send_query("t", &["c"], 0).unwrap();
    // the Finish itself is a clean (empty) terminal response
    client.wait(id).unwrap();
    // the trailing chunk for the completed id surfaces as a protocol
    // error on the next interaction, not as silent data
    match client.ping() {
        Err(ServerError::Protocol(msg)) => {
            assert!(
                msg.contains("unknown") || msg.contains("completed") || msg.contains("terminal"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    server.join().unwrap();
}
