//! Integration tests for the paper's §5.1.1 and §7 extensions.

use gbmqo_core::prelude::*;
use gbmqo_core::{cube_rollup_pass, grouping_sets_over_join, NodeKind};
use gbmqo_cost::{CardinalityCostModel, CostConstants, IndexSnapshot, OptimizerCostModel};
use gbmqo_datagen::{lineitem, sales};
use gbmqo_exec::{hash_group_by, hash_join, AggSpec, ExecMetrics};
use gbmqo_integration::{assert_same_results, normalize, session_with};
use gbmqo_stats::ExactSource;
use gbmqo_storage::{DataType, Field, Schema, TableBuilder, Value};

#[test]
fn cube_rollup_pass_keeps_semantics() {
    let t = lineitem(10_000, 0.0, 21);
    let w = Workload::new(
        "lineitem",
        &t,
        &["l_returnflag", "l_linestatus", "l_shipmode"],
        &[
            vec!["l_returnflag"],
            vec!["l_returnflag", "l_linestatus"],
            vec!["l_returnflag", "l_linestatus", "l_shipmode"],
        ],
    )
    .unwrap();
    let mut model = CardinalityCostModel::new(ExactSource::new(&t));
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned())
        .plan(&w, &mut model)
        .unwrap();

    // force the rewrite to fire by making materialization expensive
    let constants = CostConstants {
        byte_write: 25.0,
        ..Default::default()
    };
    let mut opt_model = OptimizerCostModel::new(ExactSource::new(&t), IndexSnapshot::none())
        .with_constants(constants);
    let (rewritten, converted) = cube_rollup_pass(&plan, &w, &mut opt_model);
    rewritten.validate(&w).unwrap();

    let mut session = session_with(t, "lineitem");
    let a = session.run_plan(&plan, &w).unwrap();
    let b = session.run_plan(&rewritten, &w).unwrap();
    assert_same_results(&w, &a, &b, "cube/rollup pass");
    // chain workload → if anything converted, it must be a rollup
    fn has_rollup(n: &gbmqo_core::SubNode) -> bool {
        n.kind == NodeKind::Rollup || n.children.iter().any(has_rollup)
    }
    if converted > 0 {
        assert!(rewritten.subplans.iter().any(has_rollup));
    }
}

#[test]
fn explicit_rollup_plan_equals_group_bys() {
    let t = sales(8_000, 31);
    let w = Workload::new(
        "sales",
        &t,
        &["region", "city", "channel"],
        &[vec!["region"], vec!["region", "city"]],
    )
    .unwrap();
    let plan = LogicalPlan {
        subplans: vec![gbmqo_core::SubNode {
            cols: ColSet::from_cols([0, 1]),
            required: true,
            kind: NodeKind::Rollup,
            children: vec![gbmqo_core::SubNode::leaf(ColSet::single(0))],
        }],
    };
    plan.validate(&w).unwrap();
    let mut session = session_with(t, "sales");
    let rollup = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &rollup, "explicit rollup");
}

#[test]
fn explicit_cube_plan_equals_group_bys() {
    let t = sales(8_000, 32);
    let w = Workload::new(
        "sales",
        &t,
        &["region", "channel", "gender"],
        &[
            vec!["region"],
            vec!["channel"],
            vec!["gender"],
            vec!["region", "channel"],
            vec!["region", "channel", "gender"],
        ],
    )
    .unwrap();
    let plan = LogicalPlan {
        subplans: vec![gbmqo_core::SubNode {
            cols: ColSet::from_cols([0, 1, 2]),
            required: true,
            kind: NodeKind::Cube,
            children: vec![
                gbmqo_core::SubNode::leaf(ColSet::single(0)),
                gbmqo_core::SubNode::leaf(ColSet::single(1)),
                gbmqo_core::SubNode::leaf(ColSet::single(2)),
                gbmqo_core::SubNode::leaf(ColSet::from_cols([0, 1])),
            ],
        }],
    };
    plan.validate(&w).unwrap();
    let mut session = session_with(t, "sales");
    let cube = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    assert_same_results(&w, &naive, &cube, "explicit cube");
}

#[test]
fn join_pushdown_on_generated_data() {
    // sales fact joined with a store dimension keyed by store_id
    let t = sales(20_000, 33);
    let store_ids: std::collections::BTreeSet<i64> = (0..t.num_rows())
        .map(|r| {
            t.value(r, t.schema().index_of("store_id").unwrap())
                .as_int()
                .unwrap()
        })
        .collect();
    let dim_schema = Schema::new(vec![
        Field::new("store_id", DataType::Int64),
        Field::new("manager", DataType::Utf8),
    ])
    .unwrap();
    let mut db = TableBuilder::new(dim_schema);
    for id in &store_ids {
        db.push_row(&[Value::Int(*id), Value::str(&format!("mgr{}", id % 10))])
            .unwrap();
    }
    let dim = db.finish().unwrap();

    let mut session = session_with(t.clone(), "sales");
    session
        .engine_mut()
        .catalog_mut()
        .register("stores", dim.clone())
        .unwrap();

    let requests = [vec!["region"], vec!["channel"], vec!["region", "channel"]];
    let out = grouping_sets_over_join(
        session.engine_mut(),
        "sales",
        "stores",
        "store_id",
        &requests,
    )
    .unwrap();
    assert_eq!(out.results.len(), 3);

    // reference computation
    let mut m = ExecMetrics::new();
    let fact_key = t.schema().index_of("store_id").unwrap();
    let joined = hash_join(&t, &dim, &[fact_key], &[0], &mut m).unwrap();
    for (tag, ours) in &out.results {
        let names: Vec<&str> = tag.split(',').collect();
        let cols: Vec<usize> = names
            .iter()
            .map(|c| joined.schema().index_of(c).unwrap())
            .collect();
        let direct = hash_group_by(&joined, &cols, &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(
            normalize(ours, &names),
            normalize(&direct, &names),
            "set {tag}"
        );
    }
}

#[test]
fn reaggregation_of_min_max_sum_is_lossless_through_three_levels() {
    // R → (flag,status,mode) → (flag,status) → (flag), carrying
    // COUNT/MIN/MAX/SUM all the way (§7.2).
    let t = lineitem(5_000, 0.0, 34);
    let w = Workload::new(
        "lineitem",
        &t,
        &["l_returnflag", "l_linestatus", "l_shipmode"],
        &[vec!["l_returnflag"]],
    )
    .unwrap()
    .with_aggregates(vec![
        AggSpec::count(),
        AggSpec::min("l_quantity", "min_q"),
        AggSpec::max("l_quantity", "max_q"),
        AggSpec::sum("l_extendedprice", "sum_p"),
    ]);
    let plan = LogicalPlan {
        subplans: vec![gbmqo_core::SubNode {
            cols: ColSet::from_cols([0, 1, 2]),
            required: false,
            kind: NodeKind::GroupBy,
            children: vec![gbmqo_core::SubNode {
                cols: ColSet::from_cols([0, 1]),
                required: false,
                kind: NodeKind::GroupBy,
                children: vec![gbmqo_core::SubNode::leaf(ColSet::single(0))],
            }],
        }],
    };
    plan.validate(&w).unwrap();
    let mut session = session_with(t, "lineitem");
    let deep = session.run_plan(&plan, &w).unwrap();
    let naive = session.run_plan(&LogicalPlan::naive(&w), &w).unwrap();
    let full = |t: &gbmqo_storage::Table| {
        let mut rows: Vec<Vec<Value>> = (0..t.num_rows())
            .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
            .collect();
        rows.sort();
        rows
    };
    let (a, b) = (full(&naive.results[0].1), full(&deep.results[0].1));
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                // float sums associate differently across levels
                (Value::Float(x), Value::Float(y)) => {
                    assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}")
                }
                _ => assert_eq!(va, vb),
            }
        }
    }
}
