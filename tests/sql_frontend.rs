//! The SQL front end, end to end: parser round-trip and never-panic
//! properties, equivalence of SQL-lowered execution with hand-built
//! workloads across every execution mode, and hostile `SqlQuery`
//! frames over the wire.

use gbmqo_core::prelude::*;
use gbmqo_integration::{modular_table, normalize};
use gbmqo_server::protocol::{
    decode_response, encode_frame, encode_request, read_frame, write_frame, Request, Response,
    MAX_SQL_LEN, OP_SQL,
};
use gbmqo_server::{codec, Client, ErrorCode, Server, ServerConfig, ServerError, ServerHandle};
use gbmqo_sqlfe::ast::{
    AggCall, AggFuncName, ColumnRef, GroupSpec, Ident, Join, Literal, Query, SelectItem, WherePred,
};
use gbmqo_sqlfe::{compile, execute, parse, LoweredQuery, Span, SqlErrorKind};
use gbmqo_storage::{Catalog, Table};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// AST strategies: names that exercise quoting (keywords, mixed case,
// spaces, embedded quotes), every aggregate, every grouping spec.
// ---------------------------------------------------------------------

/// `Some`/`None` with equal weight — the vendored proptest shim has no
/// `prop::option` module.
fn opt<V: Clone + 'static>(s: impl Strategy<Value = V> + 'static) -> BoxedStrategy<Option<V>> {
    prop_oneof![Just(None), s.prop_map(Some)].boxed()
}

fn ident_name() -> impl Strategy<Value = String> {
    // A plain `[a-z_][a-z0-9_]{0,5}` name, built from a seed (the shim
    // has no regex strategies).
    let plain = (any::<u64>(), 0usize..6).prop_map(|(seed, extra)| {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        let mut x = seed;
        let mut s = String::new();
        s.push(HEAD[(x % HEAD.len() as u64) as usize] as char);
        for _ in 0..extra {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.push(TAIL[((x >> 33) % TAIL.len() as u64) as usize] as char);
        }
        s
    });
    prop_oneof![
        4 => plain,
        1 => prop::sample::select(vec!["select", "group", "cube", "from", "sets", "where"])
            .prop_map(String::from),
        1 => prop::sample::select(vec!["Mixed", "we ird", "qu\"ote", "1digit"])
            .prop_map(String::from),
    ]
}

fn ident() -> impl Strategy<Value = Ident> {
    ident_name().prop_map(Ident::synth)
}

fn colref() -> impl Strategy<Value = ColumnRef> {
    (opt(ident()), ident()).prop_map(|(table, column)| ColumnRef { table, column })
}

fn agg() -> impl Strategy<Value = AggCall> {
    let func = prop::sample::select(vec![AggFuncName::Sum, AggFuncName::Min, AggFuncName::Max]);
    prop_oneof![
        opt(ident()).prop_map(|alias| AggCall {
            func: AggFuncName::Count,
            arg: None,
            alias,
            span: Span::default(),
        }),
        (func, colref(), opt(ident())).prop_map(|(func, arg, alias)| AggCall {
            func,
            arg: Some(arg),
            alias,
            span: Span::default(),
        }),
    ]
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        colref().prop_map(SelectItem::Column),
        agg().prop_map(SelectItem::Agg),
    ]
}

fn join() -> impl Strategy<Value = Join> {
    (ident(), colref(), colref()).prop_map(|(table, left, right)| Join { table, left, right })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (0i64..1_000_000).prop_map(Literal::Int),
        (0i32..1000).prop_map(|i| Literal::Float(f64::from(i) + 0.5)),
        prop::sample::select(vec!["", "abc", "o'brien", "''", "it s", "a'b'c"])
            .prop_map(|s| Literal::Str(s.to_string())),
    ]
}

fn where_pred() -> impl Strategy<Value = WherePred> {
    let op = prop::sample::select(vec![
        gbmqo_sqlfe::ast::CmpOp::Eq,
        gbmqo_sqlfe::ast::CmpOp::Le,
        gbmqo_sqlfe::ast::CmpOp::Ge,
    ]);
    (colref(), op, literal()).prop_map(|(col, op, value)| WherePred {
        col,
        op,
        value,
        value_span: Span::default(),
    })
}

fn group_spec() -> impl Strategy<Value = GroupSpec> {
    let cols = || prop::collection::vec(colref(), 1..4);
    prop_oneof![
        cols().prop_map(GroupSpec::Plain),
        cols().prop_map(GroupSpec::Cube),
        cols().prop_map(GroupSpec::Rollup),
        prop::collection::vec(prop::collection::vec(colref(), 1..3), 1..4)
            .prop_map(GroupSpec::GroupingSets),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    // Nested tuples: the shim only implements tuple strategies up to 4.
    (
        (prop::collection::vec(select_item(), 1..4), ident()),
        (
            prop::collection::vec(join(), 0..3),
            prop::collection::vec(where_pred(), 0..3),
        ),
        group_spec(),
    )
        .prop_map(|((select, from), (joins, predicates), group)| Query {
            select,
            from,
            joins,
            predicates,
            group,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pretty-printing any AST and re-parsing the text yields the same
    /// tree — identifier quoting, literal escaping, and every grouping
    /// spec survive the round trip.
    #[test]
    fn pretty_printed_query_reparses(q in query()) {
        let sql = q.to_string();
        let parsed = match parse(&sql) {
            Ok(p) => p,
            Err(e) => panic!("{}", e.render(&sql)),
        };
        prop_assert_eq!(parsed.strip_spans(), q.strip_spans());
    }

    /// The parser never panics on arbitrary input, printable or not.
    #[test]
    fn arbitrary_input_never_panics(
        s in prop::collection::vec(any::<u8>(), 0..200)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
    ) {
        let _ = parse(&s);
    }

    /// Truncating or splicing junk into a valid statement never panics
    /// the parser or the full compile pipeline.
    #[test]
    fn mutated_statement_never_panics(
        q in query(),
        frac in 0.0f64..1.0,
        junk in prop::sample::select(vec!['\0', '(', ')', '\'', '"', ';', '\u{20ac}', 'x']),
    ) {
        let sql = q.to_string();
        let boundaries: Vec<usize> = sql
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(sql.len()))
            .collect();
        let cut = boundaries[(frac * (boundaries.len() - 1) as f64) as usize];
        let _ = parse(&sql[..cut]);
        let mut spliced = sql[..cut].to_string();
        spliced.push(junk);
        spliced.push_str(&sql[cut..]);
        let _ = parse(&spliced);
        let _ = compile(&spliced, &small_catalog());
    }
}

fn small_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register("t", modular_table(40, &[4, 3, 5, 2])).unwrap();
    cat
}

/// A fixed corpus of hostile statements: none may panic, and the
/// invalid ones must come back as structured errors with the right
/// kind.
#[test]
fn malformed_corpus_is_rejected_not_panicked() {
    let cat = small_catalog();
    let corpus: Vec<String> = vec![
        String::new(),
        "\0\0\0".into(),
        "SELECT".into(),
        "SELECT FROM GROUP BY".into(),
        "SELECT * FROM t GROUP BY c0".into(),
        "SELECT COUNT(* FROM t GROUP BY c0".into(),
        "SELECT COUNT(*) FROM t GROUP BY GROUPING SETS ((".into(),
        "SELECT COUNT(*) FROM t GROUP BY CUBE".into(),
        "SELECT COUNT(*) FROM t WHERE c0 = GROUP BY c0".into(),
        "SELECT COUNT(*) FROM t GROUP BY c0; DROP TABLE t".into(),
        "SELECT COUNT(*) FROM t GROUP BY \"unterminated".into(),
        "SELECT COUNT(*) FROM t WHERE c0 = 'unterminated".into(),
        format!(
            "SELECT COUNT(*) FROM t GROUP BY {}",
            "c0, ".repeat(5000) + "c0"
        ),
        format!(
            "SELECT COUNT(*) FROM t GROUP BY CUBE ({})",
            (0..16)
                .map(|i| format!("c{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        "(".repeat(10_000),
        format!("SELECT COUNT(*) FROM t GROUP BY {}", "x".repeat(100_000)),
    ];
    for sql in &corpus {
        let _ = compile(sql, &cat); // must return, never panic
    }
    // A couple of targeted kinds.
    let err = compile("SELECT COUNT(*) FROM t GROUP BY", &cat).unwrap_err();
    assert_eq!(err.kind, SqlErrorKind::Parse);
    let err = compile("SELECT COUNT(*) FROM ghost GROUP BY c0", &cat).unwrap_err();
    assert_eq!(err.kind, SqlErrorKind::Unresolved);
    assert!(err
        .render("SELECT COUNT(*) FROM ghost GROUP BY c0")
        .contains('^'));
}

// ---------------------------------------------------------------------
// Acceptance: SQL-lowered execution == hand-built workload execution,
// in every execution mode and on a sharded session.
// ---------------------------------------------------------------------

fn sets_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    // Sorted-deduped column index sets (the shim has no btree_set
    // strategy); len >= 1 survives dedup since every draw is non-empty.
    prop::collection::vec(prop::collection::vec(0usize..4, 1..4), 1..5).prop_map(|sets| {
        sets.into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect()
    })
}

fn session_in(table: &Table, mode: ExecutionMode, shards: u32) -> Session {
    Session::builder()
        .table("t", table.clone())
        .mode(mode)
        .shards(shards)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random grouping-set workloads, compiling the equivalent SQL
    /// and executing it produces exactly the rows of the hand-built
    /// workload path — under serial, server-side, parallel, and
    /// sharded execution.
    #[test]
    fn sql_matches_hand_built_workload_in_every_mode(
        raw_sets in sets_strategy(),
        rows in 60usize..240,
    ) {
        let table = modular_table(rows, &[4, 3, 5, 2]);
        // dedup whole sets, as the binder does
        let mut sets: Vec<Vec<String>> = Vec::new();
        for s in &raw_sets {
            let named: Vec<String> = s.iter().map(|i| format!("c{i}")).collect();
            if !sets.contains(&named) {
                sets.push(named);
            }
        }
        let sql = format!(
            "SELECT COUNT(*) AS cnt FROM t GROUP BY GROUPING SETS ({})",
            sets.iter()
                .map(|s| format!("({})", s.join(", ")))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let mut universe: Vec<&str> = Vec::new();
        for s in &sets {
            for c in s {
                if !universe.contains(&c.as_str()) {
                    universe.push(c);
                }
            }
        }
        let requests: Vec<Vec<&str>> = sets
            .iter()
            .map(|s| s.iter().map(String::as_str).collect())
            .collect();
        let workload = Workload::new("t", &table, &universe, &requests).unwrap();

        for (mode, shards) in [
            (ExecutionMode::ClientSide, 1),
            (ExecutionMode::ServerSide, 1),
            (ExecutionMode::Parallel, 1),
            (ExecutionMode::Parallel, 4),
        ] {
            let mut sql_session = session_in(&table, mode, shards);
            let lowered = compile(&sql, sql_session.engine().catalog())
                .unwrap_or_else(|e| panic!("{}", e.render(&sql)));
            prop_assert!(matches!(lowered, LoweredQuery::Workload { .. }));
            let sql_out = execute(&lowered, &mut sql_session, CacheControl::Default).unwrap();

            let mut raw_session = session_in(&table, mode, shards);
            let raw_out = raw_session
                .run_workload(&workload, CacheControl::Default)
                .unwrap();

            prop_assert_eq!(sql_out.results.len(), sets.len());
            for (set, (tag, sql_table)) in sets.iter().zip(&sql_out.results) {
                prop_assert_eq!(tag.clone(), set.join(","));
                let names: Vec<&str> = set.iter().map(String::as_str).collect();
                let raw_table = raw_out
                    .report
                    .results
                    .iter()
                    .find(|(cols, _)| {
                        let got = workload.col_names(*cols);
                        got.len() == names.len() && names.iter().all(|n| got.contains(n))
                    })
                    .map(|(_, t)| t)
                    .unwrap_or_else(|| panic!("no raw result for {names:?}"));
                prop_assert_eq!(
                    normalize(sql_table, &names),
                    normalize(raw_table, &names),
                    "mode {:?} shards {}: set {:?}",
                    mode,
                    shards,
                    names
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire: SqlQuery over a live server — the happy path matches the
// workload opcode, and hostile frames get structured errors without
// killing the connection.
// ---------------------------------------------------------------------

fn serve(table: Table) -> ServerHandle {
    let session = Session::builder().table("t", table).build().unwrap();
    Server::bind(
        "127.0.0.1:0",
        session,
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn sql_over_wire_matches_workload_opcode() {
    let table = modular_table(300, &[4, 3, 5, 2]);
    let handle = serve(table);
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let sql_results = client
        .sql(
            "SELECT COUNT(*) AS cnt FROM t \
             GROUP BY GROUPING SETS ((c0), (c1), (c0, c2))",
            0,
        )
        .unwrap();
    let raw_results = client
        .submit_workload(
            "t",
            &["c0", "c1", "c2"],
            &[vec!["c0"], vec!["c1"], vec!["c0", "c2"]],
            0,
        )
        .unwrap();
    assert_eq!(sql_results.len(), 3);
    assert_eq!(raw_results.len(), 3);
    // The workload opcode reports sets in plan order, the SQL opcode in
    // statement order — match by tag.
    for (tag, ta) in &sql_results {
        let tb = raw_results
            .iter()
            .find(|(t, _)| t == tag)
            .map(|(_, t)| t)
            .unwrap_or_else(|| panic!("no workload result tagged {tag}"));
        let names: Vec<&str> = tag.split(',').collect();
        assert_eq!(normalize(ta, &names), normalize(tb, &names), "set {tag}");
    }
    handle.shutdown();
}

#[test]
fn oversized_sql_statement_gets_structured_error_and_connection_survives() {
    let handle = serve(modular_table(50, &[4, 3]));
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let huge = format!(
        "SELECT COUNT(*) FROM t GROUP BY {}",
        "c".repeat(MAX_SQL_LEN + 1)
    );
    match client.sql(&huge, 0) {
        Err(ServerError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("byte limit"), "{message}");
        }
        other => panic!("expected a BadRequest error, got {other:?}"),
    }
    // Same connection keeps working.
    client.ping().unwrap();
    let results = client.sql("SELECT COUNT(*) FROM t GROUP BY c0", 0).unwrap();
    assert_eq!(results.len(), 1);
    handle.shutdown();
}

#[test]
fn unknown_names_in_sql_map_to_not_found_with_diagnostics() {
    let handle = serve(modular_table(50, &[4, 3]));
    let mut client = Client::connect(handle.local_addr()).unwrap();

    for (sql, needle) in [
        ("SELECT COUNT(*) FROM ghost GROUP BY c0", "unknown table"),
        ("SELECT COUNT(*) FROM t GROUP BY ghost", "unknown column"),
    ] {
        match client.sql(sql, 0) {
            Err(ServerError::Remote { code, message }) => {
                assert_eq!(code, ErrorCode::NotFound, "{sql}");
                assert!(message.contains(needle), "{sql}: {message}");
                // the rendered diagnostic carries the caret line
                assert!(message.contains('^'), "{sql}: {message}");
            }
            other => panic!("{sql}: expected NotFound, got {other:?}"),
        }
    }
    // Parse errors are BadRequest, not NotFound.
    match client.sql("SELECT COUNT(*) FROM t GROUP", 0) {
        Err(ServerError::Remote { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The connection survived all of it.
    let results = client.sql("SELECT COUNT(*) FROM t GROUP BY c1", 0).unwrap();
    assert_eq!(results.len(), 1);
    handle.shutdown();
}

/// Re-attach the length prefix [`read_frame`] strips, giving the full
/// frame [`decode_response`] expects.
fn reframe(payload: Vec<u8>) -> Vec<u8> {
    let mut full = Vec::with_capacity(payload.len() + 4);
    codec::put_u32(&mut full, payload.len() as u32);
    full.extend_from_slice(&payload);
    full
}

/// A raw `SqlQuery` frame whose statement bytes are not UTF-8: the
/// decode must fail into a structured error frame, and the connection
/// must keep serving.
#[test]
fn invalid_utf8_sql_frame_is_rejected_cleanly() {
    let handle = serve(modular_table(50, &[4, 3]));
    let mut sock = std::net::TcpStream::connect(handle.local_addr()).unwrap();

    // Handshake exactly as the real client does.
    write_frame(
        &mut sock,
        &encode_request(1, &Request::Hello { features: 0 }, 0),
    )
    .unwrap();
    let frame = reframe(read_frame(&mut sock).unwrap().expect("hello ack"));
    let (id, resp) = decode_response(&frame, 0).unwrap();
    assert_eq!(id, 1);
    assert!(matches!(resp, Response::HelloAck { .. }));

    // SqlQuery body: length-prefixed "string" holding invalid UTF-8,
    // then deadline_ms and the cache-control byte.
    let mut body = Vec::new();
    codec::put_u32(&mut body, 4);
    body.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    codec::put_u32(&mut body, 0); // deadline_ms
    body.push(0); // CacheControl::Default
    write_frame(&mut sock, &encode_frame(2, OP_SQL, &body, 0)).unwrap();

    let frame = reframe(read_frame(&mut sock).unwrap().expect("error reply"));
    let (id, resp) = decode_response(&frame, 0).unwrap();
    assert_eq!(id, 2);
    match resp {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("utf-8"), "{message}");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }

    // The connection still answers.
    write_frame(&mut sock, &encode_request(3, &Request::Ping, 0)).unwrap();
    let frame = reframe(read_frame(&mut sock).unwrap().expect("pong"));
    let (id, resp) = decode_response(&frame, 0).unwrap();
    assert_eq!(id, 3);
    assert!(matches!(resp, Response::Pong));
    handle.shutdown();
}
