//! Minimal vendored implementation of the `rand` API surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The container image has no network access to crates.io, so the
//! workspace ships this shim as a path dependency. `StdRng` is a
//! xoshiro256** generator seeded via SplitMix64 — deterministic for a
//! given seed, but *not* stream-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// User-facing random value generation (the subset of `rand::Rng` we
/// need). Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[inline]
fn uniform_f64(rng: &mut dyn RngCore) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (uniform_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (uniform_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<i64> = (0..32).map(|_| a.gen_range(0..1000)).collect();
        let vb: Vec<i64> = (0..32).map(|_| b.gen_range(0..1000)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<i64> = (0..32).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let v: usize = rng.gen_range(0..=3);
            assert!(v <= 3);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
