//! Minimal vendored implementation of the `rustc-hash` API surface this
//! workspace uses (`FxHashMap`, `FxHashSet`, `FxHasher`, `FxBuildHasher`).
//!
//! The container image has no network access to crates.io, so the
//! workspace ships this shim as a path dependency. The hash function is
//! the classic Fx multiply-and-rotate mix; it is not guaranteed to be
//! bit-compatible with upstream `rustc-hash`, only to be a fast,
//! deterministic, high-quality hasher for in-process hash maps.

use std::hash::{BuildHasher, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`]; a unit struct (like upstream
/// `rustc-hash` v2) so it can be named as a value.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// The Fx hasher: a fast non-cryptographic hasher for hash tables.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits (used by HashMap bucketing) depend
        // on every input word.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_spreads() {
        let b = FxBuildHasher;
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
        assert_ne!(b.hash_one("a"), b.hash_one("b"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("x".into(), 1);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }
}
