//! Minimal vendored implementation of the `criterion` API surface this
//! workspace's benches use.
//!
//! The container image has no network access to crates.io, so the
//! workspace ships this shim as a path dependency. It runs each
//! benchmark closure for the configured warm-up and measurement windows
//! and prints mean/min iteration times — no statistics engine, no HTML
//! reports, but the same bench sources compile and produce comparable
//! wall-clock numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export used by some criterion-style code to defeat optimization.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse CLI args: the first non-flag argument is a substring
    /// filter on benchmark labels; `--quick` shortens the windows.
    /// Other flags (`--bench`, cargo's pass-throughs) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => {
                    self.warm_up = Duration::from_millis(100);
                    self.measurement = Duration::from_millis(500);
                }
                flag if flag.starts_with('-') => {}
                name if self.filter.is_none() => self.filter = Some(name.to_string()),
                _ => {}
            }
        }
        self
    }

    fn selected(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        let name = name.as_ref();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            filter: self.filter.clone(),
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.selected(name) {
            run_one(name, self.warm_up, self.measurement, &mut f);
        }
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn selected(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Criterion tunes iteration counts from this; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Time spent warming up each benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Time spent measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.selected(&label) {
            run_one(&label, self.warm_up, self.measurement, &mut f);
        }
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.selected(&label) {
            run_one(&label, self.warm_up, self.measurement, &mut |b| f(b, input));
        }
        self
    }

    /// Finish the group (printing is already done per bench).
    pub fn finish(self) {}
}

/// A function+parameter benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    mode: Mode,
    /// (total elapsed, iterations) accumulated by `iter`.
    elapsed: Duration,
    iters: u64,
    min: Duration,
}

enum Mode {
    WarmUp { until: Instant },
    Measure { until: Instant },
}

impl Bencher {
    /// Run `f` repeatedly until the current window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let until = match self.mode {
            Mode::WarmUp { until } | Mode::Measure { until } => until,
        };
        loop {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            if let Mode::Measure { .. } = self.mode {
                self.elapsed += dt;
                self.iters += 1;
                self.min = self.min.min(dt);
            }
            if Instant::now() >= until {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        mode: Mode::WarmUp {
            until: Instant::now() + warm_up,
        },
        elapsed: Duration::ZERO,
        iters: 0,
        min: Duration::MAX,
    };
    f(&mut b);
    b.mode = Mode::Measure {
        until: Instant::now() + measurement,
    };
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    b.min = Duration::MAX;
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "{label:<50} mean {:>12?}  min {:>12?}  ({} iters)",
        mean, b.min, b.iters
    );
}

/// Collect benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> (Duration, Duration) {
        (Duration::from_millis(1), Duration::from_millis(5))
    }

    #[test]
    fn bench_runs_and_counts() {
        let (w, m) = quick();
        let mut calls = 0u64;
        run_one("test", w, m, &mut |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(3),
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(3));
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 4), &4usize, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
