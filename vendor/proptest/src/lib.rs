//! Minimal vendored implementation of the `proptest` API surface this
//! workspace uses.
//!
//! The container image has no network access to crates.io, so the
//! workspace ships this shim as a path dependency. It implements
//! random-input property testing with the same surface syntax as
//! proptest (`proptest!`, strategies, `prop_oneof!`, `prop_assert!`,
//! `prop::collection::vec`, `prop::sample::select`) but without
//! shrinking: a failing case panics with the generated inputs printed by
//! the assertion itself.
//!
//! Cases are generated deterministically: case `i` of every test uses a
//! fixed seed derived from `i`, so failures are reproducible run-to-run.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of a test run.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(u64::from(case) + 1),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of type `Value`.
///
/// Unlike real proptest there is no shrinking; `sample` draws one value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Reject values failing `pred` (re-drawing up to a retry cap).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive draws",
            self.reason
        );
    }
}

/// Weighted union of boxed strategies (the `prop_oneof!` desugaring).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in OneOf::new")
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + r) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_full_range_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;

            fn arbitrary() -> RangeInclusive<$t> {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arbitrary_full_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A size range for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            start: usize,
            /// inclusive
            end: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    start: r.start,
                    end: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    start: *r.start(),
                    end: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { start: n, end: n }
            }
        }

        /// Vectors of values from `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.start + rng.below(self.size.end - self.size.start + 1);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly select one of `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty options");
            Select { options }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len())].clone()
            }
        }
    }
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Error type kept for API-shape compatibility in assertion macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// `assert!` that reports through the proptest harness (here: panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the proptest harness (here: panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![a, b]` or `prop_oneof![2 => a, 5 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests. Each `#[test]` fn's arguments are drawn from
/// the given strategies for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        let s = prop_oneof![2 => 0i64..10, 1 => 100i64..110];
        let mut low = 0;
        let mut high = 0;
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((0..10).contains(&v) || (100..110).contains(&v));
            if v < 50 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > high, "weight 2 arm should dominate: {low} vs {high}");
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::for_case(3);
        let s = (1usize..4)
            .prop_flat_map(|n| prop::collection::vec(0i64..10, n..=n))
            .prop_filter("non-empty", |v| !v.is_empty())
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let len = s.sample(&mut rng);
            assert!((1..4).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: args bind, bodies run per case.
        #[test]
        fn macro_draws_args(x in 0i64..5, flag in any::<bool>()) {
            prop_assert!((0..5).contains(&x));
            let _ = flag;
        }
    }

    proptest! {
        #[test]
        fn default_config_macro(v in prop::collection::vec(0u32..9, 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&x| x > 8).count(), 0);
        }
    }
}
