//! Recursive-descent parser over the token stream.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT select_list FROM ident join*
//!              [WHERE pred (AND pred)*] GROUP BY group_spec [';'] EOF
//! select_list := item (',' item)*
//! item      := agg_call | column_ref
//! agg_call  := COUNT '(' '*' ')' [AS ident]
//!            | (SUM|MIN|MAX) '(' column_ref ')' [AS ident]
//! join      := [INNER] JOIN ident ON column_ref '=' column_ref
//! pred      := column_ref ('='|'<='|'>=') literal
//! group_spec := GROUPING SETS '(' set (',' set)* ')'
//!             | CUBE '(' cols ')' | ROLLUP '(' cols ')' | cols
//! set       := '(' cols ')'
//! cols      := column_ref (',' column_ref)*
//! column_ref := ident ['.' ident]
//! ```

use crate::ast::*;
use crate::error::{Result, Span, SqlError, SqlErrorKind};
use crate::lexer::{lex, Tok, Token};

/// Parse one statement.
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: sql.len(),
    };
    let q = p.query()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> Span {
        self.peek()
            .map_or(Span::new(self.end, self.end), |t| t.span)
    }

    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::new(SqlErrorKind::Parse, msg, self.here())
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        self.peek()
            .and_then(Token::keyword)
            .is_some_and(|k| k == kw)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span> {
        if self.at_keyword(kw) {
            Ok(self.bump().unwrap().span)
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        let hit = self.at_keyword(kw);
        if hit {
            self.bump();
        }
        hit
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<Span> {
        match self.peek() {
            Some(t) if t.tok == tok => Ok(self.bump().unwrap().span),
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    /// An identifier usable as a name (bare, but not a reserved
    /// clause-starting keyword, or quoted).
    fn ident(&mut self, what: &str) -> Result<Ident> {
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Ident(name),
                span,
            }) => {
                let upper = name.to_ascii_uppercase();
                if RESERVED.contains(&upper.as_str()) {
                    return Err(self.err(format!(
                        "expected {what}, found keyword {upper} (quote it to use as a name)"
                    )));
                }
                self.bump();
                Ok(Ident { name, span })
            }
            Some(Token {
                tok: Tok::QuotedIdent(name),
                span,
            }) => {
                self.bump();
                Ok(Ident { name, span })
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident("a column name")?;
        if self.peek().is_some_and(|t| t.tok == Tok::Dot) {
            self.bump();
            let column = self.ident("a column name after `.`")?;
            Ok(ColumnRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.peek().is_some_and(|t| t.tok == Tok::Comma) {
            self.bump();
            select.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.ident("a table name")?;

        let mut joins = Vec::new();
        loop {
            let inner = self.at_keyword("INNER");
            if inner {
                self.bump();
                self.expect_keyword("JOIN")?;
            } else if !self.eat_keyword("JOIN") {
                break;
            }
            let table = self.ident("a table name")?;
            self.expect_keyword("ON")?;
            let left = self.column_ref()?;
            self.expect_tok(Tok::Eq, "`=` in the join condition")?;
            let right = self.column_ref()?;
            joins.push(Join { table, left, right });
        }

        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates.push(self.predicate()?);
            while self.eat_keyword("AND") {
                predicates.push(self.predicate()?);
            }
        }

        self.expect_keyword("GROUP")?;
        self.expect_keyword("BY")?;
        let group = self.group_spec()?;

        if self.peek().is_some_and(|t| t.tok == Tok::Semi) {
            self.bump();
        }
        if let Some(t) = self.peek() {
            return Err(SqlError::new(
                SqlErrorKind::Parse,
                "unexpected trailing input after the statement",
                t.span,
            ));
        }
        Ok(Query {
            select,
            from,
            joins,
            predicates,
            group,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let func = self
            .peek()
            .and_then(Token::keyword)
            .and_then(|k| match k.as_str() {
                "COUNT" => Some(AggFuncName::Count),
                "SUM" => Some(AggFuncName::Sum),
                "MIN" => Some(AggFuncName::Min),
                "MAX" => Some(AggFuncName::Max),
                _ => None,
            });
        // `COUNT(...)` is an aggregate call; a bare `count` column name
        // is still allowed because it is not followed by `(`.
        let is_call = func.is_some()
            && self
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.tok == Tok::LParen);
        if let (Some(func), true) = (func, is_call) {
            let start = self.bump().unwrap().span;
            self.expect_tok(Tok::LParen, "`(`")?;
            let arg = match func {
                AggFuncName::Count => {
                    self.expect_tok(Tok::Star, "`*` (only COUNT(*) is supported)")?;
                    None
                }
                _ => Some(self.column_ref()?),
            };
            let rp = self.expect_tok(Tok::RParen, "`)`")?;
            let mut span = start.to(rp);
            let alias = if self.eat_keyword("AS") {
                let a = self.ident("an alias")?;
                span = span.to(a.span);
                Some(a)
            } else {
                None
            };
            Ok(SelectItem::Agg(AggCall {
                func,
                arg,
                alias,
                span,
            }))
        } else {
            Ok(SelectItem::Column(self.column_ref()?))
        }
    }

    fn predicate(&mut self) -> Result<WherePred> {
        let col = self.column_ref()?;
        let op = match self.peek().map(|t| &t.tok) {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Err(self.err("expected `=`, `<=`, or `>=`")),
        };
        self.bump();
        let (value, value_span) = match self.bump() {
            Some(Token {
                tok: Tok::Int(i),
                span,
            }) => (Literal::Int(i), span),
            Some(Token {
                tok: Tok::Float(x),
                span,
            }) => (Literal::Float(x), span),
            Some(Token {
                tok: Tok::Str(s),
                span,
            }) => (Literal::Str(s), span),
            Some(t) => {
                return Err(SqlError::new(
                    SqlErrorKind::Parse,
                    "expected a literal (integer, float, or 'string')",
                    t.span,
                ))
            }
            None => {
                return Err(SqlError::new(
                    SqlErrorKind::Parse,
                    "expected a literal, found end of input",
                    Span::new(self.end, self.end),
                ))
            }
        };
        Ok(WherePred {
            col,
            op,
            value,
            value_span,
        })
    }

    fn cols(&mut self) -> Result<Vec<ColumnRef>> {
        let mut cols = vec![self.column_ref()?];
        while self.peek().is_some_and(|t| t.tok == Tok::Comma) {
            self.bump();
            cols.push(self.column_ref()?);
        }
        Ok(cols)
    }

    fn paren_cols(&mut self) -> Result<Vec<ColumnRef>> {
        self.expect_tok(Tok::LParen, "`(`")?;
        if self.peek().is_some_and(|t| t.tok == Tok::RParen) {
            // () — the grand-total set; represent as empty and let the
            // binder reject it with a proper span.
            self.bump();
            return Ok(Vec::new());
        }
        let cols = self.cols()?;
        self.expect_tok(Tok::RParen, "`)`")?;
        Ok(cols)
    }

    fn group_spec(&mut self) -> Result<GroupSpec> {
        if self.eat_keyword("GROUPING") {
            self.expect_keyword("SETS")?;
            self.expect_tok(Tok::LParen, "`(`")?;
            let mut sets = vec![self.paren_cols()?];
            while self.peek().is_some_and(|t| t.tok == Tok::Comma) {
                self.bump();
                sets.push(self.paren_cols()?);
            }
            self.expect_tok(Tok::RParen, "`)` closing GROUPING SETS")?;
            Ok(GroupSpec::GroupingSets(sets))
        } else if self.eat_keyword("CUBE") {
            let cols = self.paren_cols()?;
            Ok(GroupSpec::Cube(cols))
        } else if self.eat_keyword("ROLLUP") {
            let cols = self.paren_cols()?;
            Ok(GroupSpec::Rollup(cols))
        } else {
            Ok(GroupSpec::Plain(self.cols()?))
        }
    }
}

/// Keywords that cannot be used as bare names (they start or separate
/// clauses, so accepting them as identifiers would make the grammar
/// ambiguous). Quoting always works.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "GROUPING", "SETS", "CUBE", "ROLLUP", "JOIN",
    "INNER", "ON", "AND", "AS",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let q = parse(
            "SELECT brand, region, COUNT(*) AS cnt FROM sales \
             JOIN product ON sales.prod_key = product.prod_key \
             INNER JOIN store ON sales.store_key = store.store_key \
             WHERE qty <= 5 AND region = 'west' \
             GROUP BY GROUPING SETS ((brand), (brand, region));",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        match &q.group {
            GroupSpec::GroupingSets(sets) => assert_eq!(sets.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn round_trips_through_display() {
        let texts = [
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            "SELECT a, b, COUNT(*) AS n FROM t GROUP BY CUBE (a, b)",
            "SELECT a, SUM(x) AS s FROM t WHERE a = 3 GROUP BY ROLLUP (a, b)",
            "SELECT t.a FROM t JOIN d ON t.k = d.k GROUP BY GROUPING SETS ((t.a), (t.a, t.b))",
            "SELECT \"group\" FROM \"from\" GROUP BY \"group\"",
        ];
        for text in texts {
            let q = parse(text).unwrap();
            let printed = q.to_string();
            let q2 = parse(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
            assert_eq!(q.strip_spans(), q2.strip_spans(), "{text}");
        }
    }

    #[test]
    fn count_as_column_name_still_works() {
        let q = parse("SELECT count FROM t GROUP BY count").unwrap();
        assert!(matches!(q.select[0], SelectItem::Column(_)));
    }

    #[test]
    fn malformed_inputs_yield_spanned_parse_errors() {
        let bad = [
            "",
            "SELECT",
            "SELECT FROM t GROUP BY a",
            "SELECT a FROM GROUP BY a",
            "SELECT a FROM t",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t GROUP BY",
            "SELECT a FROM t GROUP BY GROUPING (a)",
            "SELECT a FROM t GROUP BY CUBE a",
            "SELECT a FROM t JOIN d GROUP BY a",
            "SELECT a FROM t JOIN d ON a GROUP BY a",
            "SELECT COUNT(a) FROM t GROUP BY a",
            "SELECT SUM(*) FROM t GROUP BY a",
            "SELECT a FROM t WHERE GROUP BY a",
            "SELECT a FROM t WHERE a = GROUP BY a",
            "SELECT a FROM t GROUP BY a extra",
            "SELECT a FROM t GROUP BY a; extra",
            "SELECT select FROM t GROUP BY a",
        ];
        for text in bad {
            let err = parse(text).unwrap_err();
            assert!(
                matches!(err.kind, SqlErrorKind::Parse | SqlErrorKind::Lex),
                "{text}: {err}"
            );
        }
    }

    #[test]
    fn empty_grouping_set_is_parsed_not_crashed() {
        // Accepted by the parser; the binder rejects it with a span.
        let q = parse("SELECT COUNT(*) FROM t GROUP BY GROUPING SETS ((), (a))").unwrap();
        match &q.group {
            GroupSpec::GroupingSets(sets) => {
                assert!(sets[0].is_empty());
                assert_eq!(sets[1].len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }
}
