//! Lowering: a [`BoundQuery`] becomes a GB-MQO workload (single-table
//! queries) or a §5 star pushdown ([`gbmqo_core::grouping_sets_over_star`]),
//! plus the driver that executes either against a [`Session`].
//!
//! The split decides which machinery serves the query:
//!
//! * **No joins, no WHERE** → [`LoweredQuery::Workload`]: goes through
//!   [`Session::run_workload`], so the plan cache, the materialized
//!   aggregate cache, and sharded execution all apply.
//! * **Joins and/or WHERE** → [`LoweredQuery::Star`]: the engine-level
//!   join-pushdown path (grouping below the join, `Grp-Tag` union, one
//!   join per dimension). Filters are pushed to the table they
//!   constrain.

use crate::binder::BoundQuery;
use crate::error::{Result, SqlError, SqlErrorKind};
use gbmqo_core::{grouping_sets_over_star, CacheControl, Session, StarDim, Workload};
use gbmqo_exec::{AggSpec, ExecMetrics, Predicate};
use gbmqo_storage::{Catalog, Table};

/// An executable lowering of one SQL statement.
#[derive(Debug, Clone)]
pub enum LoweredQuery {
    /// Single-table GROUPING SETS: one GB-MQO workload.
    Workload {
        /// The workload (universe = union of all grouping sets).
        workload: Workload,
        /// The grouping sets in statement order (for result tags).
        sets: Vec<Vec<String>>,
    },
    /// Star join and/or filtered: the §5.1.1 pushdown.
    Star {
        /// Fact table name.
        fact: String,
        /// Dimension joins.
        dims: Vec<StarDim>,
        /// The grouping sets in statement order.
        sets: Vec<Vec<String>>,
        /// ANDed fact-side WHERE conjuncts.
        fact_filter: Option<Predicate>,
        /// Aggregates each set computes.
        aggregates: Vec<AggSpec>,
    },
}

impl LoweredQuery {
    /// The grouping sets this query computes, in statement order.
    pub fn sets(&self) -> &[Vec<String>] {
        match self {
            LoweredQuery::Workload { sets, .. } => sets,
            LoweredQuery::Star { sets, .. } => sets,
        }
    }

    /// The result tag of grouping set `i` (comma-joined column names —
    /// the same convention as the engine's GROUPING SETS facade).
    pub fn tag(&self, i: usize) -> String {
        self.sets()[i].join(",")
    }
}

/// One executed statement: `(tag, table)` per grouping set, in statement
/// order, plus the work performed.
#[derive(Debug)]
pub struct SqlOutput {
    /// `(tag, result)` pairs; tag = comma-joined grouping columns.
    pub results: Vec<(String, Table)>,
    /// Execution metrics.
    pub metrics: ExecMetrics,
}

/// Lower a bound query. `catalog` is only read (schema lookups).
pub fn lower(bound: &BoundQuery, catalog: &Catalog) -> Result<LoweredQuery> {
    if bound.dims.is_empty() && bound.fact_filter.is_none() {
        let table = catalog.table(&bound.fact).map_err(internal)?;
        let mut universe: Vec<&str> = Vec::new();
        for set in &bound.sets {
            for c in set {
                if !universe.contains(&c.as_str()) {
                    universe.push(c);
                }
            }
        }
        let requests: Vec<Vec<&str>> = bound
            .sets
            .iter()
            .map(|s| s.iter().map(String::as_str).collect())
            .collect();
        let workload = Workload::new(&bound.fact, table, &universe, &requests)
            .map_err(internal)?
            .with_aggregates(bound.aggregates.clone());
        Ok(LoweredQuery::Workload {
            workload,
            sets: bound.sets.clone(),
        })
    } else {
        Ok(LoweredQuery::Star {
            fact: bound.fact.clone(),
            dims: bound
                .dims
                .iter()
                .map(|d| StarDim {
                    table: d.table.clone(),
                    fact_key: d.fact_key.clone(),
                    dim_key: d.dim_key.clone(),
                    filter: d.filter.clone(),
                })
                .collect(),
            sets: bound.sets.clone(),
            fact_filter: bound.fact_filter.clone(),
            aggregates: bound.aggregates.clone(),
        })
    }
}

/// The binder validated everything lowering relies on, so an error here
/// is an internal inconsistency, not bad user input.
fn internal(e: impl std::fmt::Display) -> SqlError {
    SqlError::spanless(SqlErrorKind::Bind, e.to_string())
}

/// Execute a lowered query against a session.
pub fn execute(
    lowered: &LoweredQuery,
    session: &mut Session,
    cache: CacheControl,
) -> gbmqo_core::Result<SqlOutput> {
    match lowered {
        LoweredQuery::Workload { workload, sets } => {
            let out = session.run_workload(workload, cache)?;
            let mut results = Vec::with_capacity(sets.len());
            for set in sets {
                let names: Vec<&str> = set.iter().map(String::as_str).collect();
                let table = out
                    .report
                    .results
                    .iter()
                    .find(|(cols, _)| {
                        let got = workload.col_names(*cols);
                        got.len() == names.len() && names.iter().all(|n| got.contains(n))
                    })
                    .map(|(_, t)| t.clone())
                    .ok_or_else(|| {
                        gbmqo_core::CoreError::InvalidPlan(format!(
                            "no result for grouping set ({})",
                            set.join(", ")
                        ))
                    })?;
                results.push((set.join(","), table));
            }
            Ok(SqlOutput {
                results,
                metrics: out.report.metrics,
            })
        }
        LoweredQuery::Star {
            fact,
            dims,
            sets,
            fact_filter,
            aggregates,
        } => {
            let requests: Vec<Vec<&str>> = sets
                .iter()
                .map(|s| s.iter().map(String::as_str).collect())
                .collect();
            let out = grouping_sets_over_star(
                session.engine_mut(),
                fact,
                dims,
                &requests,
                fact_filter.as_ref(),
                aggregates,
            )?;
            Ok(SqlOutput {
                results: out.results,
                metrics: out.metrics,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind;
    use crate::parser::parse;
    use gbmqo_storage::{Column, DataType, Field, Schema};

    fn catalog() -> Catalog {
        let fact = Table::new(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
            ])
            .unwrap(),
            vec![
                Column::from_i64((0..60).map(|i| i % 3).collect()),
                Column::from_i64((0..60).map(|i| i % 4).collect()),
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register("t", fact).unwrap();
        cat
    }

    fn lower_sql(sql: &str) -> LoweredQuery {
        let cat = catalog();
        lower(&bind(&parse(sql).unwrap(), &cat).unwrap(), &cat).unwrap()
    }

    #[test]
    fn single_table_lowers_to_workload() {
        let q = lower_sql("SELECT a, COUNT(*) FROM t GROUP BY GROUPING SETS ((a), (a, b))");
        match &q {
            LoweredQuery::Workload { workload, sets } => {
                assert_eq!(workload.requests.len(), 2);
                assert_eq!(sets.len(), 2);
                assert_eq!(q.tag(1), "a,b");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn filter_forces_star_path() {
        let q = lower_sql("SELECT COUNT(*) FROM t WHERE a = 1 GROUP BY b");
        match q {
            LoweredQuery::Star {
                dims, fact_filter, ..
            } => {
                assert!(dims.is_empty());
                assert!(fact_filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn executes_workload_path() {
        let cat = catalog();
        let mut session = gbmqo_core::Session::builder()
            .engine(gbmqo_exec::Engine::new(cat))
            .build()
            .unwrap();
        let q = lower_sql("SELECT a, COUNT(*) FROM t GROUP BY CUBE (a, b)");
        let out = execute(&q, &mut session, CacheControl::Default).unwrap();
        assert_eq!(out.results.len(), 3);
        // the (a) set has 3 groups of 20 rows each
        let (tag, t) = &out.results.iter().find(|(t, _)| t == "a").unwrap();
        assert_eq!(*tag, "a");
        assert_eq!(t.num_rows(), 3);
    }
}
