//! The abstract syntax tree of the SQL subset, plus a canonical
//! pretty-printer ([`fmt::Display`] on [`Query`]) whose output re-parses
//! to the same tree (the round-trip property the test suite checks).

use crate::error::Span;
use std::fmt;

/// Keywords that must be double-quoted when printed as identifiers.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "GROUPING", "SETS", "CUBE", "ROLLUP", "JOIN",
    "INNER", "ON", "AND", "AS", "COUNT", "SUM", "MIN", "MAX", "INTO", "ORDER", "TABLE", "DROP",
    "UNION", "ALL", "OR", "NOT", "NULL",
];

/// True if `name` can be printed bare: `[a-z_][a-z0-9_]*` and not a
/// keyword. Anything else needs `"…"` quoting.
pub fn is_plain_ident(name: &str) -> bool {
    let mut chars = name.chars();
    let ok_head = chars
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
    ok_head
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !KEYWORDS.contains(&name.to_ascii_uppercase().as_str())
}

/// Quote `name` for SQL output when it is not a plain identifier.
pub fn quote_ident(name: &str) -> String {
    if is_plain_ident(name) {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Ident {
    /// The (unquoted) name.
    pub name: String,
    /// Where it appeared.
    pub span: Span,
}

impl Ident {
    /// An identifier with an empty span (for synthesized nodes).
    pub fn synth(name: impl Into<String>) -> Self {
        Ident {
            name: name.into(),
            span: Span::default(),
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", quote_ident(&self.name))
    }
}

/// A possibly table-qualified column reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Optional qualifying table name.
    pub table: Option<Ident>,
    /// The column.
    pub column: Ident,
}

impl ColumnRef {
    /// Span covering the whole reference.
    pub fn span(&self) -> Span {
        match &self.table {
            Some(t) => t.span.to(self.column.span),
            None => self.column.span,
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.table {
            write!(f, "{t}.")?;
        }
        write!(f, "{}", self.column)
    }
}

/// The aggregate functions of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFuncName {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFuncName {
    fn label(self) -> &'static str {
        match self {
            AggFuncName::Count => "COUNT",
            AggFuncName::Sum => "SUM",
            AggFuncName::Min => "MIN",
            AggFuncName::Max => "MAX",
        }
    }
}

/// One aggregate call in the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The function.
    pub func: AggFuncName,
    /// The argument column; `None` only for `COUNT(*)`.
    pub arg: Option<ColumnRef>,
    /// Optional `AS alias`.
    pub alias: Option<Ident>,
    /// Span of the whole call.
    pub span: Span,
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)", self.func.label())?,
            Some(c) => write!(f, "{}({c})", self.func.label())?,
        }
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

/// One entry of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A grouping column echoed in the output.
    Column(ColumnRef),
    /// An aggregate.
    Agg(AggCall),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Agg(a) => write!(f, "{a}"),
        }
    }
}

/// An `[INNER] JOIN dim ON left = right` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined (dimension) table.
    pub table: Ident,
    /// Left side of the equi-join condition.
    pub left: ColumnRef,
    /// Right side of the equi-join condition.
    pub right: ColumnRef,
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JOIN {} ON {} = {}", self.table, self.left, self.right)
    }
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                // Always keep a decimal point so the literal re-lexes as
                // a float.
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// Comparison operators of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
        })
    }
}

/// One `col op literal` conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct WherePred {
    /// The compared column.
    pub col: ColumnRef,
    /// The operator.
    pub op: CmpOp,
    /// The literal.
    pub value: Literal,
    /// Span of the literal (for bind errors about its type).
    pub value_span: Span,
}

impl fmt::Display for WherePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.col, self.op, self.value)
    }
}

/// The GROUP BY clause.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupSpec {
    /// `GROUP BY a, b` — a single grouping set.
    Plain(Vec<ColumnRef>),
    /// `GROUP BY GROUPING SETS ((a), (a, b), …)`.
    GroupingSets(Vec<Vec<ColumnRef>>),
    /// `GROUP BY CUBE (a, b, …)`.
    Cube(Vec<ColumnRef>),
    /// `GROUP BY ROLLUP (a, b, …)`.
    Rollup(Vec<ColumnRef>),
}

impl fmt::Display for GroupSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(cols: &[ColumnRef]) -> String {
            cols.iter()
                .map(ColumnRef::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            GroupSpec::Plain(cols) => write!(f, "GROUP BY {}", list(cols)),
            GroupSpec::Cube(cols) => write!(f, "GROUP BY CUBE ({})", list(cols)),
            GroupSpec::Rollup(cols) => write!(f, "GROUP BY ROLLUP ({})", list(cols)),
            GroupSpec::GroupingSets(sets) => {
                let rendered: Vec<String> = sets.iter().map(|s| format!("({})", list(s))).collect();
                write!(f, "GROUP BY GROUPING SETS ({})", rendered.join(", "))
            }
        }
    }
}

/// A full parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The select list.
    pub select: Vec<SelectItem>,
    /// The fact (FROM) table.
    pub from: Ident,
    /// Zero or more dimension joins.
    pub joins: Vec<Join>,
    /// ANDed WHERE conjuncts (empty = no WHERE).
    pub predicates: Vec<WherePred>,
    /// The grouping clause.
    pub group: GroupSpec,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let select: Vec<String> = self.select.iter().map(SelectItem::to_string).collect();
        write!(f, "SELECT {} FROM {}", select.join(", "), self.from)?;
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self.predicates.iter().map(WherePred::to_string).collect();
            write!(f, " WHERE {}", preds.join(" AND "))?;
        }
        write!(f, " {}", self.group)
    }
}

impl Query {
    /// A copy with every span zeroed — lets tests compare trees from
    /// different source texts (the round-trip property).
    pub fn strip_spans(&self) -> Query {
        fn ident(i: &Ident) -> Ident {
            Ident::synth(i.name.clone())
        }
        fn colref(c: &ColumnRef) -> ColumnRef {
            ColumnRef {
                table: c.table.as_ref().map(ident),
                column: ident(&c.column),
            }
        }
        Query {
            select: self
                .select
                .iter()
                .map(|it| match it {
                    SelectItem::Column(c) => SelectItem::Column(colref(c)),
                    SelectItem::Agg(a) => SelectItem::Agg(AggCall {
                        func: a.func,
                        arg: a.arg.as_ref().map(colref),
                        alias: a.alias.as_ref().map(ident),
                        span: Span::default(),
                    }),
                })
                .collect(),
            from: ident(&self.from),
            joins: self
                .joins
                .iter()
                .map(|j| Join {
                    table: ident(&j.table),
                    left: colref(&j.left),
                    right: colref(&j.right),
                })
                .collect(),
            predicates: self
                .predicates
                .iter()
                .map(|p| WherePred {
                    col: colref(&p.col),
                    op: p.op,
                    value: p.value.clone(),
                    value_span: Span::default(),
                })
                .collect(),
            group: match &self.group {
                GroupSpec::Plain(c) => GroupSpec::Plain(c.iter().map(colref).collect()),
                GroupSpec::Cube(c) => GroupSpec::Cube(c.iter().map(colref).collect()),
                GroupSpec::Rollup(c) => GroupSpec::Rollup(c.iter().map(colref).collect()),
                GroupSpec::GroupingSets(sets) => GroupSpec::GroupingSets(
                    sets.iter()
                        .map(|s| s.iter().map(colref).collect())
                        .collect(),
                ),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_quote_when_needed() {
        assert_eq!(quote_ident("abc_1"), "abc_1");
        assert_eq!(quote_ident("group"), "\"group\"");
        assert_eq!(quote_ident("Mixed"), "\"Mixed\"");
        assert_eq!(quote_ident("a\"b"), "\"a\"\"b\"");
        assert!(is_plain_ident("_x"));
        assert!(!is_plain_ident("1x"));
        assert!(!is_plain_ident(""));
    }

    #[test]
    fn query_prints_canonically() {
        let q = Query {
            select: vec![
                SelectItem::Column(ColumnRef {
                    table: None,
                    column: Ident::synth("a"),
                }),
                SelectItem::Agg(AggCall {
                    func: AggFuncName::Count,
                    arg: None,
                    alias: Some(Ident::synth("cnt")),
                    span: Span::default(),
                }),
            ],
            from: Ident::synth("sales"),
            joins: vec![Join {
                table: Ident::synth("product"),
                left: ColumnRef {
                    table: Some(Ident::synth("sales")),
                    column: Ident::synth("prod_key"),
                },
                right: ColumnRef {
                    table: Some(Ident::synth("product")),
                    column: Ident::synth("prod_key"),
                },
            }],
            predicates: vec![WherePred {
                col: ColumnRef {
                    table: None,
                    column: Ident::synth("qty"),
                },
                op: CmpOp::Le,
                value: Literal::Int(5),
                value_span: Span::default(),
            }],
            group: GroupSpec::Cube(vec![
                ColumnRef {
                    table: None,
                    column: Ident::synth("a"),
                },
                ColumnRef {
                    table: None,
                    column: Ident::synth("b"),
                },
            ]),
        };
        assert_eq!(
            q.to_string(),
            "SELECT a, COUNT(*) AS cnt FROM sales \
             JOIN product ON sales.prod_key = product.prod_key \
             WHERE qty <= 5 GROUP BY CUBE (a, b)"
        );
    }
}
