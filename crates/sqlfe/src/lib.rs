//! # gbmqo-sqlfe
//!
//! A SQL-ish front end for the GB-MQO engine: a hand-written lexer and
//! recursive-descent parser for the subset
//!
//! ```text
//! SELECT <cols & aggs>
//! FROM <fact>
//! [JOIN <dim> ON fact.k = dim.k]*
//! [WHERE <col (=|<=|>=) literal [AND …]>]
//! GROUP BY GROUPING SETS ((…), …) | CUBE (…) | ROLLUP (…) | <cols>
//! ```
//!
//! a binder that resolves names against the engine's
//! [`Catalog`](gbmqo_storage::Catalog) with byte-accurate error spans,
//! and a lowering pass that emits GB-MQO workloads — applying the
//! paper's §5 join-pushdown rewrite when grouping columns live on the
//! fact side of a star join, and expanding CUBE/ROLLUP/GROUPING SETS
//! specs into explicit column-set requests.
//!
//! The pipeline is `parse → bind → lower → execute`:
//!
//! ```
//! use gbmqo_sqlfe::compile;
//! use gbmqo_core::{CacheControl, Session};
//! use gbmqo_storage::{Column, DataType, Field, Schema, Table};
//!
//! let table = Table::new(
//!     Schema::new(vec![
//!         Field::new("a", DataType::Int64),
//!         Field::new("b", DataType::Int64),
//!     ]).unwrap(),
//!     vec![
//!         Column::from_i64((0..100).map(|i| i % 4).collect()),
//!         Column::from_i64((0..100).map(|i| i % 5).collect()),
//!     ],
//! ).unwrap();
//! let mut session = Session::builder().table("t", table).build().unwrap();
//!
//! let lowered = compile(
//!     "SELECT a, b, COUNT(*) AS cnt FROM t GROUP BY CUBE (a, b)",
//!     session.engine().catalog(),
//! ).unwrap();
//! let out = gbmqo_sqlfe::execute(&lowered, &mut session, CacheControl::Default).unwrap();
//! assert_eq!(out.results.len(), 3); // (a), (b), (a,b)
//! ```
//!
//! Scope notes (each rejected with a spanned
//! [`SqlErrorKind::Unsupported`]): grouping columns must live on the
//! fact table (the §5 rewrite groups *below* the join); the grand-total
//! (empty) grouping set is not representable as a GB-MQO request; over a
//! join only `COUNT(*)` is available (the `Grp-Tag` union re-aggregates
//! counts); CUBE is capped at [`binder::MAX_CUBE_COLUMNS`] columns.

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::Query;
pub use binder::{bind, BoundDim, BoundQuery, MAX_CUBE_COLUMNS};
pub use error::{Result, Span, SqlError, SqlErrorKind};
pub use lower::{execute, lower, LoweredQuery, SqlOutput};
pub use parser::parse;

use gbmqo_storage::Catalog;

/// Parse, bind, and lower one statement in a single call.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<LoweredQuery> {
    let query = parse(sql)?;
    let bound = bind(&query, catalog)?;
    lower(&bound, catalog)
}
