//! Spanned front-end errors: every lex, parse, bind, and lowering
//! failure points at the byte range of the offending input.

use std::fmt;

/// A half-open byte range `[start, end)` into the original SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Which pipeline stage rejected the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// Tokenization failed (stray byte, unterminated string, …).
    Lex,
    /// The token stream does not match the grammar.
    Parse,
    /// A name did not resolve against the catalog (unknown table or
    /// column). Maps to `NotFound` on the wire.
    Unresolved,
    /// Names resolved but the query is ill-typed or ambiguous.
    Bind,
    /// Valid SQL the engine cannot lower (e.g. grouping by a dimension
    /// column, aggregates other than COUNT(*) over a join).
    Unsupported,
}

impl SqlErrorKind {
    fn label(self) -> &'static str {
        match self {
            SqlErrorKind::Lex => "lex error",
            SqlErrorKind::Parse => "parse error",
            SqlErrorKind::Unresolved => "name error",
            SqlErrorKind::Bind => "bind error",
            SqlErrorKind::Unsupported => "unsupported",
        }
    }
}

/// A front-end error with the stage, message, and source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// The pipeline stage that failed.
    pub kind: SqlErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Byte range of the offending input, when known.
    pub span: Option<Span>,
}

impl SqlError {
    /// Build an error with a span.
    pub fn new(kind: SqlErrorKind, message: impl Into<String>, span: Span) -> Self {
        SqlError {
            kind,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Build an error with no useful span (e.g. unexpected end of input
    /// past the last token).
    pub fn spanless(kind: SqlErrorKind, message: impl Into<String>) -> Self {
        SqlError {
            kind,
            message: message.into(),
            span: None,
        }
    }

    /// Render a caret diagnostic against the original SQL text:
    ///
    /// ```text
    /// bind error: unknown column `qy` in table `sales`
    ///   SELECT COUNT(*) FROM sales GROUP BY qy
    ///                                        ^^
    /// ```
    pub fn render(&self, sql: &str) -> String {
        let mut out = self.to_string();
        if let Some(span) = self.span {
            // Clamp to char boundaries so hostile inputs cannot panic us.
            let start = floor_char_boundary(sql, span.start.min(sql.len()));
            let end = floor_char_boundary(sql, span.end.min(sql.len())).max(start);
            let line_start = sql[..start].rfind('\n').map_or(0, |p| p + 1);
            let line_end = sql[start..].find('\n').map_or(sql.len(), |p| start + p);
            let line = &sql[line_start..line_end];
            let pad = sql[line_start..start].chars().count();
            let width = sql[start..end.min(line_end)].chars().count().max(1);
            out.push_str(&format!(
                "\n  {line}\n  {}{}",
                " ".repeat(pad),
                "^".repeat(width)
            ));
        }
        out
    }
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(
                f,
                "{} at {}..{}: {}",
                self.kind.label(),
                s.start,
                s.end,
                self.message
            ),
            None => write!(f, "{}: {}", self.kind.label(), self.message),
        }
    }
}

impl std::error::Error for SqlError {}

/// Front-end result alias.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_render() {
        let err = SqlError::new(SqlErrorKind::Bind, "unknown column `qy`", Span::new(10, 12));
        assert_eq!(err.to_string(), "bind error at 10..12: unknown column `qy`");
        let rendered = err.render("SELECT a, qy FROM t");
        assert!(rendered.contains("SELECT a, qy FROM t"));
        assert!(rendered.ends_with("          ^^"), "{rendered}");
    }

    #[test]
    fn render_survives_out_of_range_and_multibyte() {
        let err = SqlError::new(SqlErrorKind::Lex, "boom", Span::new(100, 200));
        let _ = err.render("short");
        let err = SqlError::new(SqlErrorKind::Lex, "boom", Span::new(1, 2));
        let _ = err.render("héllo"); // span lands mid-codepoint
    }

    #[test]
    fn span_union() {
        assert_eq!(Span::new(2, 5).to(Span::new(7, 9)), Span::new(2, 9));
    }
}
