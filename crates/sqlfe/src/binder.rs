//! Name resolution against the catalog (with real error spans) and
//! grouping-set expansion.
//!
//! The binder turns a parsed [`Query`] into a [`BoundQuery`]: every
//! column resolved to the fact or a dimension table, grouping specs
//! expanded into explicit column-name sets, literals converted to typed
//! [`Value`]s, and per-table filter predicates assembled. Everything the
//! lowering pass consumes is validated here, so lowering itself cannot
//! fail on user input.

use crate::ast::*;
use crate::error::{Result, Span, SqlError, SqlErrorKind};
use gbmqo_exec::{AggSpec, Predicate};
use gbmqo_storage::{Catalog, DataType, Schema, Value};

/// Widest CUBE the front end will expand (2^k − 1 grouping sets).
pub const MAX_CUBE_COLUMNS: usize = 10;

/// A bound dimension join: `fact.fact_key = table.dim_key`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundDim {
    /// Dimension table name.
    pub table: String,
    /// Join key column on the fact side.
    pub fact_key: String,
    /// Join key column on the dimension side.
    pub dim_key: String,
    /// ANDed WHERE conjuncts over this dimension's columns.
    pub filter: Option<Predicate>,
}

/// A fully resolved query, ready for lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// Fact table name.
    pub fact: String,
    /// Dimension joins in statement order.
    pub dims: Vec<BoundDim>,
    /// Expanded grouping sets as fact column names (each non-empty,
    /// deduplicated, order-preserving).
    pub sets: Vec<Vec<String>>,
    /// The aggregates every grouping set computes.
    pub aggregates: Vec<AggSpec>,
    /// ANDed WHERE conjuncts over fact columns.
    pub fact_filter: Option<Predicate>,
}

/// Where a column reference landed.
enum Resolved {
    Fact(String),
    Dim(usize, String),
}

struct Binder<'a> {
    catalog: &'a Catalog,
    fact: String,
    fact_schema: Schema,
    dims: Vec<(String, Schema)>,
}

/// Bind `query` against `catalog`.
pub fn bind(query: &Query, catalog: &Catalog) -> Result<BoundQuery> {
    let fact = query.from.name.clone();
    let fact_schema = schema_of(catalog, &query.from)?;

    let mut b = Binder {
        catalog,
        fact,
        fact_schema,
        dims: Vec::new(),
    };

    // Joins first: later clauses may reference dimension columns.
    let mut bound_dims = Vec::new();
    for join in &query.joins {
        bound_dims.push(b.bind_join(join)?);
    }

    let sets = b.expand_groups(&query.group)?;
    let aggregates = b.bind_select(&query.select, &sets, !query.joins.is_empty())?;

    // WHERE conjuncts, split by the table they constrain.
    let mut fact_preds: Vec<Predicate> = Vec::new();
    let mut dim_preds: Vec<Vec<Predicate>> = vec![Vec::new(); bound_dims.len()];
    for pred in &query.predicates {
        let (target, p) = b.bind_predicate(pred)?;
        match target {
            Resolved::Fact(_) => fact_preds.push(p),
            Resolved::Dim(i, _) => dim_preds[i].push(p),
        }
    }
    for (dim, preds) in bound_dims.iter_mut().zip(dim_preds) {
        dim.filter = conjoin(preds);
    }

    Ok(BoundQuery {
        fact: b.fact,
        dims: bound_dims,
        sets,
        aggregates,
        fact_filter: conjoin(fact_preds),
    })
}

fn conjoin(mut preds: Vec<Predicate>) -> Option<Predicate> {
    let first = if preds.is_empty() {
        return None;
    } else {
        preds.remove(0)
    };
    Some(preds.into_iter().fold(first, |acc, p| acc.and(p)))
}

fn schema_of(catalog: &Catalog, table: &Ident) -> Result<Schema> {
    catalog
        .table(&table.name)
        .map(|t| t.schema().clone())
        .map_err(|_| {
            SqlError::new(
                SqlErrorKind::Unresolved,
                format!("unknown table `{}`", table.name),
                table.span,
            )
        })
}

impl Binder<'_> {
    /// Resolve a column reference to the fact table or one of the bound
    /// dimensions. Unqualified names prefer the fact table.
    fn resolve(&self, col: &ColumnRef) -> Result<Resolved> {
        let name = &col.column.name;
        if let Some(qualifier) = &col.table {
            if qualifier.name == self.fact {
                return self.require_fact_column(col);
            }
            if let Some(i) = self.dims.iter().position(|(t, _)| *t == qualifier.name) {
                return self.require_dim_column(i, col);
            }
            return Err(SqlError::new(
                SqlErrorKind::Unresolved,
                format!(
                    "unknown table `{}` (not the FROM table or a joined dimension)",
                    qualifier.name
                ),
                qualifier.span,
            ));
        }
        if self.fact_schema.index_of(name).is_ok() {
            return Ok(Resolved::Fact(name.clone()));
        }
        for (i, (_, schema)) in self.dims.iter().enumerate() {
            if schema.index_of(name).is_ok() {
                return Ok(Resolved::Dim(i, name.clone()));
            }
        }
        Err(SqlError::new(
            SqlErrorKind::Unresolved,
            format!("unknown column `{name}`"),
            col.span(),
        ))
    }

    fn require_fact_column(&self, col: &ColumnRef) -> Result<Resolved> {
        let name = &col.column.name;
        self.fact_schema.index_of(name).map_err(|_| {
            SqlError::new(
                SqlErrorKind::Unresolved,
                format!("unknown column `{name}` in table `{}`", self.fact),
                col.span(),
            )
        })?;
        Ok(Resolved::Fact(name.clone()))
    }

    fn require_dim_column(&self, dim: usize, col: &ColumnRef) -> Result<Resolved> {
        let name = &col.column.name;
        let (table, schema) = &self.dims[dim];
        schema.index_of(name).map_err(|_| {
            SqlError::new(
                SqlErrorKind::Unresolved,
                format!("unknown column `{name}` in table `{table}`"),
                col.span(),
            )
        })?;
        Ok(Resolved::Dim(dim, name.clone()))
    }

    fn bind_join(&mut self, join: &Join) -> Result<BoundDim> {
        let dim_schema = schema_of(self.catalog, &join.table)?;
        self.dims.push((join.table.name.clone(), dim_schema));
        let dim_idx = self.dims.len() - 1;

        let mut fact_key = None;
        let mut dim_key = None;
        for side in [&join.left, &join.right] {
            // Resolve against the fact and *this* dimension only; using
            // an earlier dimension's column in a join condition is not
            // the star shape we lower.
            let resolved = match &side.table {
                Some(q) if q.name == self.fact => self.require_fact_column(side)?,
                Some(q) if q.name == join.table.name => self.require_dim_column(dim_idx, side)?,
                Some(q) => {
                    return Err(SqlError::new(
                        SqlErrorKind::Bind,
                        format!(
                            "join condition must reference `{}` and `{}`, not `{}`",
                            self.fact, join.table.name, q.name
                        ),
                        q.span,
                    ))
                }
                None => {
                    if self.fact_schema.index_of(&side.column.name).is_ok() {
                        Resolved::Fact(side.column.name.clone())
                    } else if self.dims[dim_idx].1.index_of(&side.column.name).is_ok() {
                        Resolved::Dim(dim_idx, side.column.name.clone())
                    } else {
                        return Err(SqlError::new(
                            SqlErrorKind::Unresolved,
                            format!(
                                "unknown column `{}` in `{}` or `{}`",
                                side.column.name, self.fact, join.table.name
                            ),
                            side.span(),
                        ));
                    }
                }
            };
            match resolved {
                Resolved::Fact(name) => fact_key = Some(name),
                Resolved::Dim(_, name) => dim_key = Some(name),
            }
        }
        match (fact_key, dim_key) {
            (Some(fact_key), Some(dim_key)) => Ok(BoundDim {
                table: join.table.name.clone(),
                fact_key,
                dim_key,
                filter: None,
            }),
            _ => Err(SqlError::new(
                SqlErrorKind::Bind,
                format!(
                    "join condition must equate one `{}` column with one `{}` column",
                    self.fact, join.table.name
                ),
                join.left.span().to(join.right.span()),
            )),
        }
    }

    /// A grouping column must live on the fact side: that is what the
    /// §5 join-pushdown rewrite requires (group below the join, join the
    /// compacted aggregates once). Dimension-side grouping is reported
    /// as unsupported rather than unresolved.
    fn grouping_column(&self, col: &ColumnRef) -> Result<String> {
        match self.resolve(col)? {
            Resolved::Fact(name) => Ok(name),
            Resolved::Dim(_, name) => Err(SqlError::new(
                SqlErrorKind::Unsupported,
                format!(
                    "grouping by dimension column `{name}` is not supported; \
                     group by the fact-side join key instead"
                ),
                col.span(),
            )),
        }
    }

    fn column_list(&self, cols: &[ColumnRef], clause_span: Span) -> Result<Vec<String>> {
        if cols.is_empty() {
            return Err(SqlError::new(
                SqlErrorKind::Unsupported,
                "the grand-total (empty) grouping set is not supported",
                clause_span,
            ));
        }
        let mut out: Vec<String> = Vec::with_capacity(cols.len());
        for c in cols {
            let name = self.grouping_column(c)?;
            if !out.contains(&name) {
                out.push(name);
            }
        }
        Ok(out)
    }

    fn expand_groups(&self, group: &GroupSpec) -> Result<Vec<Vec<String>>> {
        let span_of = |cols: &[ColumnRef]| {
            cols.iter()
                .map(ColumnRef::span)
                .reduce(Span::to)
                .unwrap_or_default()
        };
        let sets = match group {
            GroupSpec::Plain(cols) => vec![self.column_list(cols, span_of(cols))?],
            GroupSpec::GroupingSets(sets) => {
                let mut out = Vec::new();
                for set in sets {
                    out.push(self.column_list(set, span_of(set))?);
                }
                out
            }
            GroupSpec::Rollup(cols) => {
                let names = self.column_list(cols, span_of(cols))?;
                // Prefixes, longest first, excluding the empty set.
                (1..=names.len())
                    .rev()
                    .map(|k| names[..k].to_vec())
                    .collect()
            }
            GroupSpec::Cube(cols) => {
                let names = self.column_list(cols, span_of(cols))?;
                if names.len() > MAX_CUBE_COLUMNS {
                    return Err(SqlError::new(
                        SqlErrorKind::Unsupported,
                        format!(
                            "CUBE over {} columns expands to {} grouping sets; \
                             the limit is {MAX_CUBE_COLUMNS} columns",
                            names.len(),
                            (1u64 << names.len()) - 1
                        ),
                        span_of(cols),
                    ));
                }
                // All non-empty subsets, in subset-mask order.
                let n = names.len();
                (1u32..(1 << n))
                    .map(|mask| {
                        (0..n)
                            .filter(|b| mask >> b & 1 == 1)
                            .map(|b| names[b].clone())
                            .collect()
                    })
                    .collect()
            }
        };
        // Deduplicate whole sets (GROUPING SETS may repeat one).
        let mut out: Vec<Vec<String>> = Vec::new();
        for set in sets {
            let mut sorted = set.clone();
            sorted.sort();
            if !out.iter().any(|s| {
                let mut t = s.clone();
                t.sort();
                t == sorted
            }) {
                out.push(set);
            }
        }
        Ok(out)
    }

    fn bind_select(
        &self,
        select: &[SelectItem],
        sets: &[Vec<String>],
        has_joins: bool,
    ) -> Result<Vec<AggSpec>> {
        let mut aggs: Vec<AggSpec> = Vec::new();
        for item in select {
            match item {
                SelectItem::Column(col) => {
                    let name = self.grouping_column(col)?;
                    if !sets.iter().any(|s| s.contains(&name)) {
                        return Err(SqlError::new(
                            SqlErrorKind::Bind,
                            format!("column `{name}` is selected but appears in no grouping set"),
                            col.span(),
                        ));
                    }
                }
                SelectItem::Agg(call) => {
                    let spec = match (call.func, &call.arg) {
                        (AggFuncName::Count, _) => {
                            let output = call.alias.as_ref().map_or("cnt", |a| a.name.as_str());
                            AggSpec {
                                output: output.to_string(),
                                ..AggSpec::count()
                            }
                        }
                        (func, Some(arg)) => {
                            if has_joins {
                                return Err(SqlError::new(
                                    SqlErrorKind::Unsupported,
                                    "only COUNT(*) is supported over a join \
                                     (the Grp-Tag rewrite re-aggregates counts)",
                                    call.span,
                                ));
                            }
                            let input = match self.resolve(arg)? {
                                Resolved::Fact(name) => name,
                                Resolved::Dim(_, name) => {
                                    return Err(SqlError::new(
                                        SqlErrorKind::Unsupported,
                                        format!("cannot aggregate dimension column `{name}`"),
                                        arg.span(),
                                    ))
                                }
                            };
                            let default = format!(
                                "{}_{input}",
                                match func {
                                    AggFuncName::Sum => "sum",
                                    AggFuncName::Min => "min",
                                    AggFuncName::Max => "max",
                                    AggFuncName::Count => unreachable!(),
                                }
                            );
                            let output = call.alias.as_ref().map_or(default, |a| a.name.clone());
                            match func {
                                AggFuncName::Sum => AggSpec::sum(&input, &output),
                                AggFuncName::Min => AggSpec::min(&input, &output),
                                AggFuncName::Max => AggSpec::max(&input, &output),
                                AggFuncName::Count => unreachable!(),
                            }
                        }
                        (_, None) => unreachable!("parser guarantees an argument"),
                    };
                    if aggs.iter().any(|a| a.output == spec.output) {
                        return Err(SqlError::new(
                            SqlErrorKind::Bind,
                            format!("duplicate aggregate output name `{}`", spec.output),
                            call.span,
                        ));
                    }
                    aggs.push(spec);
                }
            }
        }
        if aggs.is_empty() {
            // An implicit COUNT(*) AS cnt, the paper's workhorse.
            aggs.push(AggSpec::count());
        }
        Ok(aggs)
    }

    fn bind_predicate(&self, pred: &WherePred) -> Result<(Resolved, Predicate)> {
        let resolved = self.resolve(&pred.col)?;
        let (schema, column) = match &resolved {
            Resolved::Fact(name) => (&self.fact_schema, name.clone()),
            Resolved::Dim(i, name) => (&self.dims[*i].1, name.clone()),
        };
        let dtype = schema.field(schema.index_of(&column).unwrap()).data_type;
        let value = literal_value(&pred.value, dtype, pred.value_span)?;
        let p = match pred.op {
            CmpOp::Eq => Predicate::Eq(column, value),
            CmpOp::Le => Predicate::Le(column, value),
            CmpOp::Ge => Predicate::Ge(column, value),
        };
        Ok((resolved, p))
    }
}

fn literal_value(lit: &Literal, dtype: DataType, span: Span) -> Result<Value> {
    let mismatch = |want: &str| {
        SqlError::new(
            SqlErrorKind::Bind,
            format!("literal type does not match the {want} column"),
            span,
        )
    };
    Ok(match (lit, dtype) {
        (Literal::Int(i), DataType::Int64) => Value::Int(*i),
        (Literal::Int(i), DataType::Float64) => Value::Float(*i as f64),
        (Literal::Int(i), DataType::Date32) => {
            let d = i32::try_from(*i).map_err(|_| mismatch("Date32"))?;
            Value::Date(d)
        }
        (Literal::Float(x), DataType::Float64) => Value::Float(*x),
        (Literal::Str(s), DataType::Utf8) => Value::str(s),
        (Literal::Int(_), DataType::Utf8) | (Literal::Float(_), DataType::Utf8) => {
            return Err(mismatch("Utf8"))
        }
        (Literal::Float(_), _) => return Err(mismatch("integer")),
        (Literal::Str(_), _) => return Err(mismatch("non-string")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gbmqo_storage::{Column, Field, Table};

    fn catalog() -> Catalog {
        let fact = Table::new(
            Schema::new(vec![
                Field::new("prod_key", DataType::Int64),
                Field::new("store_key", DataType::Int64),
                Field::new("qty", DataType::Int64),
                Field::new("price", DataType::Float64),
            ])
            .unwrap(),
            vec![
                Column::from_i64((0..40).map(|i| i % 4).collect()),
                Column::from_i64((0..40).map(|i| i % 2).collect()),
                Column::from_i64((0..40).map(|i| i % 7).collect()),
                Column::from_f64((0..40).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let product = Table::new(
            Schema::new(vec![
                Field::new("prod_key", DataType::Int64),
                Field::new("brand", DataType::Utf8),
            ])
            .unwrap(),
            vec![
                Column::from_i64((0..4).collect()),
                Column::from_strs(&(0..4).map(|i| format!("b{i}")).collect::<Vec<_>>()),
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register("sales", fact).unwrap();
        cat.register("product", product).unwrap();
        cat
    }

    fn bind_sql(sql: &str) -> Result<BoundQuery> {
        bind(&parse(sql).unwrap(), &catalog())
    }

    #[test]
    fn binds_star_query() {
        let b = bind_sql(
            "SELECT prod_key, COUNT(*) FROM sales \
             JOIN product ON sales.prod_key = product.prod_key \
             WHERE qty <= 3 AND brand = 'b1' \
             GROUP BY GROUPING SETS ((prod_key), (prod_key, store_key))",
        )
        .unwrap();
        assert_eq!(b.fact, "sales");
        assert_eq!(b.dims.len(), 1);
        assert_eq!(b.dims[0].fact_key, "prod_key");
        assert_eq!(b.dims[0].dim_key, "prod_key");
        assert!(b.dims[0].filter.is_some());
        assert!(b.fact_filter.is_some());
        assert_eq!(
            b.sets,
            vec![
                vec!["prod_key".to_string()],
                vec!["prod_key".to_string(), "store_key".to_string()],
            ]
        );
    }

    #[test]
    fn cube_and_rollup_expand() {
        let b = bind_sql("SELECT COUNT(*) FROM sales GROUP BY CUBE (qty, store_key)").unwrap();
        assert_eq!(b.sets.len(), 3);
        let b = bind_sql("SELECT COUNT(*) FROM sales GROUP BY ROLLUP (prod_key, store_key, qty)")
            .unwrap();
        assert_eq!(
            b.sets,
            vec![
                vec![
                    "prod_key".to_string(),
                    "store_key".to_string(),
                    "qty".to_string()
                ],
                vec!["prod_key".to_string(), "store_key".to_string()],
                vec!["prod_key".to_string()],
            ]
        );
    }

    #[test]
    fn unknown_names_are_unresolved_with_spans() {
        for (sql, needle) in [
            ("SELECT COUNT(*) FROM ghost GROUP BY a", "unknown table"),
            (
                "SELECT COUNT(*) FROM sales GROUP BY ghost",
                "unknown column",
            ),
            (
                "SELECT COUNT(*) FROM sales JOIN ghost ON sales.prod_key = ghost.k GROUP BY qty",
                "unknown table",
            ),
            (
                "SELECT COUNT(*) FROM sales WHERE sales.ghost = 1 GROUP BY qty",
                "unknown column",
            ),
        ] {
            let err = bind_sql(sql).unwrap_err();
            assert_eq!(err.kind, SqlErrorKind::Unresolved, "{sql}: {err}");
            assert!(err.message.contains(needle), "{sql}: {err}");
            assert!(err.span.is_some(), "{sql}");
        }
    }

    #[test]
    fn unsupported_shapes_are_reported() {
        for sql in [
            // dimension-side grouping
            "SELECT COUNT(*) FROM sales JOIN product ON sales.prod_key = product.prod_key \
             GROUP BY brand",
            // non-count aggregate over a join
            "SELECT SUM(qty) FROM sales JOIN product ON sales.prod_key = product.prod_key \
             GROUP BY qty",
            // grand-total set
            "SELECT COUNT(*) FROM sales GROUP BY GROUPING SETS ((), (qty))",
        ] {
            let err = bind_sql(sql).unwrap_err();
            assert_eq!(err.kind, SqlErrorKind::Unsupported, "{sql}: {err}");
        }
    }

    #[test]
    fn aggregates_and_aliases() {
        let b = bind_sql(
            "SELECT qty, COUNT(*) AS n, SUM(price) AS total, MIN(price) \
             FROM sales GROUP BY qty",
        )
        .unwrap();
        assert_eq!(b.aggregates.len(), 3);
        assert_eq!(b.aggregates[0].output, "n");
        assert_eq!(b.aggregates[1], AggSpec::sum("price", "total"));
        assert_eq!(b.aggregates[2], AggSpec::min("price", "min_price"));
        // implicit count when the select list has no aggregate
        let b = bind_sql("SELECT qty FROM sales GROUP BY qty").unwrap();
        assert_eq!(b.aggregates, vec![AggSpec::count()]);
    }

    #[test]
    fn type_mismatch_in_where() {
        let err = bind_sql("SELECT COUNT(*) FROM sales WHERE qty = 'three' GROUP BY qty");
        assert_eq!(err.unwrap_err().kind, SqlErrorKind::Bind);
        let err = bind_sql("SELECT COUNT(*) FROM sales WHERE price = 'x' GROUP BY qty");
        assert_eq!(err.unwrap_err().kind, SqlErrorKind::Bind);
        // int literal against a float column is fine
        bind_sql("SELECT COUNT(*) FROM sales WHERE price >= 3 GROUP BY qty").unwrap();
    }

    #[test]
    fn selected_column_must_be_grouped() {
        let err = bind_sql("SELECT price, COUNT(*) FROM sales GROUP BY qty").unwrap_err();
        assert_eq!(err.kind, SqlErrorKind::Bind);
    }
}
