//! Hand-written tokenizer for the SQL subset.
//!
//! Identifiers are case-preserving; keywords are recognized
//! case-insensitively. Every token carries its byte [`Span`] so later
//! stages can point at the exact input region.

use crate::error::{Result, Span, SqlError, SqlErrorKind};

/// A token kind plus any payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A bare identifier (possibly a keyword — the parser decides by
    /// calling [`Token::keyword`]).
    Ident(String),
    /// A `"double quoted"` identifier (never a keyword; `""` unescapes
    /// to `"`).
    QuotedIdent(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A `'single quoted'` string literal (`''` unescapes to `'`).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte range in the input.
    pub span: Span,
}

impl Token {
    /// The uppercased keyword form of an identifier token, if it is one.
    pub fn keyword(&self) -> Option<String> {
        match &self.tok {
            Tok::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenize `sql`; errors point at the offending byte.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' | b')' | b',' | b'.' | b'*' | b'=' | b';' => {
                let tok = match b {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b',' => Tok::Comma,
                    b'.' => Tok::Dot,
                    b'*' => Tok::Star,
                    b'=' => Tok::Eq,
                    _ => Tok::Semi,
                };
                i += 1;
                out.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            b'<' | b'>' => {
                if bytes.get(i + 1) != Some(&b'=') {
                    return Err(SqlError::new(
                        SqlErrorKind::Lex,
                        format!(
                            "unsupported operator `{}` (only =, <=, >= are supported)",
                            b as char
                        ),
                        Span::new(start, start + 1),
                    ));
                }
                let tok = if b == b'<' { Tok::Le } else { Tok::Ge };
                i += 2;
                out.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            b'\'' | b'"' => {
                let quote = b;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::new(
                                SqlErrorKind::Lex,
                                if quote == b'\'' {
                                    "unterminated string literal"
                                } else {
                                    "unterminated quoted identifier"
                                },
                                Span::new(start, sql.len()),
                            ))
                        }
                        Some(&c) if c == quote => {
                            if bytes.get(i + 1) == Some(&quote) {
                                s.push(quote as char);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Consume one full UTF-8 character (the input
                            // is a &str, so boundaries are well-formed).
                            let ch = sql[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                let tok = if quote == b'\'' {
                    Tok::Str(s)
                } else {
                    Tok::QuotedIdent(s)
                };
                out.push(Token {
                    tok,
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' | b'-' => {
                if b == b'-' && !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    return Err(SqlError::new(
                        SqlErrorKind::Lex,
                        "`-` must start a numeric literal",
                        Span::new(start, start + 1),
                    ));
                }
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !is_float && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &sql[start..i];
                let span = Span::new(start, i);
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| {
                        SqlError::new(SqlErrorKind::Lex, "invalid float literal", span)
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        SqlError::new(SqlErrorKind::Lex, "integer literal out of i64 range", span)
                    })?)
                };
                out.push(Token { tok, span });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(sql[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                let ch = sql[i..].chars().next().unwrap();
                return Err(SqlError::new(
                    SqlErrorKind::Lex,
                    format!("unexpected character `{}`", ch.escape_default()),
                    Span::new(i, i + ch.len_utf8()),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Tok> {
        lex(sql).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT a, COUNT(*) FROM t;"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("COUNT".into()),
                Tok::LParen,
                Tok::Star,
                Tok::RParen,
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn literals_and_operators() {
        assert_eq!(
            kinds("x <= -3 y >= 2.5 z = 'it''s'"),
            vec![
                Tok::Ident("x".into()),
                Tok::Le,
                Tok::Int(-3),
                Tok::Ident("y".into()),
                Tok::Ge,
                Tok::Float(2.5),
                Tok::Ident("z".into()),
                Tok::Eq,
                Tok::Str("it's".into()),
            ]
        );
    }

    #[test]
    fn quoted_identifiers_unescape() {
        assert_eq!(
            kinds(r#""group" "a""b""#),
            vec![
                Tok::QuotedIdent("group".into()),
                Tok::QuotedIdent("a\"b".into()),
            ]
        );
    }

    #[test]
    fn spans_point_at_input() {
        let toks = lex("SELECT  ab").unwrap();
        assert_eq!(toks[1].span, Span::new(8, 10));
    }

    #[test]
    fn errors_are_spanned() {
        for bad in [
            "SELECT @",
            "'open",
            "\"open",
            "a < b",
            "99999999999999999999",
            "- x",
        ] {
            let err = lex(bad).unwrap_err();
            assert_eq!(err.kind, SqlErrorKind::Lex, "{bad}");
            assert!(err.span.is_some(), "{bad}");
        }
    }
}
