//! A small what-if index advisor for GB-MQO workloads.
//!
//! §6.9 shows the optimizer's plans adapt to whatever physical design
//! exists; this module closes the loop the authors' AutoAdmin line of
//! work ([5], [25] in the paper) is about: *given* a workload, which
//! single-column indexes would help it most? The advisor greedily picks
//! indexes by re-optimizing the workload under hypothetical designs —
//! what-if analysis built from the same cost model the optimizer uses.

use crate::greedy::{GbMqo, SearchConfig};
use crate::workload::Workload;
use gbmqo_cost::{CostConstants, IndexSnapshot, OptimizerCostModel};
use gbmqo_stats::CardinalitySource;
use gbmqo_storage::IndexKind;

/// One advisor recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRecommendation {
    /// Universe bit of the recommended index's column.
    pub column_bit: usize,
    /// Base-table ordinal of the column.
    pub base_ordinal: usize,
    /// Estimated workload cost before adding this index.
    pub cost_before: f64,
    /// Estimated workload cost after adding it.
    pub cost_after: f64,
}

impl IndexRecommendation {
    /// Estimated benefit of this index (model units).
    pub fn benefit(&self) -> f64 {
        self.cost_before - self.cost_after
    }
}

/// Greedily recommend up to `k` single-column non-clustered indexes for
/// `workload`, using what-if re-optimization under `source`'s statistics.
///
/// Returns recommendations in pick order (highest marginal benefit
/// first); stops early when no candidate improves the plan by more than
/// `min_improvement` (a fraction of the current cost, e.g. `0.01`).
pub fn recommend_indexes<S: CardinalitySource>(
    workload: &Workload,
    mut make_source: impl FnMut() -> S,
    constants: CostConstants,
    k: usize,
    min_improvement: f64,
) -> crate::error::Result<Vec<IndexRecommendation>> {
    let mut chosen: Vec<usize> = Vec::new(); // universe bits
    let mut recommendations = Vec::new();

    let cost_with = |bits: &[usize], source: S| -> crate::error::Result<f64> {
        let keys: Vec<(Vec<usize>, IndexKind)> = bits
            .iter()
            .map(|&b| (vec![workload.base_ordinals[b]], IndexKind::NonClustered))
            .collect();
        let mut model = OptimizerCostModel::new(source, IndexSnapshot::from_keys(keys))
            .with_constants(constants);
        let (_, stats) = GbMqo::with_config(SearchConfig::pruned()).plan(workload, &mut model)?;
        Ok(stats.final_cost)
    };

    let mut current = cost_with(&chosen, make_source())?;
    for _round in 0..k.min(workload.column_names.len()) {
        let mut best: Option<(usize, f64)> = None;
        for bit in 0..workload.column_names.len() {
            if chosen.contains(&bit) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(bit);
            let cost = cost_with(&trial, make_source())?;
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((bit, cost));
            }
        }
        match best {
            Some((bit, cost)) if current - cost > min_improvement * current => {
                recommendations.push(IndexRecommendation {
                    column_bit: bit,
                    base_ordinal: workload.base_ordinals[bit],
                    cost_before: current,
                    cost_after: cost,
                });
                chosen.push(bit);
                current = cost;
            }
            _ => break,
        }
    }
    Ok(recommendations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    /// Table with one dense column (indexing it pays) and two tiny ones.
    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("dense", DataType::Int64),
            Field::new("flag", DataType::Int64),
            Field::new("status", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64((0..3000).collect()),
                Column::from_i64((0..3000).map(|i| i % 2).collect()),
                Column::from_i64((0..3000).map(|i| i % 3).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn advisor_prefers_the_dense_column() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["dense", "flag", "status"]).unwrap();
        let recs = recommend_indexes(
            &w,
            || ExactSource::new(&t),
            CostConstants::default(),
            2,
            0.001,
        )
        .unwrap();
        assert!(!recs.is_empty(), "indexing the dense column must pay");
        assert_eq!(
            recs[0].column_bit, 0,
            "the dense column should be picked first: {recs:?}"
        );
        // benefits are positive and monotone in pick order
        for r in &recs {
            assert!(r.benefit() > 0.0);
            assert!(r.cost_after < r.cost_before);
        }
        for pair in recs.windows(2) {
            assert!(pair[0].benefit() >= pair[1].benefit() * 0.5);
        }
    }

    #[test]
    fn advisor_stops_when_nothing_helps() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["flag", "status"]).unwrap();
        // demanding 50% improvement per index: nothing qualifies
        let recs = recommend_indexes(
            &w,
            || ExactSource::new(&t),
            CostConstants::default(),
            3,
            0.5,
        )
        .unwrap();
        assert!(recs.len() <= 1);
    }

    #[test]
    fn k_zero_returns_nothing() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["dense"]).unwrap();
        let recs = recommend_indexes(
            &w,
            || ExactSource::new(&t),
            CostConstants::default(),
            0,
            0.01,
        )
        .unwrap();
        assert!(recs.is_empty());
    }
}
