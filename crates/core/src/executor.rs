//! Plan execution: turning a [`LogicalPlan`] into Group By queries against
//! the engine, exactly as the paper's client-side implementation does
//! (§5.2): intermediates become `SELECT … INTO tmp`, queries over
//! intermediates replace `COUNT(*)` with `SUM(cnt)`, and temp tables are
//! dropped per the storage-minimizing schedule (§4.4).

use crate::colset::ColSet;
use crate::error::{CoreError, Result};
use crate::plan::{LogicalPlan, NodeKind, SubNode};
use crate::schedule::{level_plan, schedule_plan, PlanEdge, Step};
use crate::workload::Workload;
use gbmqo_cost::CostModel;
use gbmqo_exec::{cube, hash_group_by, rollup, AggSpec, Engine, ExecMetrics, GroupByQuery};
use gbmqo_storage::{shard_table_name, ShardDesc, Table};
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Optimizer distinct-group estimates per plan node, keyed by the node's
/// column-set bits ([`ColSet::0`]). The executor forwards them to the
/// engine so the radix group-by kernel can size its partition fan-out
/// from the same cardinalities the plan search already computed.
pub type GroupEstimates = FxHashMap<u128, u64>;

/// Estimate the distinct-group count of every node in `plan` with
/// `model` (one [`CostModel::cardinality`] call per distinct node).
pub fn plan_group_estimates(
    plan: &LogicalPlan,
    workload: &Workload,
    model: &mut dyn CostModel,
) -> GroupEstimates {
    fn walk(n: &SubNode, workload: &Workload, model: &mut dyn CostModel, out: &mut GroupEstimates) {
        out.entry(n.cols.0)
            .or_insert_with(|| model.cardinality(&workload.base_cols(n.cols)).max(1.0) as u64);
        for c in &n.children {
            walk(c, workload, model, out);
        }
    }
    let mut out = GroupEstimates::default();
    for sp in &plan.subplans {
        walk(sp, workload, model, &mut out);
    }
    out
}

/// The outcome of executing a plan.
#[derive(Debug)]
pub struct ExecutionReport {
    /// One result table per requested query.
    pub results: Vec<(ColSet, Table)>,
    /// Work performed.
    pub metrics: ExecMetrics,
    /// Peak bytes held in temp tables during execution.
    pub peak_temp_bytes: usize,
}

/// Display name of the temp table materializing a node, as rendered in
/// SQL scripts (see [`crate::render_sql`]). Actual executions namespace
/// their temps per run (see [`exec_temp_name`]) so concurrent plans
/// sharing a catalog cannot collide; this un-namespaced form is the
/// stable, human-readable name.
pub fn temp_name(cols: ColSet) -> String {
    format!("__gbmqo_tmp_{:x}", cols.0)
}

/// Monotonic id generator for plan executions. Namespacing temps by
/// execution id is what lets several plans run against one shared
/// catalog at the same time (the server's worker pool does exactly
/// that) without clobbering each other's intermediates.
static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(0);

/// Allocate a fresh execution id.
pub(crate) fn next_exec_id() -> u64 {
    NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed)
}

/// Name prefix shared by every temp of execution `exec_id`.
pub(crate) fn exec_prefix(exec_id: u64) -> String {
    format!("__gbmqo_tmp_e{exec_id:x}_")
}

/// Name of the temp table materializing `cols` within execution
/// `exec_id`.
pub(crate) fn exec_temp_name(exec_id: u64, cols: ColSet) -> String {
    format!("{}{:x}", exec_prefix(exec_id), cols.0)
}

/// Name of the temp holding shard `shard`'s partial of the node `cols`
/// within execution `exec_id` (sharded executions materialize one temp
/// per shard; see [`execute_waves_sharded`]). Shares [`exec_prefix`], so
/// [`cleanup_exec_temps`] covers these too.
pub(crate) fn shard_temp_name(exec_id: u64, cols: ColSet, shard: u32) -> String {
    format!("{}_s{shard}", exec_temp_name(exec_id, cols))
}

/// Drop every temp table belonging to execution `exec_id`, ignoring
/// individual drop failures (cleanup runs on error paths — a cancelled
/// execution may not have materialized everything it scheduled).
pub(crate) fn cleanup_exec_temps(engine: &mut Engine, exec_id: u64) {
    let prefix = exec_prefix(exec_id);
    let names: Vec<String> = engine
        .catalog()
        .temp_names()
        .into_iter()
        .filter(|n| n.starts_with(&prefix))
        .collect();
    for name in names {
        let _ = engine.drop_temp(&name);
    }
}

/// Shard slot meaning "the whole logical table" in [`RootSources`] and
/// [`Harvest`] entries: pins and harvests of unsharded executions (and
/// of logical-level cache hits over sharded tables) use this sentinel
/// instead of a real shard ordinal.
pub(crate) const WHOLE_TABLE_PIN: u32 = u32::MAX;

/// Virtual-root sources for cache-served nodes: (node column-set bits,
/// shard ordinal) → catalog name of a pinned table holding a cached
/// covering aggregate. An edge that would read the base relation reads
/// the pinned table (with re-aggregation) instead when its target is
/// listed here. Unsharded executions only consult the
/// [`WHOLE_TABLE_PIN`] slot; the sharded executor consults per-shard
/// slots so a partially warm cache still serves the shards it covers.
pub(crate) type RootSources = FxHashMap<(u128, u32), String>;

/// Intermediates harvested for cache admission: the column set, shard
/// ordinal ([`WHOLE_TABLE_PIN`] for whole-table intermediates) and the
/// materialized result of every temp an execution produced, captured
/// just before the temp is dropped (an `Arc` clone, not a data copy).
pub(crate) type Harvest = Vec<(ColSet, u32, Arc<Table>)>;

/// One whole-table Group By observed during plan execution. Every
/// GroupBy plan node — whether it reads the base relation, a temp, or a
/// pinned cached aggregate — computes the *complete* distinct-group set
/// of its target columns over the logical table, so its output row count
/// is the true cardinality the optimizer estimated. (Per-shard partials
/// of a fan-out edge are the one exception and are never observed; see
/// [`execute_waves_sharded`].)
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanObservation {
    /// The node's target column set.
    pub cols: ColSet,
    /// Rows of the node's immediate input (base, temp, or pinned root).
    pub input_rows: u64,
    /// Rows of the node's result — the true distinct-group count.
    pub output_groups: u64,
    /// Measured wall-clock of the node's query, when individually
    /// attributable (serial execution); 0 inside parallel waves, where
    /// per-node time cannot be separated.
    pub elapsed_ns: u64,
}

/// Materialized-aggregate-cache integration handles threaded through
/// plan execution. The default (no roots, no harvest, no observations)
/// is a plain cache-less run.
#[derive(Debug, Default)]
pub(crate) struct CacheHooks {
    /// Nodes served from pinned cached aggregates instead of the base
    /// relation.
    pub roots: RootSources,
    /// `Some` collects every materialized intermediate for admission.
    pub harvest: Option<Harvest>,
    /// `Some` collects per-node cardinality observations for the
    /// adaptive feedback loop (and the q-error report).
    pub observations: Option<Vec<PlanObservation>>,
}

impl CacheHooks {
    /// Record a temp's contents before it is dropped.
    fn keep(&mut self, cols: ColSet, shard: u32, table: Arc<Table>) {
        if let Some(h) = self.harvest.as_mut() {
            h.push((cols, shard, table));
        }
    }

    /// True when an observation sink is attached (callers can then skip
    /// the catalog lookups that feed it).
    pub(crate) fn observing(&self) -> bool {
        self.observations.is_some()
    }

    /// Record one whole-table Group By outcome (no-op without a sink).
    pub(crate) fn observe(
        &mut self,
        cols: ColSet,
        input_rows: u64,
        output_groups: u64,
        elapsed_ns: u64,
    ) {
        if let Some(o) = self.observations.as_mut() {
            o.push(PlanObservation {
                cols,
                input_rows,
                output_groups,
                elapsed_ns,
            });
        }
    }

    /// Harvest the temp materializing `cols` (no-op without a sink).
    pub(crate) fn harvest_temp(&mut self, engine: &Engine, exec_id: u64, cols: ColSet) {
        if self.harvest.is_some() {
            if let Ok(t) = engine.catalog().table_arc(&exec_temp_name(exec_id, cols)) {
                self.keep(cols, WHOLE_TABLE_PIN, t);
            }
        }
    }
}

/// Input table name and aggregate list for an edge reading `source`
/// (`None` = the base relation; temps re-aggregate with `SUM(cnt)` etc.).
/// A base-relation edge whose `target` has a pinned cached root reads
/// that root instead — the cached table already holds the aggregate
/// outputs, so it re-aggregates exactly like a temp.
fn source_io(
    workload: &Workload,
    source: Option<ColSet>,
    exec_id: u64,
    roots: &RootSources,
    target: ColSet,
) -> (String, Vec<AggSpec>) {
    let reagg = || {
        workload
            .aggregates
            .iter()
            .map(AggSpec::reaggregate)
            .collect()
    };
    match source {
        None => match roots.get(&(target.0, WHOLE_TABLE_PIN)) {
            Some(pinned) => (pinned.clone(), reagg()),
            None => (workload.table.clone(), workload.aggregates.clone()),
        },
        Some(s) => (exec_temp_name(exec_id, s), reagg()),
    }
}

/// Rows of catalog table `name`, 0 when it is not registered. Feeds
/// [`PlanObservation::input_rows`]; an unregistered input only happens on
/// error paths, where the observation is discarded with the execution.
pub(crate) fn input_rows_of(engine: &Engine, name: &str) -> u64 {
    engine
        .catalog()
        .table(name)
        .map_or(0, |t| t.num_rows() as u64)
}

/// Observe freshly delivered ROLLUP/CUBE level results: the lattice
/// descent materializes each required level as a complete whole-table
/// aggregate, so every one is a valid cardinality observation. `in_rows`
/// is `None` when no sink is attached.
pub(crate) fn observe_delivered(
    hooks: &mut CacheHooks,
    delivered: &[(ColSet, Table)],
    in_rows: Option<u64>,
) {
    let Some(rows) = in_rows else { return };
    for (cols, t) in delivered {
        hooks.observe(*cols, rows, t.num_rows() as u64, 0);
    }
}

/// Serial plan execution (the §5.2 client-side driver), reached through
/// [`crate::session::Session`]'s `run_workload` when the execution mode
/// is serial.
pub(crate) fn run_plan(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    size_estimate: Option<&mut dyn FnMut(ColSet) -> f64>,
    estimates: &GroupEstimates,
    hooks: &mut CacheHooks,
) -> Result<ExecutionReport> {
    plan.validate(workload)?;
    engine.reset_metrics();
    let exec_id = next_exec_id();
    let out = run_plan_steps(
        plan,
        workload,
        engine,
        size_estimate,
        estimates,
        exec_id,
        hooks,
    );
    if out.is_err() {
        // A failed (or cancelled) execution must not leave its temps
        // behind: the catalog may be shared with other executions.
        cleanup_exec_temps(engine, exec_id);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn run_plan_steps(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    size_estimate: Option<&mut dyn FnMut(ColSet) -> f64>,
    estimates: &GroupEstimates,
    exec_id: u64,
    hooks: &mut CacheHooks,
) -> Result<ExecutionReport> {
    // Collect ROLLUP/CUBE nodes so their single step can deliver child
    // results.
    let special = collect_special(plan);

    let mut neutral = |_: ColSet| 1.0;
    let d: &mut dyn FnMut(ColSet) -> f64 = match size_estimate {
        Some(f) => f,
        None => &mut neutral,
    };
    let steps = schedule_plan(plan, d);

    let mut results: Vec<(ColSet, Table)> = Vec::new();
    let mut extra = ExecMetrics::new();

    for step in &steps {
        // Cancellation boundary between plan steps: small queries never
        // poll internally, so the executor polls for them.
        engine.check_cancelled()?;
        match step {
            Step::Drop(cols) => {
                hooks.harvest_temp(engine, exec_id, *cols);
                engine.drop_temp(&exec_temp_name(exec_id, *cols))?;
            }
            Step::Query {
                source,
                target,
                materialize,
                required,
                kind,
            } => {
                let (input, aggs) = source_io(workload, *source, exec_id, &hooks.roots, *target);
                let in_rows = hooks.observing().then(|| input_rows_of(engine, &input));
                match kind {
                    NodeKind::GroupBy => {
                        let q = GroupByQuery {
                            input,
                            group_cols: workload
                                .col_names(*target)
                                .iter()
                                .map(|s| s.to_string())
                                .collect(),
                            aggs,
                            into: materialize.then(|| exec_temp_name(exec_id, *target)),
                            estimated_groups: estimates.get(&target.0).copied(),
                        };
                        let started = std::time::Instant::now();
                        let out = engine.run_group_by(&q)?;
                        if let Some(rows) = in_rows {
                            hooks.observe(
                                *target,
                                rows,
                                out.num_rows() as u64,
                                started.elapsed().as_nanos() as u64,
                            );
                        }
                        if *required {
                            results.push((*target, out));
                        }
                    }
                    NodeKind::Rollup => {
                        let node = special
                            .get(&target.0)
                            .ok_or_else(|| CoreError::InvalidPlan("unknown rollup".into()))?;
                        let before = results.len();
                        run_rollup(
                            node,
                            &input,
                            workload,
                            engine,
                            &aggs,
                            &mut results,
                            &mut extra,
                        )?;
                        observe_delivered(hooks, &results[before..], in_rows);
                    }
                    NodeKind::Cube => {
                        let node = special
                            .get(&target.0)
                            .ok_or_else(|| CoreError::InvalidPlan("unknown cube".into()))?;
                        let before = results.len();
                        run_cube(
                            node,
                            &input,
                            workload,
                            engine,
                            &aggs,
                            &mut results,
                            &mut extra,
                        )?;
                        observe_delivered(hooks, &results[before..], in_rows);
                    }
                }
            }
        }
    }

    let mut metrics = engine.metrics();
    metrics += extra;
    Ok(ExecutionReport {
        results,
        metrics,
        peak_temp_bytes: engine.catalog().accounting().peak_temp_bytes,
    })
}

/// ROLLUP/CUBE nodes of a plan, keyed by column set: their single edge
/// delivers all child results via lattice descent.
fn collect_special(plan: &LogicalPlan) -> FxHashMap<u128, &SubNode> {
    fn walk<'p>(n: &'p SubNode, out: &mut FxHashMap<u128, &'p SubNode>) {
        if n.kind != NodeKind::GroupBy {
            out.insert(n.cols.0, n);
        }
        for c in &n.children {
            walk(c, out);
        }
    }
    let mut special = FxHashMap::default();
    for sp in &plan.subplans {
        walk(sp, &mut special);
    }
    special
}

/// Options for dependency-parallel plan execution
/// (see [`execute_plan_parallel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelOptions {
    /// Worker threads per wave; `0` means one per available CPU.
    pub threads: usize,
    /// Cap on live temp-table bytes. When materializing a node would
    /// exceed the cap, the node is left unmaterialized and its children
    /// re-read the node's own source — more work, bounded storage (the
    /// §4.4.2 trade, applied at run time).
    pub memory_budget: Option<usize>,
}

impl ParallelOptions {
    /// Use `threads` worker threads and no memory budget.
    pub fn with_threads(threads: usize) -> Self {
        ParallelOptions {
            threads,
            ..Default::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Execute `plan` by dependency waves: [`level_plan`] splits the tree
/// into topological levels, each wave's edges run concurrently on scoped
/// threads ([`Engine::run_group_bys_parallel`]), and temp tables are
/// dropped the moment their last reader has executed — the run-time
/// counterpart of the §4.4 storage-minimizing schedule, trading some
/// peak storage for wall-clock time. A `memory_budget` bounds that trade
/// by skipping materializations that would exceed it.
///
/// The results (and metrics counters other than elapsed time) match
/// [`run_plan`]'s up to row order.
pub fn execute_plan_parallel(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    options: ParallelOptions,
) -> Result<ExecutionReport> {
    execute_plan_parallel_with(
        plan,
        workload,
        engine,
        options,
        &GroupEstimates::default(),
        &mut CacheHooks::default(),
    )
}

/// [`execute_plan_parallel`] with per-node distinct-group estimates
/// forwarded to the engine (the session path, which has a cost model)
/// and materialized-aggregate-cache hooks.
pub(crate) fn execute_plan_parallel_with(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    options: ParallelOptions,
    estimates: &GroupEstimates,
    hooks: &mut CacheHooks,
) -> Result<ExecutionReport> {
    plan.validate(workload)?;
    engine.reset_metrics();
    let exec_id = next_exec_id();
    let out = execute_waves(plan, workload, engine, options, estimates, exec_id, hooks);
    if out.is_err() {
        cleanup_exec_temps(engine, exec_id);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn execute_waves(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    options: ParallelOptions,
    estimates: &GroupEstimates,
    exec_id: u64,
    hooks: &mut CacheHooks,
) -> Result<ExecutionReport> {
    let threads = options.effective_threads();

    let special = collect_special(plan);
    // Direct children of every materialized Group By node — the initial
    // reader count of its temp table.
    let mut children: FxHashMap<u128, Vec<ColSet>> = FxHashMap::default();
    fn walk_children(n: &SubNode, out: &mut FxHashMap<u128, Vec<ColSet>>) {
        if n.kind == NodeKind::GroupBy && n.is_materialized() {
            out.insert(n.cols.0, n.children.iter().map(|c| c.cols).collect());
            for c in &n.children {
                walk_children(c, out);
            }
        }
    }
    for sp in &plan.subplans {
        walk_children(sp, &mut children);
    }

    let mut results: Vec<(ColSet, Table)> = Vec::new();
    let mut extra = ExecMetrics::new();
    // Pending readers of each live temp table.
    let mut readers: FxHashMap<u128, usize> = FxHashMap::default();
    // Where budget-evicted nodes' children actually read from.
    let mut source_override: FxHashMap<u128, Option<ColSet>> = FxHashMap::default();

    for wave in level_plan(plan) {
        // Cancellation boundary between dependency waves.
        engine.check_cancelled()?;
        let mut batch: Vec<(PlanEdge, Option<ColSet>)> = Vec::new();
        let mut specials: Vec<(PlanEdge, Option<ColSet>)> = Vec::new();
        for edge in wave {
            let src = source_override
                .get(&edge.target.0)
                .copied()
                .unwrap_or(edge.source);
            if edge.kind == NodeKind::GroupBy {
                batch.push((edge, src));
            } else {
                specials.push((edge, src));
            }
        }

        let queries: Vec<GroupByQuery> = batch
            .iter()
            .map(|(edge, src)| {
                let (input, aggs) = source_io(workload, *src, exec_id, &hooks.roots, edge.target);
                GroupByQuery {
                    input,
                    group_cols: workload
                        .col_names(edge.target)
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    aggs,
                    // Materialization is decided below, under the budget.
                    into: None,
                    estimated_groups: estimates.get(&edge.target.0).copied(),
                }
            })
            .collect();
        // Input sizes must be read before the batch runs: a temp source
        // may be dropped later in this very wave.
        let query_input_rows: Vec<u64> = if hooks.observing() {
            queries
                .iter()
                .map(|q| input_rows_of(engine, &q.input))
                .collect()
        } else {
            Vec::new()
        };
        let tables = engine.run_group_bys_parallel(&queries, threads)?;

        for (k, ((edge, src), table)) in batch.iter().zip(tables).enumerate() {
            if hooks.observing() {
                hooks.observe(edge.target, query_input_rows[k], table.num_rows() as u64, 0);
            }
            if edge.required {
                results.push((edge.target, table.clone()));
            }
            if !edge.materialize {
                continue;
            }
            let kids = &children[&edge.target.0];
            let fits = options.memory_budget.is_none_or(|b| {
                engine.catalog().accounting().current_temp_bytes + table.byte_size() <= b
            });
            if fits {
                engine.materialize_temp(&exec_temp_name(exec_id, edge.target), table)?;
                readers.insert(edge.target.0, kids.len());
            } else {
                // Reparent the children to this edge's own source; if
                // that source is a temp, it gains their reads and must
                // stay live accordingly.
                for k in kids {
                    source_override.insert(k.0, *src);
                }
                if let Some(s) = src {
                    *readers.get_mut(&s.0).expect("source temp is live") += kids.len();
                }
            }
        }

        // ROLLUP/CUBE nodes run serially: their lattice descent already
        // re-aggregates level-by-level internally.
        for (edge, src) in &specials {
            let (input, aggs) = source_io(workload, *src, exec_id, &hooks.roots, edge.target);
            let in_rows = hooks.observing().then(|| input_rows_of(engine, &input));
            let before = results.len();
            let node = special
                .get(&edge.target.0)
                .ok_or_else(|| CoreError::InvalidPlan("unknown rollup/cube node".into()))?;
            match edge.kind {
                NodeKind::Rollup => run_rollup(
                    node,
                    &input,
                    workload,
                    engine,
                    &aggs,
                    &mut results,
                    &mut extra,
                )?,
                NodeKind::Cube => run_cube(
                    node,
                    &input,
                    workload,
                    engine,
                    &aggs,
                    &mut results,
                    &mut extra,
                )?,
                NodeKind::GroupBy => unreachable!("partitioned above"),
            }
            observe_delivered(hooks, &results[before..], in_rows);
        }

        // Every edge of this wave has read its source once: decrement
        // reader counts and drop temps nobody will read again. This runs
        // after the reparenting above so a temp that just inherited
        // readers is not dropped in between.
        for (_, src) in batch.iter().chain(specials.iter()) {
            if let Some(s) = src {
                let r = readers.get_mut(&s.0).expect("source temp is live");
                *r -= 1;
                if *r == 0 {
                    readers.remove(&s.0);
                    // The last reader is done — offer the intermediate
                    // to the aggregate cache before recycling it, so a
                    // later workload asking for exactly this set (or a
                    // subset) is served instead of recomputed.
                    hooks.harvest_temp(engine, exec_id, *s);
                    engine.drop_temp(&exec_temp_name(exec_id, *s))?;
                }
            }
        }
    }
    debug_assert!(readers.is_empty(), "temps leaked: {readers:?}");

    let mut metrics = engine.metrics();
    metrics += extra;
    Ok(ExecutionReport {
        results,
        metrics,
        peak_temp_bytes: engine.catalog().accounting().peak_temp_bytes,
    })
}

/// Per-execution sharding context for a radix-partitioned base table:
/// the catalog names of its shard entries plus the shard key mapped
/// onto the workload's column universe.
#[derive(Debug)]
pub(crate) struct ShardContext {
    /// Catalog names of the base table's shard entries, in shard order.
    pub shard_names: Vec<String>,
    /// Shard-key columns as workload bits. `None` when a key column is
    /// outside the workload universe — merge elision is then impossible
    /// and every cross-shard merge re-aggregates.
    pub key_set: Option<ColSet>,
}

impl ShardContext {
    /// Build the context for `workload`'s base table from its
    /// [`ShardDesc`].
    pub(crate) fn build(desc: &ShardDesc, workload: &Workload) -> Self {
        let shard_names = (0..desc.shard_count)
            .map(|s| shard_table_name(&workload.table, s))
            .collect();
        let mut bits = ColSet::EMPTY;
        let mut all_mapped = true;
        for key in &desc.key_cols {
            match workload.column_names.iter().position(|c| c == key) {
                Some(i) => bits = bits.union(ColSet::single(i)),
                None => {
                    all_mapped = false;
                    break;
                }
            }
        }
        ShardContext {
            shard_names,
            key_set: all_mapped.then_some(bits),
        }
    }

    /// True when grouping by `target` keeps shards hash-disjoint: the
    /// target contains every shard-key column, so no group can span two
    /// shards and per-shard partials concatenate into the final result
    /// without re-aggregation.
    fn covers_key(&self, target: ColSet) -> bool {
        self.key_set.is_some_and(|k| (target.0 & k.0) == k.0)
    }
}

/// [`execute_plan_parallel_with`] for a radix-sharded base table: every
/// Group By edge fans out into one query per shard, intermediates stay
/// per-shard partials all the way down, and required results merge at
/// delivery — by pure concatenation when the grouping covers the shard
/// key (hash-disjoint groups), by concatenation plus re-aggregation
/// otherwise.
pub(crate) fn execute_plan_parallel_sharded(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    options: ParallelOptions,
    estimates: &GroupEstimates,
    hooks: &mut CacheHooks,
    ctx: &ShardContext,
) -> Result<ExecutionReport> {
    plan.validate(workload)?;
    engine.reset_metrics();
    let exec_id = next_exec_id();
    let out = execute_waves_sharded(
        plan, workload, engine, options, estimates, exec_id, hooks, ctx,
    );
    if out.is_err() {
        cleanup_exec_temps(engine, exec_id);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn execute_waves_sharded(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    options: ParallelOptions,
    estimates: &GroupEstimates,
    exec_id: u64,
    hooks: &mut CacheHooks,
    ctx: &ShardContext,
) -> Result<ExecutionReport> {
    let threads = options.effective_threads();
    let nshards = ctx.shard_names.len() as u32;

    let special = collect_special(plan);
    let mut children: FxHashMap<u128, Vec<ColSet>> = FxHashMap::default();
    fn walk_children(n: &SubNode, out: &mut FxHashMap<u128, Vec<ColSet>>) {
        if n.kind == NodeKind::GroupBy && n.is_materialized() {
            out.insert(n.cols.0, n.children.iter().map(|c| c.cols).collect());
            for c in &n.children {
                walk_children(c, out);
            }
        }
    }
    for sp in &plan.subplans {
        walk_children(sp, &mut children);
    }

    let mut results: Vec<(ColSet, Table)> = Vec::new();
    let mut extra = ExecMetrics::new();
    let mut readers: FxHashMap<u128, usize> = FxHashMap::default();
    let mut source_override: FxHashMap<u128, Option<ColSet>> = FxHashMap::default();
    // Whether each materialized node's temps are per-shard partials
    // (`true`) or one whole-table temp (`false` — the node was served
    // from a logical-level pinned aggregate, which is already merged).
    let mut per_shard: FxHashMap<u128, bool> = FxHashMap::default();

    // Shard fan-out and skew are plan-independent facts of the layout.
    let shard_sizes: Vec<u64> = ctx
        .shard_names
        .iter()
        .map(|n| engine.catalog().table(n).map_or(0, |t| t.num_rows() as u64))
        .collect();
    extra.shards = u64::from(nshards);
    let total_rows: u64 = shard_sizes.iter().sum();
    let largest = shard_sizes.iter().copied().max().unwrap_or(0);
    extra.shard_skew = (largest * 100 * u64::from(nshards))
        .checked_div(total_rows)
        .unwrap_or(0);

    let reagg = |workload: &Workload| -> Vec<AggSpec> {
        workload
            .aggregates
            .iter()
            .map(AggSpec::reaggregate)
            .collect()
    };

    for wave in level_plan(plan) {
        engine.check_cancelled()?;
        let mut batch: Vec<(PlanEdge, Option<ColSet>)> = Vec::new();
        let mut specials: Vec<(PlanEdge, Option<ColSet>)> = Vec::new();
        for edge in wave {
            let src = source_override
                .get(&edge.target.0)
                .copied()
                .unwrap_or(edge.source);
            if edge.kind == NodeKind::GroupBy {
                batch.push((edge, src));
            } else {
                specials.push((edge, src));
            }
        }

        // Expand each Group By edge into its query instances: one per
        // shard when its source is per-shard, a single query when the
        // node reads a whole-table pinned aggregate. All instances of a
        // wave run in one parallel batch.
        let mut queries: Vec<GroupByQuery> = Vec::new();
        let mut fan_outs: Vec<bool> = Vec::new();
        for (edge, src) in &batch {
            let group_cols: Vec<String> = workload
                .col_names(edge.target)
                .iter()
                .map(|s| s.to_string())
                .collect();
            let fan_out = match src {
                Some(s) => per_shard[&s.0],
                None => !hooks.roots.contains_key(&(edge.target.0, WHOLE_TABLE_PIN)),
            };
            fan_outs.push(fan_out);
            let est_full = estimates.get(&edge.target.0).copied();
            if fan_out {
                // A grouping that covers the shard key splits its groups
                // across shards; any other grouping may repeat every
                // group in every shard.
                let est = if ctx.covers_key(edge.target) {
                    est_full.map(|e| (e / u64::from(nshards)).max(1))
                } else {
                    est_full
                };
                for s in 0..nshards {
                    let (input, aggs) = match src {
                        Some(cols) => (shard_temp_name(exec_id, *cols, s), reagg(workload)),
                        None => match hooks.roots.get(&(edge.target.0, s)) {
                            Some(pinned) => (pinned.clone(), reagg(workload)),
                            None => {
                                extra.shard_rows += shard_sizes[s as usize];
                                (
                                    ctx.shard_names[s as usize].clone(),
                                    workload.aggregates.clone(),
                                )
                            }
                        },
                    };
                    queries.push(GroupByQuery {
                        input,
                        group_cols: group_cols.clone(),
                        aggs,
                        into: None,
                        estimated_groups: est,
                    });
                }
            } else {
                let (input, aggs) = source_io(workload, *src, exec_id, &hooks.roots, edge.target);
                queries.push(GroupByQuery {
                    input,
                    group_cols,
                    aggs,
                    into: None,
                    estimated_groups: est_full,
                });
            }
        }
        // Input sizes before the batch runs (shard temps of this wave's
        // sources are dropped at the end of the wave).
        let query_input_rows: Vec<u64> = if hooks.observing() {
            queries
                .iter()
                .map(|q| input_rows_of(engine, &q.input))
                .collect()
        } else {
            Vec::new()
        };
        let tables = engine.run_group_bys_parallel(&queries, threads)?;

        let mut cursor = 0usize;
        for (i, (edge, src)) in batch.iter().enumerate() {
            let fan_out = fan_outs[i];
            let len = if fan_out { nshards as usize } else { 1 };
            let parts = &tables[cursor..cursor + len];
            // Whole-logical-table input of this node: the sum over its
            // query instances.
            let in_rows = hooks
                .observing()
                .then(|| query_input_rows[cursor..cursor + len].iter().sum::<u64>());
            cursor += len;

            if edge.required {
                let merged = if fan_out {
                    merge_shards(workload, edge.target, parts, ctx, &mut extra)?
                } else {
                    parts[0].clone()
                };
                if let Some(rows) = in_rows {
                    hooks.observe(edge.target, rows, merged.num_rows() as u64, 0);
                }
                results.push((edge.target, merged));
            } else if !fan_out {
                // A non-fan-out node read a whole-table pinned aggregate,
                // so its single result is a complete group count. Fan-out
                // intermediates stay per-shard partials — a group can
                // repeat across shards, so their row counts are NOT
                // whole-table observations and are skipped.
                if let Some(rows) = in_rows {
                    hooks.observe(edge.target, rows, parts[0].num_rows() as u64, 0);
                }
            }
            if !edge.materialize {
                continue;
            }
            let kids = &children[&edge.target.0];
            let bytes: usize = parts.iter().map(Table::byte_size).sum();
            let fits = options
                .memory_budget
                .is_none_or(|b| engine.catalog().accounting().current_temp_bytes + bytes <= b);
            if fits {
                if fan_out {
                    for (s, t) in parts.iter().enumerate() {
                        engine.materialize_temp(
                            &shard_temp_name(exec_id, edge.target, s as u32),
                            t.clone(),
                        )?;
                    }
                } else {
                    engine.materialize_temp(
                        &exec_temp_name(exec_id, edge.target),
                        parts[0].clone(),
                    )?;
                }
                per_shard.insert(edge.target.0, fan_out);
                readers.insert(edge.target.0, kids.len());
            } else {
                for k in kids {
                    source_override.insert(k.0, *src);
                }
                if let Some(s) = src {
                    *readers.get_mut(&s.0).expect("source temp is live") += kids.len();
                }
            }
        }

        // ROLLUP/CUBE nodes descend a lattice over one combined input:
        // a per-shard source concatenates into a scratch temp first (the
        // descent's own re-aggregation absorbs overlapping groups); a
        // base-relation source reads the logical table, which the
        // dual-resident layout keeps registered alongside the shards.
        for (edge, src) in &specials {
            let node = special
                .get(&edge.target.0)
                .ok_or_else(|| CoreError::InvalidPlan("unknown rollup/cube node".into()))?;
            let (input, aggs, scratch) = match src {
                Some(cols) if per_shard[&cols.0] => {
                    let shard_tables: Vec<Arc<Table>> = (0..nshards)
                        .map(|s| {
                            engine
                                .catalog()
                                .table_arc(&shard_temp_name(exec_id, *cols, s))
                        })
                        .collect::<gbmqo_storage::Result<_>>()?;
                    let refs: Vec<&Table> = shard_tables.iter().map(Arc::as_ref).collect();
                    let combined = Table::concat(&refs)?;
                    extra.merge_rows += combined.num_rows() as u64;
                    let name = format!("{}_m", exec_temp_name(exec_id, *cols));
                    engine.materialize_temp(&name, combined)?;
                    (name.clone(), reagg(workload), Some(name))
                }
                _ => {
                    let (input, aggs) =
                        source_io(workload, *src, exec_id, &hooks.roots, edge.target);
                    (input, aggs, None)
                }
            };
            let in_rows = hooks.observing().then(|| input_rows_of(engine, &input));
            let before = results.len();
            match edge.kind {
                NodeKind::Rollup => run_rollup(
                    node,
                    &input,
                    workload,
                    engine,
                    &aggs,
                    &mut results,
                    &mut extra,
                )?,
                NodeKind::Cube => run_cube(
                    node,
                    &input,
                    workload,
                    engine,
                    &aggs,
                    &mut results,
                    &mut extra,
                )?,
                NodeKind::GroupBy => unreachable!("partitioned above"),
            }
            observe_delivered(hooks, &results[before..], in_rows);
            if let Some(name) = scratch {
                engine.drop_temp(&name)?;
            }
        }

        // Decrement reader counts and retire fully-read temps — all of a
        // node's shard temps go together, each offered to the aggregate
        // cache under its own shard ordinal first.
        for (_, src) in batch.iter().chain(specials.iter()) {
            if let Some(s) = src {
                let r = readers.get_mut(&s.0).expect("source temp is live");
                *r -= 1;
                if *r == 0 {
                    readers.remove(&s.0);
                    if per_shard[&s.0] {
                        for sh in 0..nshards {
                            let name = shard_temp_name(exec_id, *s, sh);
                            if hooks.harvest.is_some() {
                                if let Ok(t) = engine.catalog().table_arc(&name) {
                                    hooks.keep(*s, sh, t);
                                }
                            }
                            engine.drop_temp(&name)?;
                        }
                    } else {
                        hooks.harvest_temp(engine, exec_id, *s);
                        engine.drop_temp(&exec_temp_name(exec_id, *s))?;
                    }
                }
            }
        }
    }
    debug_assert!(readers.is_empty(), "temps leaked: {readers:?}");

    let mut metrics = engine.metrics();
    metrics += extra;
    Ok(ExecutionReport {
        results,
        metrics,
        peak_temp_bytes: engine.catalog().accounting().peak_temp_bytes,
    })
}

/// Combine per-shard partial aggregates of `target` into the final
/// result. Shards are hash-disjoint on the shard key, so a grouping
/// that covers the key concatenates directly; any other grouping may
/// hold the same group in several shards and re-aggregates the
/// concatenation (`SUM(cnt)`-style, per §7.2's lossless merge rules).
fn merge_shards(
    workload: &Workload,
    target: ColSet,
    parts: &[Table],
    ctx: &ShardContext,
    extra: &mut ExecMetrics,
) -> Result<Table> {
    let refs: Vec<&Table> = parts.iter().collect();
    let combined = Table::concat(&refs)?;
    if ctx.covers_key(target) {
        return Ok(combined);
    }
    extra.merge_rows += combined.num_rows() as u64;
    let group_cols: Vec<usize> = workload
        .col_names(target)
        .iter()
        .map(|n| combined.schema().index_of(n))
        .collect::<gbmqo_storage::Result<_>>()?;
    let reagg: Vec<AggSpec> = workload
        .aggregates
        .iter()
        .map(AggSpec::reaggregate)
        .collect();
    Ok(hash_group_by(&combined, &group_cols, &reagg, extra)?)
}

/// Column order over `node.cols` such that every child is a prefix
/// (children must form a nested chain — validated by the plan).
fn rollup_order(node: &SubNode) -> Vec<usize> {
    let mut chain: Vec<ColSet> = node.children.iter().map(|c| c.cols).collect();
    chain.sort_by_key(|s| s.len());
    let mut order: Vec<usize> = Vec::with_capacity(node.cols.len());
    let mut covered = ColSet::EMPTY;
    for s in chain {
        for b in s.difference(covered).iter() {
            order.push(b);
        }
        covered = covered.union(s);
    }
    for b in node.cols.difference(covered).iter() {
        order.push(b);
    }
    order
}

#[allow(clippy::too_many_arguments)]
fn run_rollup(
    node: &SubNode,
    input: &str,
    workload: &Workload,
    engine: &mut Engine,
    aggs: &[AggSpec],
    results: &mut Vec<(ColSet, Table)>,
    extra: &mut ExecMetrics,
) -> Result<()> {
    let order_bits = rollup_order(node);
    // Arc clone, not a deep copy of the table's columns.
    let table = engine.catalog().table_arc(input)?;
    let cols: Vec<usize> = order_bits
        .iter()
        .map(|&b| table.schema().index_of(&workload.column_names[b]))
        .collect::<gbmqo_storage::Result<_>>()?;
    let levels = rollup(&table, &cols, aggs, extra)?;
    extra.queries_executed += 1;
    // level i groups by order_bits[.. len-i]
    let deliver = |cols_kept: usize| ColSet::from_cols(order_bits[..cols_kept].iter().copied());
    if node.required {
        results.push((node.cols, levels[0].clone()));
    }
    for child in &node.children {
        debug_assert!(child.required);
        let kept = child.cols.len();
        let level_idx = order_bits.len() - kept;
        debug_assert_eq!(deliver(kept), child.cols);
        results.push((child.cols, levels[level_idx].clone()));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_cube(
    node: &SubNode,
    input: &str,
    workload: &Workload,
    engine: &mut Engine,
    aggs: &[AggSpec],
    results: &mut Vec<(ColSet, Table)>,
    extra: &mut ExecMetrics,
) -> Result<()> {
    let bits: Vec<usize> = node.cols.iter().collect();
    // Arc clone, not a deep copy of the table's columns.
    let table = engine.catalog().table_arc(input)?;
    let cols: Vec<usize> = bits
        .iter()
        .map(|&b| table.schema().index_of(&workload.column_names[b]))
        .collect::<gbmqo_storage::Result<_>>()?;
    let subsets = cube(&table, &cols, aggs, extra)?;
    extra.queries_executed += 1;
    let lookup = |set: ColSet| -> u32 {
        let mut mask = 0u32;
        for (i, &b) in bits.iter().enumerate() {
            if set.contains(b) {
                mask |= 1 << i;
            }
        }
        mask
    };
    if node.required {
        let full = lookup(node.cols);
        let t = &subsets
            .iter()
            .find(|(m, _)| *m == full)
            .expect("full cube")
            .1;
        results.push((node.cols, t.clone()));
    }
    for child in &node.children {
        let m = lookup(child.cols);
        let t = &subsets
            .iter()
            .find(|(mm, _)| *mm == m)
            .expect("cube subset")
            .1;
        results.push((child.cols, t.clone()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SubNode;
    use gbmqo_storage::{Catalog, Column, DataType, Field, Schema, Value};

    fn setup() -> (Engine, Workload) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64((0..60).map(|i| i % 3).collect()),
                Column::from_i64((0..60).map(|i| i % 6).collect()),
                Column::from_i64((0..60).map(|i| i % 4).collect()),
            ],
        )
        .unwrap();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut cat = Catalog::new();
        cat.register("r", t).unwrap();
        (Engine::new(cat), w)
    }

    fn norm(t: &Table) -> Vec<(Vec<Value>, i64)> {
        let n = t.num_columns();
        let mut v: Vec<(Vec<Value>, i64)> = (0..t.num_rows())
            .map(|r| {
                (
                    (0..n - 1).map(|c| t.value(r, c)).collect(),
                    t.value(r, n - 1).as_int().unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn naive_plan_produces_all_results() {
        let (mut engine, w) = setup();
        let plan = LogicalPlan::naive(&w);
        let report = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        assert_eq!(report.results.len(), 3);
        assert_eq!(report.peak_temp_bytes, 0);
        // counts of (a): 3 groups of 20
        let (_, ta) = report
            .results
            .iter()
            .find(|(s, _)| *s == ColSet::single(0))
            .unwrap();
        assert_eq!(ta.num_rows(), 3);
        assert_eq!(ta.value(0, 1), Value::Int(20));
    }

    #[test]
    fn merged_plan_matches_naive_results() {
        let (mut engine, w) = setup();
        let naive = LogicalPlan::naive(&w);
        let nr = run_plan(
            &naive,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();

        // merged: (a,b) → {a, b}; c direct
        let merged = LogicalPlan {
            subplans: vec![
                SubNode::internal(
                    ColSet::from_cols([0, 1]),
                    vec![
                        SubNode::leaf(ColSet::single(0)),
                        SubNode::leaf(ColSet::single(1)),
                    ],
                ),
                SubNode::leaf(ColSet::single(2)),
            ],
        };
        let mr = run_plan(
            &merged,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        assert!(mr.peak_temp_bytes > 0);
        // temp table is gone afterwards
        assert_eq!(engine.catalog().accounting().current_temp_bytes, 0);
        assert!(engine.catalog().temp_names().is_empty());

        for (set, nt) in &nr.results {
            let mt = &mr
                .results
                .iter()
                .find(|(s, _)| s == set)
                .expect("result present")
                .1;
            assert_eq!(norm(nt), norm(mt), "results differ for {set:?}");
        }
    }

    #[test]
    fn rollup_node_delivers_chain_results() {
        let (mut engine, w0) = setup();
        let w = Workload::new(
            "r",
            engine.catalog().table("r").unwrap(),
            &["a", "b", "c"],
            &[vec!["a"], vec!["a", "b"], vec!["a", "b", "c"]],
        )
        .unwrap();
        drop(w0);
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1, 2]),
                required: true,
                kind: NodeKind::Rollup,
                children: vec![
                    SubNode::leaf(ColSet::from_cols([0, 1])),
                    SubNode::leaf(ColSet::single(0)),
                ],
            }],
        };
        let report = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        assert_eq!(report.results.len(), 3);
        // verify (a) counts equal direct computation
        let naive = LogicalPlan::naive(&w);
        let nr = run_plan(
            &naive,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        for (set, nt) in &nr.results {
            let rt = &report.results.iter().find(|(s, _)| s == set).unwrap().1;
            assert_eq!(norm(nt), norm(rt), "rollup result differs for {set:?}");
        }
    }

    #[test]
    fn cube_node_delivers_subset_results() {
        let (mut engine, _) = setup();
        let w = Workload::new(
            "r",
            engine.catalog().table("r").unwrap(),
            &["a", "b"],
            &[vec!["a"], vec!["b"], vec!["a", "b"]],
        )
        .unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1]),
                required: true,
                kind: NodeKind::Cube,
                children: vec![
                    SubNode::leaf(ColSet::single(0)),
                    SubNode::leaf(ColSet::single(1)),
                ],
            }],
        };
        let report = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        assert_eq!(report.results.len(), 3);
        let naive = LogicalPlan::naive(&w);
        let nr = run_plan(
            &naive,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        for (set, nt) in &nr.results {
            let ct = &report.results.iter().find(|(s, _)| s == set).unwrap().1;
            assert_eq!(norm(nt), norm(ct), "cube result differs for {set:?}");
        }
    }

    #[test]
    fn deep_plans_reaggregate_transitively() {
        // R → (a,b,c*) → (a,b) → (a); checks SUM(cnt) chains.
        let (mut engine, _) = setup();
        let w = Workload::new(
            "r",
            engine.catalog().table("r").unwrap(),
            &["a", "b", "c"],
            &[vec!["a"], vec!["a", "b", "c"]],
        )
        .unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1, 2]),
                required: true,
                kind: NodeKind::GroupBy,
                children: vec![SubNode::internal(
                    ColSet::from_cols([0, 1]),
                    vec![SubNode::leaf(ColSet::single(0))],
                )],
            }],
        };
        let report = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        let (_, ta) = report
            .results
            .iter()
            .find(|(s, _)| *s == ColSet::single(0))
            .unwrap();
        let total: i64 = (0..ta.num_rows())
            .map(|r| ta.value(r, ta.num_columns() - 1).as_int().unwrap())
            .sum();
        assert_eq!(total, 60, "counts must sum to the table size");
        assert_eq!(engine.catalog().accounting().current_temp_bytes, 0);
    }

    #[test]
    fn invalid_plan_is_rejected_before_execution() {
        let (mut engine, w) = setup();
        let bad = LogicalPlan {
            subplans: vec![SubNode::leaf(ColSet::single(0))],
        };
        assert!(run_plan(
            &bad,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default()
        )
        .is_err());
        assert!(execute_plan_parallel(&bad, &w, &mut engine, ParallelOptions::default()).is_err());
    }

    fn merged_plan() -> LogicalPlan {
        LogicalPlan {
            subplans: vec![
                SubNode::internal(
                    ColSet::from_cols([0, 1]),
                    vec![
                        SubNode::leaf(ColSet::single(0)),
                        SubNode::leaf(ColSet::single(1)),
                    ],
                ),
                SubNode::leaf(ColSet::single(2)),
            ],
        }
    }

    #[test]
    fn parallel_executor_matches_serial() {
        let (mut engine, w) = setup();
        let plan = merged_plan();
        let sr = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        for threads in [1, 2, 4] {
            let pr = execute_plan_parallel(
                &plan,
                &w,
                &mut engine,
                ParallelOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(pr.results.len(), sr.results.len());
            for (set, st) in &sr.results {
                let pt = &pr.results.iter().find(|(s, _)| s == set).unwrap().1;
                assert_eq!(norm(st), norm(pt), "parallel differs for {set:?}");
            }
            assert_eq!(pr.metrics.queries_executed, sr.metrics.queries_executed);
            assert_eq!(pr.metrics.rows_scanned, sr.metrics.rows_scanned);
            assert!(pr.peak_temp_bytes > 0);
            assert!(engine.catalog().temp_names().is_empty(), "temps leaked");
        }
    }

    #[test]
    fn parallel_budget_skips_materialization_and_reparents() {
        let (mut engine, w) = setup();
        let plan = merged_plan();
        let unbounded =
            execute_plan_parallel(&plan, &w, &mut engine, ParallelOptions::with_threads(2))
                .unwrap();
        let opts = ParallelOptions {
            threads: 2,
            memory_budget: Some(0),
        };
        let bounded = execute_plan_parallel(&plan, &w, &mut engine, opts).unwrap();
        assert_eq!(
            bounded.peak_temp_bytes, 0,
            "budget 0 must materialize nothing"
        );
        // reparented children re-read the base relation: strictly more work
        assert!(bounded.metrics.rows_scanned > unbounded.metrics.rows_scanned);
        for (set, ut) in &unbounded.results {
            let bt = &bounded.results.iter().find(|(s, _)| s == set).unwrap().1;
            assert_eq!(norm(ut), norm(bt), "budgeted run differs for {set:?}");
        }
        assert!(engine.catalog().temp_names().is_empty());
    }

    #[test]
    fn parallel_budget_reparents_across_deep_chains() {
        // R → (a,b,c)* → (a,b)* → (a): with budget 0 every node re-reads
        // the base relation, exercising transitive reparenting.
        let (mut engine, _) = setup();
        let w = Workload::new(
            "r",
            engine.catalog().table("r").unwrap(),
            &["a", "b", "c"],
            &[vec!["a"], vec!["a", "b", "c"]],
        )
        .unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1, 2]),
                required: true,
                kind: NodeKind::GroupBy,
                children: vec![SubNode::internal(
                    ColSet::from_cols([0, 1]),
                    vec![SubNode::leaf(ColSet::single(0))],
                )],
            }],
        };
        let serial = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        let opts = ParallelOptions {
            threads: 4,
            memory_budget: Some(0),
        };
        let bounded = execute_plan_parallel(&plan, &w, &mut engine, opts).unwrap();
        assert_eq!(bounded.peak_temp_bytes, 0);
        for (set, st) in &serial.results {
            let bt = &bounded.results.iter().find(|(s, _)| s == set).unwrap().1;
            assert_eq!(norm(st), norm(bt), "deep budgeted run differs for {set:?}");
        }
    }

    #[test]
    fn temp_names_are_namespaced_per_execution() {
        // Two runs of the same plan allocate distinct exec ids, so even
        // a snapshot of their temp names mid-run could never collide.
        let a = exec_temp_name(next_exec_id(), ColSet::single(0));
        let b = exec_temp_name(next_exec_id(), ColSet::single(0));
        assert_ne!(a, b, "same node in two executions must not collide");
        assert!(a.starts_with("__gbmqo_tmp_e"));
        // and both differ from the display name used in SQL scripts
        assert_ne!(a, temp_name(ColSet::single(0)));
    }

    #[test]
    fn cancelled_run_drops_its_temps() {
        let (mut engine, w) = setup();
        let plan = merged_plan();
        // Trip the token only after the first query has materialized its
        // temp: attach an untripped token, run one step manually is not
        // possible here, so use a deadline that expires mid-run instead —
        // simplest deterministic variant: pre-tripped token, plus a
        // manually materialized orphan proving cleanup is prefix-scoped.
        engine
            .materialize_temp(
                "__gbmqo_tmp_eff_1",
                engine.catalog().table("r").unwrap().clone(),
            )
            .unwrap();
        let token = gbmqo_exec::CancelToken::new();
        token.cancel();
        engine.set_cancel_token(Some(token));
        let err = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Exec(gbmqo_exec::ExecError::Cancelled { .. })
        ));
        engine.set_cancel_token(None);
        // the foreign temp survives; no temps of the failed run linger
        assert_eq!(engine.catalog().temp_names(), vec!["__gbmqo_tmp_eff_1"]);

        // Same contract for the parallel executor.
        let token = gbmqo_exec::CancelToken::new();
        token.cancel();
        engine.set_cancel_token(Some(token));
        let err = execute_plan_parallel(&plan, &w, &mut engine, ParallelOptions::with_threads(2))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Exec(gbmqo_exec::ExecError::Cancelled { .. })
        ));
        engine.set_cancel_token(None);
        assert_eq!(engine.catalog().temp_names(), vec!["__gbmqo_tmp_eff_1"]);
        engine.drop_temp("__gbmqo_tmp_eff_1").unwrap();

        // With the token detached the same plan runs to completion.
        let ok = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        assert_eq!(ok.results.len(), 3);
    }

    fn sharded_engine(shards: u32) -> Engine {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64((0..60).map(|i| i % 3).collect()),
                Column::from_i64((0..60).map(|i| i % 6).collect()),
                Column::from_i64((0..60).map(|i| i % 4).collect()),
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register_sharded("r", t, shards, Some(vec!["a".into()]))
            .unwrap();
        Engine::new(cat)
    }

    #[test]
    fn sharded_execution_matches_unsharded() {
        let (mut plain, w) = setup();
        let plan = merged_plan();
        let sr = run_plan(
            &plan,
            &w,
            &mut plain,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        for shards in [2u32, 4] {
            let mut engine = sharded_engine(shards);
            let desc = engine.catalog().shard_desc("r").unwrap().clone();
            let ctx = ShardContext::build(&desc, &w);
            let report = execute_plan_parallel_sharded(
                &plan,
                &w,
                &mut engine,
                ParallelOptions::with_threads(2),
                &Default::default(),
                &mut Default::default(),
                &ctx,
            )
            .unwrap();
            assert_eq!(report.results.len(), sr.results.len());
            for (set, st) in &sr.results {
                let pt = &report.results.iter().find(|(s, _)| s == set).unwrap().1;
                assert_eq!(norm(st), norm(pt), "{shards}-sharded differs for {set:?}");
            }
            assert_eq!(report.metrics.shards, u64::from(shards));
            // Two base-reading edges ((a,b) and c), 60 rows each.
            assert_eq!(report.metrics.shard_rows, 120);
            assert!(report.metrics.shard_skew >= 100);
            assert!(engine.catalog().temp_names().is_empty(), "temps leaked");
        }
    }

    #[test]
    fn sharded_merge_elides_reaggregation_when_key_is_covered() {
        let mut engine = sharded_engine(4);
        let t = engine.catalog().table("r").unwrap().clone();

        // Grouping by the shard key: hash-disjoint shards concatenate.
        let w = Workload::single_columns("r", &t, &["a"]).unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode::leaf(ColSet::single(0))],
        };
        let desc = engine.catalog().shard_desc("r").unwrap().clone();
        let ctx = ShardContext::build(&desc, &w);
        let report = execute_plan_parallel_sharded(
            &plan,
            &w,
            &mut engine,
            ParallelOptions::with_threads(2),
            &Default::default(),
            &mut Default::default(),
            &ctx,
        )
        .unwrap();
        assert_eq!(
            report.metrics.merge_rows, 0,
            "covered key must elide the merge"
        );
        assert_eq!(report.results[0].1.num_rows(), 3);

        // Grouping that misses the key: partials overlap, merge
        // re-aggregates and the combined rows are counted.
        let w2 = Workload::new("r", &t, &["a", "c"], &[vec!["c"]]).unwrap();
        let plan2 = LogicalPlan {
            subplans: vec![SubNode::leaf(ColSet::single(1))],
        };
        let ctx2 = ShardContext::build(&desc, &w2);
        let report2 = execute_plan_parallel_sharded(
            &plan2,
            &w2,
            &mut engine,
            ParallelOptions::with_threads(2),
            &Default::default(),
            &mut Default::default(),
            &ctx2,
        )
        .unwrap();
        assert!(
            report2.metrics.merge_rows > 0,
            "uncovered key must re-aggregate"
        );
        assert_eq!(report2.results[0].1.num_rows(), 4);
    }

    #[test]
    fn parallel_executor_handles_rollup_nodes() {
        let (mut engine, _) = setup();
        let w = Workload::new(
            "r",
            engine.catalog().table("r").unwrap(),
            &["a", "b", "c"],
            &[vec!["a"], vec!["a", "b"], vec!["a", "b", "c"]],
        )
        .unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1, 2]),
                required: true,
                kind: NodeKind::Rollup,
                children: vec![
                    SubNode::leaf(ColSet::from_cols([0, 1])),
                    SubNode::leaf(ColSet::single(0)),
                ],
            }],
        };
        let serial = run_plan(
            &plan,
            &w,
            &mut engine,
            None,
            &Default::default(),
            &mut Default::default(),
        )
        .unwrap();
        let parallel =
            execute_plan_parallel(&plan, &w, &mut engine, ParallelOptions::with_threads(2))
                .unwrap();
        assert_eq!(parallel.results.len(), serial.results.len());
        for (set, st) in &serial.results {
            let pt = &parallel.results.iter().find(|(s, _)| s == set).unwrap().1;
            assert_eq!(norm(st), norm(pt), "rollup differs for {set:?}");
        }
    }
}
