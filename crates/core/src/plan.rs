//! Logical plans: trees of Group By queries rooted at the base relation
//! (§3.1).
//!
//! A [`LogicalPlan`] is a forest of [`SubNode`] trees whose roots are
//! "directly pointed to by R" — the paper's *sub-plans*. An edge `u → v`
//! means `v` is computed as a Group By over (the materialization of) `u`;
//! a node with children is an intermediate node and is materialized as a
//! temporary table.

use crate::colset::ColSet;
use crate::coster::EdgeCoster;
use crate::error::{CoreError, Result};
use crate::workload::Workload;
use std::fmt::Write as _;

/// How an internal node is evaluated (§7.1 extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeKind {
    /// A plain Group By query.
    #[default]
    GroupBy,
    /// A ROLLUP query: the node's children must form a nested chain of
    /// prefixes of the node's columns; all are produced by one rollup.
    Rollup,
    /// A CUBE query: every subset of the node's columns is produced; the
    /// node's children must be subsets.
    Cube,
}

/// A node of a logical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubNode {
    /// The node's grouping columns (universe bits).
    pub cols: ColSet,
    /// True if this node is one of the workload's requested queries.
    pub required: bool,
    /// Evaluation strategy.
    pub kind: NodeKind,
    /// Children, each computed from this node.
    pub children: Vec<SubNode>,
}

impl SubNode {
    /// A required leaf (the naive plan's building block).
    pub fn leaf(cols: ColSet) -> Self {
        SubNode {
            cols,
            required: true,
            kind: NodeKind::GroupBy,
            children: Vec::new(),
        }
    }

    /// An intermediate (not required) node with children.
    pub fn internal(cols: ColSet, children: Vec<SubNode>) -> Self {
        SubNode {
            cols,
            required: false,
            kind: NodeKind::GroupBy,
            children,
        }
    }

    /// True if the node's result is materialized as a temp table
    /// (any node with children; required leaves stream to the client).
    pub fn is_materialized(&self) -> bool {
        !self.children.is_empty()
    }

    /// Nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SubNode::size).sum::<usize>()
    }

    /// Cost of this subtree when computed from `source`
    /// (`None` = base relation), per the model wrapped by `coster`.
    pub fn subtree_cost(&self, source: Option<ColSet>, coster: &mut EdgeCoster<'_>) -> f64 {
        match self.kind {
            NodeKind::GroupBy => {
                let mut c = coster.edge(source, self.cols, self.is_materialized());
                for ch in &self.children {
                    c += ch.subtree_cost(Some(self.cols), coster);
                }
                c
            }
            NodeKind::Rollup => {
                // One pass computes the node plus re-aggregations down a
                // chain of its children (sorted descending by size).
                let mut c = coster.edge(source, self.cols, false);
                let mut chain: Vec<ColSet> = self.children.iter().map(|c| c.cols).collect();
                chain.sort_by_key(|s| std::cmp::Reverse(s.len()));
                let mut prev = self.cols;
                for s in chain {
                    c += coster.edge(Some(prev), s, false);
                    prev = s;
                }
                c
            }
            NodeKind::Cube => {
                // The cube produces every subset; price the finest Group By
                // plus one re-aggregation per proper subset. Wide cubes are
                // rejected by validate(); clamp here too so costing a
                // not-yet-validated node cannot overflow the shift below.
                let mut c = coster.edge(source, self.cols, false);
                let bits: Vec<usize> = self.cols.iter().collect();
                let k = bits.len().min(16);
                for mask in 0..(1u32 << k) {
                    if mask == (1u32 << k) - 1 {
                        continue;
                    }
                    let sub =
                        ColSet::from_cols((0..k).filter(|b| mask >> b & 1 == 1).map(|b| bits[b]));
                    c += coster.edge(Some(self.cols), sub, false);
                }
                c
            }
        }
    }

    /// All required column sets in this subtree.
    pub fn collect_required(&self, out: &mut Vec<ColSet>) {
        if self.required {
            out.push(self.cols);
        }
        for ch in &self.children {
            ch.collect_required(out);
        }
    }

    fn validate(&self, parent: Option<ColSet>) -> Result<()> {
        if self.cols.is_empty() {
            return Err(CoreError::InvalidPlan("empty node column set".into()));
        }
        if let Some(p) = parent {
            if !self.cols.is_strict_subset_of(p) {
                return Err(CoreError::InvalidPlan(format!(
                    "child {:?} is not a strict subset of parent {:?}",
                    self.cols, p
                )));
            }
        }
        match self.kind {
            NodeKind::GroupBy => {}
            NodeKind::Rollup => {
                let mut chain: Vec<ColSet> = self.children.iter().map(|c| c.cols).collect();
                chain.sort_by_key(|s| std::cmp::Reverse(s.len()));
                let mut prev = self.cols;
                for s in &chain {
                    if !s.is_strict_subset_of(prev) {
                        return Err(CoreError::InvalidPlan(
                            "rollup children must form a nested chain".into(),
                        ));
                    }
                    prev = *s;
                }
                if self.children.iter().any(|c| !c.children.is_empty()) {
                    return Err(CoreError::InvalidPlan(
                        "rollup children must be leaves".into(),
                    ));
                }
            }
            NodeKind::Cube => {
                if self.cols.len() > 16 {
                    return Err(CoreError::InvalidPlan("cube wider than 16 columns".into()));
                }
                if self.children.iter().any(|c| !c.children.is_empty()) {
                    return Err(CoreError::InvalidPlan(
                        "cube children must be leaves".into(),
                    ));
                }
            }
        }
        for ch in &self.children {
            ch.validate(Some(self.cols))?;
        }
        Ok(())
    }

    fn render(&self, names: &[String], indent: usize, out: &mut String) {
        let _ = writeln!(
            out,
            "{}{}{}{}",
            "  ".repeat(indent),
            match self.kind {
                NodeKind::GroupBy => "",
                NodeKind::Rollup => "ROLLUP ",
                NodeKind::Cube => "CUBE ",
            },
            self.cols.display(names),
            if self.required { " *" } else { "" },
        );
        for ch in &self.children {
            ch.render(names, indent + 1, out);
        }
    }
}

/// A logical plan: a forest of sub-plans hanging off the base relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalPlan {
    /// The sub-plan roots (children of `R`).
    pub subplans: Vec<SubNode>,
}

impl LogicalPlan {
    /// The naive plan: every requested query computed directly from `R`
    /// (step 1 of the paper's algorithm, Figure 5).
    pub fn naive(workload: &Workload) -> Self {
        LogicalPlan {
            subplans: workload
                .requests
                .iter()
                .map(|&s| SubNode::leaf(s))
                .collect(),
        }
    }

    /// Total plan cost under the model wrapped by `coster`.
    pub fn cost(&self, coster: &mut EdgeCoster<'_>) -> f64 {
        self.subplans
            .iter()
            .map(|sp| sp.subtree_cost(None, coster))
            .sum()
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.subplans.iter().map(SubNode::size).sum()
    }

    /// Number of intermediate (materialized) nodes.
    pub fn materialized_count(&self) -> usize {
        fn walk(n: &SubNode) -> usize {
            usize::from(n.is_materialized()) + n.children.iter().map(walk).sum::<usize>()
        }
        self.subplans.iter().map(walk).sum()
    }

    /// Check structural invariants and that every workload request appears
    /// as a required node exactly once.
    pub fn validate(&self, workload: &Workload) -> Result<()> {
        for sp in &self.subplans {
            sp.validate(None)?;
        }
        let mut required: Vec<ColSet> = Vec::new();
        for sp in &self.subplans {
            sp.collect_required(&mut required);
        }
        required.sort();
        let mut expected: Vec<ColSet> = workload.requests.clone();
        expected.sort();
        if required != expected {
            return Err(CoreError::InvalidPlan(format!(
                "plan covers {} required nodes, workload has {}",
                required.len(),
                expected.len()
            )));
        }
        Ok(())
    }

    /// Render the plan as an indented tree; `*` marks required nodes.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::from("R\n");
        for sp in &self.subplans {
            sp.render(names, 1, &mut out);
        }
        out
    }

    /// Render the plan as Graphviz DOT (for docs and debugging):
    /// `dot -Tsvg plan.dot -o plan.svg`. Required nodes are doubly
    /// outlined; materialized intermediates are shaded.
    pub fn render_dot(&self, names: &[String]) -> String {
        fn node_id(cols: ColSet) -> String {
            format!("n{:x}", cols.0)
        }
        fn emit(n: &SubNode, parent: &str, names: &[String], out: &mut String) {
            let id = node_id(n.cols);
            let label = format!(
                "{}{}",
                match n.kind {
                    NodeKind::GroupBy => "",
                    NodeKind::Rollup => "ROLLUP ",
                    NodeKind::Cube => "CUBE ",
                },
                n.cols.display(names)
            );
            let mut attrs = vec![format!("label=\"{label}\"")];
            if n.required {
                attrs.push("peripheries=2".to_string());
            }
            if n.is_materialized() {
                attrs.push("style=filled".to_string());
                attrs.push("fillcolor=lightgrey".to_string());
            }
            let _ = writeln!(out, "  {id} [{}];", attrs.join(", "));
            let _ = writeln!(out, "  {parent} -> {id};");
            for c in &n.children {
                emit(c, &id, names, out);
            }
        }
        let mut out = String::from("digraph plan {\n  rankdir=TB;\n  node [shape=box];\n");
        let _ = writeln!(out, "  R [shape=ellipse, label=\"R\"];");
        for sp in &self.subplans {
            emit(sp, "R", names, &mut out);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_cost::CardinalityCostModel;
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64(vec![1, 1, 2, 2, 3, 3]),
                Column::from_i64(vec![1, 1, 1, 2, 2, 2]),
                Column::from_i64(vec![1, 2, 1, 2, 1, 2]),
            ],
        )
        .unwrap()
    }

    fn workload() -> Workload {
        Workload::single_columns("r", &table(), &["a", "b", "c"]).unwrap()
    }

    #[test]
    fn naive_plan_shape_and_cost() {
        let w = workload();
        let t = table();
        let plan = LogicalPlan::naive(&w);
        assert_eq!(plan.subplans.len(), 3);
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.materialized_count(), 0);
        plan.validate(&w).unwrap();

        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let mut coster = EdgeCoster::new(&mut model, w.base_ordinals.clone());
        // three scans of R (6 rows each)
        assert_eq!(plan.cost(&mut coster), 18.0);
    }

    #[test]
    fn merged_plan_costs_less_under_cardinality_model() {
        let w = workload();
        let t = table();
        // plan: (a,b) materialized from R; a,b from it; c from R
        let ab = ColSet::from_cols([0, 1]);
        let plan = LogicalPlan {
            subplans: vec![
                SubNode::internal(
                    ab,
                    vec![
                        SubNode::leaf(ColSet::single(0)),
                        SubNode::leaf(ColSet::single(1)),
                    ],
                ),
                SubNode::leaf(ColSet::single(2)),
            ],
        };
        plan.validate(&w).unwrap();
        assert_eq!(plan.materialized_count(), 1);

        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let mut coster = EdgeCoster::new(&mut model, w.base_ordinals.clone());
        // R→ab: 6, ab→a: |ab|=4, ab→b: 4, R→c: 6 → 20 > naive 18 here
        assert_eq!(plan.cost(&mut coster), 20.0);
    }

    #[test]
    fn validate_rejects_broken_plans() {
        let w = workload();
        // child not strict subset
        let bad = LogicalPlan {
            subplans: vec![SubNode::internal(
                ColSet::single(0),
                vec![SubNode::leaf(ColSet::single(0))],
            )],
        };
        assert!(bad.validate(&w).is_err());
        // missing required node
        let missing = LogicalPlan {
            subplans: vec![SubNode::leaf(ColSet::single(0))],
        };
        assert!(missing.validate(&w).is_err());
        // duplicated required node
        let dup = LogicalPlan {
            subplans: vec![
                SubNode::leaf(ColSet::single(0)),
                SubNode::leaf(ColSet::single(0)),
                SubNode::leaf(ColSet::single(1)),
                SubNode::leaf(ColSet::single(2)),
            ],
        };
        assert!(dup.validate(&w).is_err());
    }

    #[test]
    fn rollup_validation() {
        let node = SubNode {
            cols: ColSet::from_cols([0, 1, 2]),
            required: false,
            kind: NodeKind::Rollup,
            children: vec![
                SubNode::leaf(ColSet::from_cols([0, 1])),
                SubNode::leaf(ColSet::single(0)),
            ],
        };
        node.validate(None).unwrap();
        let broken = SubNode {
            cols: ColSet::from_cols([0, 1, 2]),
            required: false,
            kind: NodeKind::Rollup,
            children: vec![
                SubNode::leaf(ColSet::single(0)),
                SubNode::leaf(ColSet::single(1)), // not nested
            ],
        };
        assert!(broken.validate(None).is_err());
    }

    #[test]
    fn render_is_readable() {
        let w = workload();
        let plan = LogicalPlan {
            subplans: vec![SubNode::internal(
                ColSet::from_cols([0, 1]),
                vec![
                    SubNode::leaf(ColSet::single(0)),
                    SubNode::leaf(ColSet::single(1)),
                ],
            )],
        };
        let s = plan.render(&w.column_names);
        assert!(s.contains("(a, b)"));
        assert!(s.contains("(a) *"));
    }

    #[test]
    fn dot_rendering_has_all_nodes_and_edges() {
        let w = workload();
        let plan = LogicalPlan {
            subplans: vec![
                SubNode::internal(
                    ColSet::from_cols([0, 1]),
                    vec![
                        SubNode::leaf(ColSet::single(0)),
                        SubNode::leaf(ColSet::single(1)),
                    ],
                ),
                SubNode::leaf(ColSet::single(2)),
            ],
        };
        let dot = plan.render_dot(&w.column_names);
        assert!(dot.starts_with("digraph plan {"));
        assert_eq!(dot.matches(" -> ").count(), 4, "{dot}");
        assert!(dot.contains("peripheries=2")); // required nodes marked
        assert!(dot.contains("fillcolor=lightgrey")); // materialized node
        assert!(dot.contains("label=\"(a, b)\""));
    }

    #[test]
    fn rollup_and_cube_costs_are_finite() {
        let w = workload();
        let t = table();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let mut coster = EdgeCoster::new(&mut model, w.base_ordinals.clone());
        for kind in [NodeKind::Rollup, NodeKind::Cube] {
            let node = SubNode {
                cols: ColSet::from_cols([0, 1]),
                required: false,
                kind,
                children: vec![SubNode::leaf(ColSet::single(0))],
            };
            let c = node.subtree_cost(None, &mut coster);
            assert!(c.is_finite() && c > 0.0);
        }
    }
}
