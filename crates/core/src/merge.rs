//! The SubPlanMerge operator (§4.1, Figure 4).
//!
//! Merging two sub-plans rooted at `v1` and `v2` introduces the node
//! `v1 ∪ v2` — "the smallest relation from which both v1 and v2 can be
//! computed" — and yields up to four alternatives:
//!
//! * **(a)** drop both roots: the children of `v1` and `v2` hang directly
//!   off `v1 ∪ v2` (legal only when neither root is required),
//! * **(b)** keep both roots as children of `v1 ∪ v2`,
//! * **(c)** keep `v1`, drop `v2` (legal when `v2` is not required),
//! * **(d)** keep `v2`, drop `v1` (legal when `v1` is not required).
//!
//! When one root subsumes the other (`v2 ⊆ v1`), (b)–(d) degenerate into
//! computing `v2` from `v1` (keeping or dropping `v2`'s node). The
//! binary-tree restriction of §4.2 corresponds to producing only type (b).

use crate::colset::ColSet;
use crate::plan::{NodeKind, SubNode};

/// Append `node` to `children`, merging with an existing child that has
/// the same column set (required flags OR; children union recursively).
fn merge_into_children(children: &mut Vec<SubNode>, node: SubNode) {
    if let Some(existing) = children.iter_mut().find(|c| c.cols == node.cols) {
        existing.required |= node.required;
        for ch in node.children {
            merge_into_children(&mut existing.children, ch);
        }
    } else {
        children.push(node);
    }
}

fn with_children(cols: ColSet, required: bool, parts: Vec<Vec<SubNode>>) -> SubNode {
    let mut children: Vec<SubNode> = Vec::new();
    for part in parts {
        for node in part {
            merge_into_children(&mut children, node);
        }
    }
    SubNode {
        cols,
        required,
        kind: NodeKind::GroupBy,
        children,
    }
}

/// Candidate merged sub-plans for the pair `(p1, p2)`.
///
/// With `binary_only` set, only the type-(b) alternative (or its
/// subsumption degeneration) is produced — the restricted search space of
/// §4.2 whose impact §6.5 measures.
pub fn sub_plan_merge(p1: &SubNode, p2: &SubNode, binary_only: bool) -> Vec<SubNode> {
    let mut out: Vec<SubNode> = Vec::new();

    // Identical roots: one node carrying both sub-plans.
    if p1.cols == p2.cols {
        out.push(with_children(
            p1.cols,
            p1.required || p2.required,
            vec![p1.children.clone(), p2.children.clone()],
        ));
        return out;
    }

    // Subsumption: compute the smaller root from the larger.
    if p2.cols.is_strict_subset_of(p1.cols) || p1.cols.is_strict_subset_of(p2.cols) {
        let (big, small) = if p2.cols.is_strict_subset_of(p1.cols) {
            (p1, p2)
        } else {
            (p2, p1)
        };
        // Degenerate (b): small becomes a child of big.
        out.push(with_children(
            big.cols,
            big.required,
            vec![big.children.clone(), vec![small.clone()]],
        ));
        // Degenerate (a/c): drop small's node, its children hang off big.
        if !binary_only && !small.required && !small.children.is_empty() {
            out.push(with_children(
                big.cols,
                big.required,
                vec![big.children.clone(), small.children.clone()],
            ));
        }
        return out;
    }

    let union = p1.cols.union(p2.cols);
    // (b) keep both.
    out.push(with_children(
        union,
        false,
        vec![vec![p1.clone()], vec![p2.clone()]],
    ));
    if binary_only {
        return out;
    }
    // (a) drop both.
    if !p1.required && !p2.required {
        out.push(with_children(
            union,
            false,
            vec![p1.children.clone(), p2.children.clone()],
        ));
    }
    // (c) keep v1, drop v2.
    if !p2.required {
        out.push(with_children(
            union,
            false,
            vec![vec![p1.clone()], p2.children.clone()],
        ));
    }
    // (d) keep v2, drop v1.
    if !p1.required {
        out.push(with_children(
            union,
            false,
            vec![vec![p2.clone()], p1.children.clone()],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SubNode;

    fn leaf(bits: &[usize]) -> SubNode {
        SubNode::leaf(ColSet::from_cols(bits.iter().copied()))
    }

    fn internal(bits: &[usize], children: Vec<SubNode>) -> SubNode {
        SubNode::internal(ColSet::from_cols(bits.iter().copied()), children)
    }

    #[test]
    fn disjoint_leaves_produce_only_type_b() {
        let a = leaf(&[0]);
        let b = leaf(&[1]);
        // both roots required ⇒ (a)/(c)/(d) are illegal, only (b) remains
        let cands = sub_plan_merge(&a, &b, false);
        assert_eq!(cands.len(), 1);
        let m = &cands[0];
        assert_eq!(m.cols, ColSet::from_cols([0, 1]));
        assert!(!m.required);
        assert_eq!(m.children.len(), 2);
        assert!(m.children.iter().all(|c| c.required));
    }

    #[test]
    fn non_required_roots_enable_a_c_d() {
        // p1 = internal (0,1) with leaves 0,1 ; p2 = internal (2,3) with leaves 2,3
        let p1 = internal(&[0, 1], vec![leaf(&[0]), leaf(&[1])]);
        let p2 = internal(&[2, 3], vec![leaf(&[2]), leaf(&[3])]);
        let cands = sub_plan_merge(&p1, &p2, false);
        // (b), (a), (c), (d)
        assert_eq!(cands.len(), 4);
        let union = ColSet::from_cols([0, 1, 2, 3]);
        assert!(cands.iter().all(|c| c.cols == union));
        let child_counts: Vec<usize> = cands.iter().map(|c| c.children.len()).collect();
        // (b): 2 children; (a): 4 leaves; (c): p1 + 2 leaves = 3; (d): 3
        assert!(child_counts.contains(&2));
        assert!(child_counts.contains(&4));
        assert_eq!(child_counts.iter().filter(|&&c| c == 3).count(), 2);
    }

    #[test]
    fn binary_only_restricts_to_b() {
        let p1 = internal(&[0, 1], vec![leaf(&[0]), leaf(&[1])]);
        let p2 = internal(&[2, 3], vec![leaf(&[2]), leaf(&[3])]);
        let cands = sub_plan_merge(&p1, &p2, true);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].children.len(), 2);
    }

    #[test]
    fn subsumption_degenerates() {
        // v1 = (0,1) required, v2 = (0) required: compute (0) from (0,1)
        let big = leaf(&[0, 1]);
        let small = leaf(&[0]);
        let cands = sub_plan_merge(&big, &small, false);
        assert_eq!(cands.len(), 1);
        let m = &cands[0];
        assert_eq!(m.cols, ColSet::from_cols([0, 1]));
        assert!(m.required, "the subsuming root stays required");
        assert_eq!(m.children.len(), 1);
        assert_eq!(m.children[0].cols, ColSet::single(0));

        // argument order must not matter
        let cands2 = sub_plan_merge(&small, &big, false);
        assert_eq!(cands, cands2);
    }

    #[test]
    fn subsumption_with_droppable_inner_node() {
        // big = (0,1,2) required; small = internal (0,1) with leaves 0,1
        let big = leaf(&[0, 1, 2]);
        let small = internal(&[0, 1], vec![leaf(&[0]), leaf(&[1])]);
        let cands = sub_plan_merge(&big, &small, false);
        assert_eq!(cands.len(), 2);
        // keep: (0,1) child with its 2 leaves
        assert!(cands.iter().any(|c| c.children.len() == 1
            && c.children[0].cols == ColSet::from_cols([0, 1])
            && c.children[0].children.len() == 2));
        // drop: leaves 0,1 directly under (0,1,2)
        assert!(cands
            .iter()
            .any(|c| c.children.len() == 2 && c.children.iter().all(|x| x.children.is_empty())));
    }

    #[test]
    fn equal_roots_merge_children_and_requiredness() {
        let p1 = internal(&[0, 1], vec![leaf(&[0])]);
        let mut p2 = internal(&[0, 1], vec![leaf(&[1])]);
        p2.required = true;
        let cands = sub_plan_merge(&p1, &p2, false);
        assert_eq!(cands.len(), 1);
        let m = &cands[0];
        assert!(m.required);
        assert_eq!(m.children.len(), 2);
    }

    #[test]
    fn duplicate_children_are_coalesced() {
        // both sub-plans carry a leaf (0): merging must not duplicate it
        let p1 = internal(&[0, 1], vec![leaf(&[0]), leaf(&[1])]);
        let p2 = internal(&[0, 2], vec![leaf(&[0]), leaf(&[2])]);
        let cands = sub_plan_merge(&p1, &p2, false);
        // type (a) exists (both roots unrequired): children = {0,1,0,2} → 3
        let a = cands
            .iter()
            .find(|c| c.children.iter().all(|x| x.children.is_empty()))
            .expect("type (a) candidate");
        assert_eq!(a.children.len(), 3);
    }

    #[test]
    fn merge_preserves_required_below() {
        let p1 = internal(&[0, 1], vec![leaf(&[0]), leaf(&[1])]);
        let p2 = leaf(&[2]);
        for cand in sub_plan_merge(&p1, &p2, false) {
            let mut req = Vec::new();
            cand.collect_required(&mut req);
            req.sort();
            assert_eq!(
                req,
                vec![ColSet::single(0), ColSet::single(1), ColSet::single(2)],
                "candidate lost required nodes: {cand:?}"
            );
        }
    }
}
