//! §5.1.1: GROUPING SETS over a join, with Group By pushdown and the
//! `Grp-Tag` column.
//!
//! For a GROUPING SETS query over `Join(R, S)` on `R.a = S.a` whose
//! grouping columns live in `R`, the paper pushes the grouping below the
//! join: each requested set `s` is computed as `GROUP BY s ∪ {a}` over
//! `R` (our optimizer shares work across those pushed-down queries), the
//! results are UNION ALL'ed with a `Grp-Tag`, joined once with `S`, and
//! the final per-set aggregation above the join filters on the tag.
//!
//! As in the coalescing-grouping transformation the paper cites \[7\],
//! correctness of the final `SUM(cnt)` requires each pushed-down row to
//! match at most one `S` row, i.e. the join column must be a key of `S`
//! (validated here).

use crate::error::{CoreError, Result};
use crate::executor::run_plan;
use crate::greedy::{GbMqo, SearchConfig};
use crate::workload::Workload;
use gbmqo_cost::CardinalityCostModel;
use gbmqo_exec::{
    filter, hash_group_by, union_all_tagged, AggSpec, Engine, ExecMetrics, Predicate,
};
use gbmqo_stats::ExactSource;
use gbmqo_storage::{Table, Value};

/// Result of a pushed-down GROUPING SETS over a join: one table per
/// requested grouping set, tagged by the request's column list.
#[derive(Debug)]
pub struct JoinGroupingSets {
    /// `(tag, result)` pairs, tag = comma-joined column names.
    pub results: Vec<(String, Table)>,
    /// The tagged union-all below the join (diagnostics; §5.1.1 Figure 8).
    pub tagged_union_rows: usize,
    /// Work performed.
    pub metrics: ExecMetrics,
}

/// Execute GROUPING SETS `requests` (columns of `left`) over
/// `Join(left, right)` on `left.join_col = right.join_col`, using the
/// GB-MQO optimizer for the pushed-down Group Bys.
pub fn grouping_sets_over_join(
    engine: &mut Engine,
    left: &str,
    right: &str,
    join_col: &str,
    requests: &[Vec<&str>],
) -> Result<JoinGroupingSets> {
    // Arc clones, not deep copies of the tables' columns.
    let left_table = engine.catalog().table_arc(left)?;
    let right_table = engine.catalog().table_arc(right)?;
    let right_key = right_table
        .schema()
        .index_of(join_col)
        .map_err(CoreError::Storage)?;
    // Key requirement on S (see module docs).
    {
        let mut m = ExecMetrics::new();
        let keys = hash_group_by(&right_table, &[right_key], &[AggSpec::count()], &mut m)?;
        if keys.num_rows() != right_table.num_rows() {
            return Err(CoreError::InvalidWorkload(format!(
                "join column {join_col} is not a key of {right}"
            )));
        }
    }

    // Push down: each request becomes s ∪ {a} over R.
    let mut universe: Vec<&str> = vec![join_col];
    for req in requests {
        for c in req {
            if !universe.contains(c) {
                universe.push(c);
            }
        }
    }
    let pushed: Vec<Vec<&str>> = requests
        .iter()
        .map(|req| {
            let mut v = req.clone();
            if !v.contains(&join_col) {
                v.push(join_col);
            }
            v
        })
        .collect();
    let workload = Workload::new(left, &left_table, &universe, &pushed)?;

    // Optimize and execute the pushed-down Group Bys (work sharing!).
    let mut model = CardinalityCostModel::new(ExactSource::new(&left_table));
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned()).plan(&workload, &mut model)?;
    let report = run_plan(
        &plan,
        &workload,
        engine,
        None,
        &Default::default(),
        &mut Default::default(),
    )?;
    let mut metrics = report.metrics;

    // Tag + union-all (Figure 8's Union-All below the join).
    let tag_of = |req: &Vec<&str>| req.join(",");
    let mut tagged: Vec<(String, &Table)> = Vec::new();
    for (req, pushed_req) in requests.iter().zip(&pushed) {
        let table = &report
            .results
            .iter()
            .find(|(s, _)| {
                let names = workload.col_names(*s);
                pushed_req.iter().all(|c| names.contains(c)) && names.len() == pushed_req.len()
            })
            .expect("result for pushed request")
            .1;
        tagged.push((tag_of(req), table));
    }
    let tagged_refs: Vec<(&str, &Table)> = tagged.iter().map(|(t, tb)| (t.as_str(), *tb)).collect();
    let union = union_all_tagged(&tagged_refs, "grp_tag", &mut metrics)?;
    let tagged_union_rows = union.num_rows();

    // Join once with S.
    let union_key = union
        .schema()
        .index_of(join_col)
        .map_err(CoreError::Storage)?;
    let joined = gbmqo_exec::hash_join(
        &union,
        &right_table,
        &[union_key],
        &[right_key],
        &mut metrics,
    )?;

    // Final per-set aggregation above the join, filtered by Grp-Tag.
    let mut results = Vec::with_capacity(requests.len());
    for req in requests {
        let tag = tag_of(req);
        let relevant = filter(
            &joined,
            &Predicate::Eq("grp_tag".into(), Value::str(&tag)),
            &mut metrics,
        )?;
        let cols: Vec<usize> = req
            .iter()
            .map(|c| relevant.schema().index_of(c))
            .collect::<gbmqo_storage::Result<_>>()?;
        let out = hash_group_by(&relevant, &cols, &[AggSpec::sum_count()], &mut metrics)?;
        results.push((tag, out));
    }

    Ok(JoinGroupingSets {
        results,
        tagged_union_rows,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Catalog, Column, DataType, Field, Schema, TableBuilder};

    fn setup() -> Engine {
        // R(a, b, c): fact rows; S(a, s): dimension keyed by a.
        let r_schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let r = Table::new(
            r_schema,
            vec![
                Column::from_i64((0..90).map(|i| i % 3).collect()),
                Column::from_i64((0..90).map(|i| i % 5).collect()),
                Column::from_i64((0..90).map(|i| i % 2).collect()),
            ],
        )
        .unwrap();
        let s_schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        let mut sb = TableBuilder::new(s_schema);
        for i in 0..3i64 {
            sb.push_row(&[Value::Int(i), Value::str(&format!("dim{i}"))])
                .unwrap();
        }
        let s = sb.finish().unwrap();
        let mut cat = Catalog::new();
        cat.register("r", r).unwrap();
        cat.register("s", s).unwrap();
        Engine::new(cat)
    }

    fn norm(t: &Table) -> Vec<(Vec<Value>, i64)> {
        let n = t.num_columns();
        let mut v: Vec<(Vec<Value>, i64)> = (0..t.num_rows())
            .map(|r| {
                (
                    (0..n - 1).map(|c| t.value(r, c)).collect(),
                    t.value(r, n - 1).as_int().unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn pushdown_matches_join_then_group() {
        let mut engine = setup();
        let out = grouping_sets_over_join(
            &mut engine,
            "r",
            "s",
            "a",
            &[vec!["b"], vec!["c"], vec!["b", "c"]],
        )
        .unwrap();
        assert_eq!(out.results.len(), 3);
        assert!(out.tagged_union_rows > 0);

        // Reference: join first, then group directly.
        let r = engine.catalog().table("r").unwrap().clone();
        let s = engine.catalog().table("s").unwrap().clone();
        let mut m = ExecMetrics::new();
        let joined = gbmqo_exec::hash_join(&r, &s, &[0], &[0], &mut m).unwrap();
        for (tag, table) in &out.results {
            let cols: Vec<usize> = tag
                .split(',')
                .map(|c| joined.schema().index_of(c).unwrap())
                .collect();
            let direct = hash_group_by(&joined, &cols, &[AggSpec::count()], &mut m).unwrap();
            // column order: pushed results group by request order; align by sorting
            assert_eq!(norm(table), norm(&direct), "grouping set {tag}");
        }
    }

    #[test]
    fn non_key_join_column_rejected() {
        let mut engine = setup();
        // use r as both sides: r.a is not unique
        let err = grouping_sets_over_join(&mut engine, "r", "r", "a", &[vec!["b"]]);
        assert!(matches!(err, Err(CoreError::InvalidWorkload(_))));
    }

    #[test]
    fn missing_tables_error() {
        let mut engine = setup();
        assert!(grouping_sets_over_join(&mut engine, "ghost", "s", "a", &[vec!["b"]]).is_err());
    }
}
