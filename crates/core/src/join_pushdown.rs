//! §5.1.1: GROUPING SETS over a join, with Group By pushdown and the
//! `Grp-Tag` column.
//!
//! For a GROUPING SETS query over `Join(R, S)` on `R.a = S.a` whose
//! grouping columns live in `R`, the paper pushes the grouping below the
//! join: each requested set `s` is computed as `GROUP BY s ∪ {a}` over
//! `R` (our optimizer shares work across those pushed-down queries), the
//! results are UNION ALL'ed with a `Grp-Tag`, joined once with `S`, and
//! the final per-set aggregation above the join filters on the tag.
//!
//! As in the coalescing-grouping transformation the paper cites \[7\],
//! correctness of the final `SUM(cnt)` requires each pushed-down row to
//! match at most one `S` row, i.e. the join column must be a key of `S`
//! (validated here).

use crate::error::{CoreError, Result};
use crate::executor::run_plan;
use crate::greedy::{GbMqo, SearchConfig};
use crate::workload::Workload;
use gbmqo_cost::CardinalityCostModel;
use gbmqo_exec::{
    filter, hash_group_by, union_all_tagged, AggSpec, Engine, ExecMetrics, Predicate,
};
use gbmqo_stats::ExactSource;
use gbmqo_storage::{Table, Value};

/// Result of a pushed-down GROUPING SETS over a join: one table per
/// requested grouping set, tagged by the request's column list.
#[derive(Debug)]
pub struct JoinGroupingSets {
    /// `(tag, result)` pairs, tag = comma-joined column names.
    pub results: Vec<(String, Table)>,
    /// The tagged union-all below the join (diagnostics; §5.1.1 Figure 8).
    pub tagged_union_rows: usize,
    /// Work performed.
    pub metrics: ExecMetrics,
}

/// One dimension of a star join: `fact.fact_key = table.dim_key`, with
/// an optional selection over the dimension (applied *before* the join —
/// for an inner join against a keyed dimension that is equivalent to
/// filtering afterwards, and far cheaper).
#[derive(Debug, Clone, PartialEq)]
pub struct StarDim {
    /// Dimension table name.
    pub table: String,
    /// Join key column on the fact side.
    pub fact_key: String,
    /// Join key column on the dimension side (must be a key — validated).
    pub dim_key: String,
    /// ANDed WHERE conjuncts over this dimension's columns.
    pub filter: Option<Predicate>,
}

/// Execute GROUPING SETS `requests` (columns of `left`) over
/// `Join(left, right)` on `left.join_col = right.join_col`, using the
/// GB-MQO optimizer for the pushed-down Group Bys.
pub fn grouping_sets_over_join(
    engine: &mut Engine,
    left: &str,
    right: &str,
    join_col: &str,
    requests: &[Vec<&str>],
) -> Result<JoinGroupingSets> {
    let dim = StarDim {
        table: right.to_string(),
        fact_key: join_col.to_string(),
        dim_key: join_col.to_string(),
        filter: None,
    };
    grouping_sets_over_star(engine, left, &[dim], requests, None, &[AggSpec::count()])
}

/// Scratch temp holding the filtered fact table while a star pushdown
/// with a fact-side selection executes.
const FILTERED_BASE_TEMP: &str = "__gbmqo_sqlfe_filtered_base";

/// The §5.1.1 rewrite generalized to a star: GROUPING SETS `requests`
/// (columns of `fact`) over `fact ⋈ dims[0] ⋈ dims[1] ⋈ …`, each join an
/// equi-join on a key of its dimension.
///
/// Each request `s` is pushed below the joins as
/// `GROUP BY s ∪ {all fact keys}` over the (optionally filtered) fact
/// table — one GB-MQO workload, so the optimizer shares work across the
/// pushed-down queries. The per-set aggregates are UNION ALL'ed with a
/// `Grp-Tag`, joined once per dimension, and re-aggregated per set above
/// the joins with the tag as the selector.
///
/// `aggregates` are the per-set aggregates; over a non-empty `dims` list
/// they must all re-aggregate losslessly through the join (COUNT/SUM —
/// the callers' binder enforces COUNT-only), and the final aggregation
/// applies [`AggSpec::reaggregate`] to each.
pub fn grouping_sets_over_star(
    engine: &mut Engine,
    fact: &str,
    dims: &[StarDim],
    requests: &[Vec<&str>],
    fact_filter: Option<&Predicate>,
    aggregates: &[AggSpec],
) -> Result<JoinGroupingSets> {
    // Resolve and validate every dimension before any temp is created.
    // Arc clones, not deep copies of the tables' columns.
    let mut dim_tables: Vec<Table> = Vec::with_capacity(dims.len());
    for dim in dims {
        let table = engine.catalog().table_arc(&dim.table)?;
        let mut m = ExecMetrics::new();
        let table = match &dim.filter {
            Some(pred) => filter(&table, pred, &mut m)?,
            None => (*table).clone(),
        };
        let dim_key = table
            .schema()
            .index_of(&dim.dim_key)
            .map_err(CoreError::Storage)?;
        // Key requirement on every dimension (see module docs).
        let keys = hash_group_by(&table, &[dim_key], &[AggSpec::count()], &mut m)?;
        if keys.num_rows() != table.num_rows() {
            return Err(CoreError::InvalidWorkload(format!(
                "join column {} is not a key of {}",
                dim.dim_key, dim.table
            )));
        }
        dim_tables.push(table);
    }

    // Optionally push the fact-side selection below everything,
    // materializing the filtered fact as a scratch temp the pushed-down
    // workload runs over.
    let (base_name, base_table) = match fact_filter {
        Some(pred) => {
            let _ = engine.drop_temp(FILTERED_BASE_TEMP); // leaked by an earlier error?
            let filtered = engine.run_filter(fact, pred, Some(FILTERED_BASE_TEMP))?;
            (FILTERED_BASE_TEMP.to_string(), filtered)
        }
        None => (
            fact.to_string(),
            (*engine.catalog().table_arc(fact)?).clone(),
        ),
    };
    let result = star_over_base(
        engine,
        &base_name,
        &base_table,
        dims,
        &dim_tables,
        requests,
        aggregates,
    );
    if fact_filter.is_some() {
        let _ = engine.drop_temp(FILTERED_BASE_TEMP);
    }
    result
}

fn star_over_base(
    engine: &mut Engine,
    base_name: &str,
    base_table: &Table,
    dims: &[StarDim],
    dim_tables: &[Table],
    requests: &[Vec<&str>],
    aggregates: &[AggSpec],
) -> Result<JoinGroupingSets> {
    // Push down: each request becomes s ∪ {fact keys} over the fact.
    let mut universe: Vec<&str> = Vec::new();
    for dim in dims {
        if !universe.contains(&dim.fact_key.as_str()) {
            universe.push(&dim.fact_key);
        }
    }
    for req in requests {
        for c in req {
            if !universe.contains(c) {
                universe.push(c);
            }
        }
    }
    let pushed: Vec<Vec<&str>> = requests
        .iter()
        .map(|req| {
            let mut v = req.clone();
            for dim in dims {
                if !v.contains(&dim.fact_key.as_str()) {
                    v.push(&dim.fact_key);
                }
            }
            v
        })
        .collect();
    let workload = Workload::new(base_name, base_table, &universe, &pushed)?
        .with_aggregates(aggregates.to_vec());

    // Optimize and execute the pushed-down Group Bys (work sharing!).
    let mut model = CardinalityCostModel::new(ExactSource::new(base_table));
    let (plan, _) = GbMqo::with_config(SearchConfig::pruned()).plan(&workload, &mut model)?;
    let report = run_plan(
        &plan,
        &workload,
        engine,
        None,
        &Default::default(),
        &mut Default::default(),
    )?;
    let mut metrics = report.metrics;

    let tag_of = |req: &Vec<&str>| req.join(",");
    let find_result = |pushed_req: &Vec<&str>| {
        report
            .results
            .iter()
            .find(|(s, _)| {
                let names = workload.col_names(*s);
                pushed_req.iter().all(|c| names.contains(c)) && names.len() == pushed_req.len()
            })
            .map(|(_, t)| t)
            .expect("result for pushed request")
    };

    // With no dimensions the pushed sets *are* the requests: nothing to
    // join, the per-set aggregates stream out directly.
    if dims.is_empty() {
        let results = requests
            .iter()
            .zip(&pushed)
            .map(|(req, p)| (tag_of(req), find_result(p).clone()))
            .collect();
        return Ok(JoinGroupingSets {
            results,
            tagged_union_rows: 0,
            metrics,
        });
    }

    // Tag + union-all (Figure 8's Union-All below the join).
    let mut tagged: Vec<(String, &Table)> = Vec::new();
    for (req, pushed_req) in requests.iter().zip(&pushed) {
        tagged.push((tag_of(req), find_result(pushed_req)));
    }
    let tagged_refs: Vec<(&str, &Table)> = tagged.iter().map(|(t, tb)| (t.as_str(), *tb)).collect();
    let union = union_all_tagged(&tagged_refs, "grp_tag", &mut metrics)?;
    let tagged_union_rows = union.num_rows();

    // One join per dimension (each a key join, so row counts only drop).
    let mut joined = union;
    for (dim, dim_table) in dims.iter().zip(dim_tables) {
        let left_key = joined
            .schema()
            .index_of(&dim.fact_key)
            .map_err(CoreError::Storage)?;
        let right_key = dim_table
            .schema()
            .index_of(&dim.dim_key)
            .map_err(CoreError::Storage)?;
        joined =
            gbmqo_exec::hash_join(&joined, dim_table, &[left_key], &[right_key], &mut metrics)?;
    }

    // Final per-set aggregation above the joins, filtered by Grp-Tag.
    // Each aggregate re-aggregates from its pushed-down partial.
    let final_aggs: Vec<AggSpec> = aggregates.iter().map(AggSpec::reaggregate).collect();
    let mut results = Vec::with_capacity(requests.len());
    for req in requests {
        let tag = tag_of(req);
        let relevant = filter(
            &joined,
            &Predicate::Eq("grp_tag".into(), Value::str(&tag)),
            &mut metrics,
        )?;
        let cols: Vec<usize> = req
            .iter()
            .map(|c| relevant.schema().index_of(c))
            .collect::<gbmqo_storage::Result<_>>()?;
        let out = hash_group_by(&relevant, &cols, &final_aggs, &mut metrics)?;
        results.push((tag, out));
    }

    Ok(JoinGroupingSets {
        results,
        tagged_union_rows,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Catalog, Column, DataType, Field, Schema, TableBuilder};

    fn setup() -> Engine {
        // R(a, b, c): fact rows; S(a, s): dimension keyed by a.
        let r_schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let r = Table::new(
            r_schema,
            vec![
                Column::from_i64((0..90).map(|i| i % 3).collect()),
                Column::from_i64((0..90).map(|i| i % 5).collect()),
                Column::from_i64((0..90).map(|i| i % 2).collect()),
            ],
        )
        .unwrap();
        let s_schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        let mut sb = TableBuilder::new(s_schema);
        for i in 0..3i64 {
            sb.push_row(&[Value::Int(i), Value::str(&format!("dim{i}"))])
                .unwrap();
        }
        let s = sb.finish().unwrap();
        let mut cat = Catalog::new();
        cat.register("r", r).unwrap();
        cat.register("s", s).unwrap();
        Engine::new(cat)
    }

    fn norm(t: &Table) -> Vec<(Vec<Value>, i64)> {
        let n = t.num_columns();
        let mut v: Vec<(Vec<Value>, i64)> = (0..t.num_rows())
            .map(|r| {
                (
                    (0..n - 1).map(|c| t.value(r, c)).collect(),
                    t.value(r, n - 1).as_int().unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn pushdown_matches_join_then_group() {
        let mut engine = setup();
        let out = grouping_sets_over_join(
            &mut engine,
            "r",
            "s",
            "a",
            &[vec!["b"], vec!["c"], vec!["b", "c"]],
        )
        .unwrap();
        assert_eq!(out.results.len(), 3);
        assert!(out.tagged_union_rows > 0);

        // Reference: join first, then group directly.
        let r = engine.catalog().table("r").unwrap().clone();
        let s = engine.catalog().table("s").unwrap().clone();
        let mut m = ExecMetrics::new();
        let joined = gbmqo_exec::hash_join(&r, &s, &[0], &[0], &mut m).unwrap();
        for (tag, table) in &out.results {
            let cols: Vec<usize> = tag
                .split(',')
                .map(|c| joined.schema().index_of(c).unwrap())
                .collect();
            let direct = hash_group_by(&joined, &cols, &[AggSpec::count()], &mut m).unwrap();
            // column order: pushed results group by request order; align by sorting
            assert_eq!(norm(table), norm(&direct), "grouping set {tag}");
        }
    }

    #[test]
    fn non_key_join_column_rejected() {
        let mut engine = setup();
        // use r as both sides: r.a is not unique
        let err = grouping_sets_over_join(&mut engine, "r", "r", "a", &[vec!["b"]]);
        assert!(matches!(err, Err(CoreError::InvalidWorkload(_))));
    }

    #[test]
    fn missing_tables_error() {
        let mut engine = setup();
        assert!(grouping_sets_over_join(&mut engine, "ghost", "s", "a", &[vec!["b"]]).is_err());
    }

    /// R(a, b, c) fact plus two keyed dimensions S(a, s) and D(b, d).
    fn star_setup() -> Engine {
        let mut engine = setup();
        let d_schema = Schema::new(vec![
            Field::new("b", DataType::Int64),
            Field::new("d", DataType::Utf8),
        ])
        .unwrap();
        let mut db = TableBuilder::new(d_schema);
        for i in 0..5i64 {
            db.push_row(&[Value::Int(i), Value::str(&format!("d{i}"))])
                .unwrap();
        }
        engine
            .catalog_mut()
            .register("d", db.finish().unwrap())
            .unwrap();
        engine
    }

    fn star_dims() -> Vec<StarDim> {
        vec![
            StarDim {
                table: "s".into(),
                fact_key: "a".into(),
                dim_key: "a".into(),
                filter: None,
            },
            StarDim {
                table: "d".into(),
                fact_key: "b".into(),
                dim_key: "b".into(),
                filter: None,
            },
        ]
    }

    #[test]
    fn two_dim_star_matches_join_then_group() {
        let mut engine = star_setup();
        let out = grouping_sets_over_star(
            &mut engine,
            "r",
            &star_dims(),
            &[vec!["c"], vec!["a", "c"]],
            None,
            &[AggSpec::count()],
        )
        .unwrap();
        assert_eq!(out.results.len(), 2);

        // Reference: join both dims first, then group directly.
        let r = engine.catalog().table("r").unwrap().clone();
        let s = engine.catalog().table("s").unwrap().clone();
        let d = engine.catalog().table("d").unwrap().clone();
        let mut m = ExecMetrics::new();
        let j1 = gbmqo_exec::hash_join(&r, &s, &[0], &[0], &mut m).unwrap();
        let bk = j1.schema().index_of("b").unwrap();
        let joined = gbmqo_exec::hash_join(&j1, &d, &[bk], &[0], &mut m).unwrap();
        for (tag, table) in &out.results {
            let cols: Vec<usize> = tag
                .split(',')
                .map(|c| joined.schema().index_of(c).unwrap())
                .collect();
            let direct = hash_group_by(&joined, &cols, &[AggSpec::count()], &mut m).unwrap();
            assert_eq!(norm(table), norm(&direct), "grouping set {tag}");
        }
    }

    #[test]
    fn fact_filter_pushes_below_the_joins() {
        let mut engine = star_setup();
        let pred = Predicate::Eq("c".into(), Value::Int(1));
        let out = grouping_sets_over_star(
            &mut engine,
            "r",
            &star_dims(),
            &[vec!["b"]],
            Some(&pred),
            &[AggSpec::count()],
        )
        .unwrap();

        // Reference: filter, join, group.
        let r = engine.catalog().table("r").unwrap().clone();
        let s = engine.catalog().table("s").unwrap().clone();
        let d = engine.catalog().table("d").unwrap().clone();
        let mut m = ExecMetrics::new();
        let filtered = filter(&r, &pred, &mut m).unwrap();
        let j1 = gbmqo_exec::hash_join(&filtered, &s, &[0], &[0], &mut m).unwrap();
        let bk = j1.schema().index_of("b").unwrap();
        let joined = gbmqo_exec::hash_join(&j1, &d, &[bk], &[0], &mut m).unwrap();
        let direct = hash_group_by(&joined, &[bk], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(norm(&out.results[0].1), norm(&direct));
        // The scratch temp is cleaned up.
        assert!(engine.catalog().table(super::FILTERED_BASE_TEMP).is_err());
    }

    #[test]
    fn dim_filter_applies_before_the_join() {
        let mut engine = star_setup();
        let dims = vec![StarDim {
            table: "s".into(),
            fact_key: "a".into(),
            dim_key: "a".into(),
            filter: Some(Predicate::Eq("s".into(), Value::str("dim1"))),
        }];
        let out = grouping_sets_over_star(
            &mut engine,
            "r",
            &dims,
            &[vec!["b"]],
            None,
            &[AggSpec::count()],
        )
        .unwrap();
        // Only fact rows with a = 1 survive the keyed inner join: 30 of
        // 90 rows, spread over the 5 values of b.
        let total: i64 = (0..out.results[0].1.num_rows())
            .map(|r| out.results[0].1.value(r, 1).as_int().unwrap())
            .sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn zero_dims_is_plain_grouping_sets_with_filter() {
        let mut engine = star_setup();
        let pred = Predicate::Ge("c".into(), Value::Int(1));
        let out = grouping_sets_over_star(
            &mut engine,
            "r",
            &[],
            &[vec!["a"], vec!["a", "b"]],
            Some(&pred),
            &[AggSpec::count()],
        )
        .unwrap();
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.tagged_union_rows, 0);
        let r = engine.catalog().table("r").unwrap().clone();
        let mut m = ExecMetrics::new();
        let filtered = filter(&r, &pred, &mut m).unwrap();
        let direct = hash_group_by(&filtered, &[0], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(norm(&out.results[0].1), norm(&direct));
    }
}
