//! Error type for the GB-MQO optimizer.

use std::fmt;

/// Errors produced by the optimizer and plan executor.
///
/// Every sub-crate error converts into this type, so
/// [`crate::prelude::Result`] is the single result type a caller of the
/// public API needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A storage-layer error.
    Storage(gbmqo_storage::StorageError),
    /// An execution-engine error.
    Exec(gbmqo_exec::ExecError),
    /// A statistics-subsystem error.
    Stats(gbmqo_stats::StatsError),
    /// A cost-model error.
    Cost(gbmqo_cost::CostError),
    /// A malformed workload.
    InvalidWorkload(String),
    /// A malformed or unsupported plan.
    InvalidPlan(String),
    /// The exhaustive search was asked for an unsupported instance.
    Unsupported(String),
    /// A session was configured inconsistently.
    InvalidSession(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Exec(e) => write!(f, "execution error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Cost(e) => write!(f, "cost-model error: {e}"),
            CoreError::InvalidWorkload(m) => write!(f, "invalid workload: {m}"),
            CoreError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::InvalidSession(m) => write!(f, "invalid session: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Exec(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Cost(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gbmqo_storage::StorageError> for CoreError {
    fn from(e: gbmqo_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<gbmqo_exec::ExecError> for CoreError {
    fn from(e: gbmqo_exec::ExecError) -> Self {
        CoreError::Exec(e)
    }
}

impl From<gbmqo_stats::StatsError> for CoreError {
    fn from(e: gbmqo_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<gbmqo_cost::CostError> for CoreError {
    fn from(e: gbmqo_cost::CostError) -> Self {
        CoreError::Cost(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = gbmqo_storage::StorageError::TableNotFound("x".into()).into();
        assert!(e.to_string().contains("table not found"));
        let e: CoreError = gbmqo_exec::ExecError::Invalid("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        assert!(CoreError::InvalidPlan("p".into())
            .to_string()
            .contains("invalid plan"));
    }
}
