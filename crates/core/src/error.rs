//! Error type for the GB-MQO optimizer.

use std::fmt;

/// Errors produced by the optimizer and plan executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A storage-layer error.
    Storage(gbmqo_storage::StorageError),
    /// An execution-engine error.
    Exec(gbmqo_exec::ExecError),
    /// A malformed workload.
    InvalidWorkload(String),
    /// A malformed or unsupported plan.
    InvalidPlan(String),
    /// The exhaustive search was asked for an unsupported instance.
    Unsupported(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Exec(e) => write!(f, "execution error: {e}"),
            CoreError::InvalidWorkload(m) => write!(f, "invalid workload: {m}"),
            CoreError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<gbmqo_storage::StorageError> for CoreError {
    fn from(e: gbmqo_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<gbmqo_exec::ExecError> for CoreError {
    fn from(e: gbmqo_exec::ExecError) -> Self {
        CoreError::Exec(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = gbmqo_storage::StorageError::TableNotFound("x".into()).into();
        assert!(e.to_string().contains("table not found"));
        let e: CoreError = gbmqo_exec::ExecError::Invalid("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        assert!(CoreError::InvalidPlan("p".into())
            .to_string()
            .contains("invalid plan"));
    }
}
