//! Workload plan cache: skip the O(n²)-per-round merge search when the
//! same GROUPING SETS request comes back.
//!
//! A serving system sees the same analytic workloads again and again
//! (dashboards re-issuing the same CUBE, report suites re-running the
//! same batch of Group Bys). The search of §4.2 is cheap next to
//! execution but not free — it issues one cost-model ("query optimizer")
//! call per candidate edge — so [`PlanCache`] memoizes finished plans
//! under a canonical [`WorkloadFingerprint`]. A hit returns the plan
//! with zero optimizer calls and [`SearchStats::cache_hit`] set.
//!
//! The fingerprint covers everything the search result depends on:
//!
//! * the base table name and its column universe (in order — column
//!   sets are bitmasks over it),
//! * the requested column sets, sorted (request order cannot change
//!   which plans are valid, so it must not change the key),
//! * the aggregate list,
//! * the [`SearchConfig`] (pruning flags change the search trajectory),
//! * a caller-supplied *statistics version* and *cost-model tag*, so
//!   plans are invalidated when the stats or the model they were
//!   optimized under change,
//! * the base table's catalog *contents version*, so replacing or
//!   appending to a table can never reuse a plan optimized for (and
//!   estimated against) the old data.

use crate::executor::GroupEstimates;
use crate::greedy::{SearchConfig, SearchStats};
use crate::plan::LogicalPlan;
use crate::workload::Workload;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};

/// Canonical identity of a (workload, configuration, statistics) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadFingerprint(u64);

impl WorkloadFingerprint {
    /// Compute the fingerprint of `workload` optimized under `config`
    /// with statistics at `stats_version`, the cost model identified
    /// by `cost_model_tag`, and the base table's contents at catalog
    /// version `table_version`.
    pub fn compute(
        workload: &Workload,
        config: &SearchConfig,
        stats_version: u64,
        cost_model_tag: u64,
        table_version: u64,
    ) -> Self {
        let mut h = rustc_hash::FxHasher::default();
        workload.table.hash(&mut h);
        // The column universe in order: ColSet bits index into it.
        workload.column_names.hash(&mut h);
        workload.base_ordinals.hash(&mut h);
        // Requests normalized by sorting — {a}, {b} and {b}, {a} are the
        // same GROUPING SETS.
        let mut requests: Vec<u128> = workload.requests.iter().map(|s| s.0).collect();
        requests.sort_unstable();
        requests.hash(&mut h);
        for agg in &workload.aggregates {
            format!("{agg:?}").hash(&mut h);
        }
        config.binary_only.hash(&mut h);
        config.subsumption_pruning.hash(&mut h);
        config.monotonicity_pruning.hash(&mut h);
        config.cube_rollup_merges.hash(&mut h);
        config.benefit_greedy.hash(&mut h);
        config.max_intermediate_bytes.map(f64::to_bits).hash(&mut h);
        config.epsilon.to_bits().hash(&mut h);
        stats_version.hash(&mut h);
        cost_model_tag.hash(&mut h);
        table_version.hash(&mut h);
        WorkloadFingerprint(h.finish())
    }

    /// The raw 64-bit key.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// Hit/miss/eviction counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

struct CachedPlan {
    plan: LogicalPlan,
    stats: SearchStats,
    /// Optimizer distinct-group estimates per plan node, cached alongside
    /// the plan so a hit skips the cost-model calls too.
    estimates: GroupEstimates,
}

/// An LRU cache of optimized plans keyed by [`WorkloadFingerprint`].
///
/// Capacity 0 disables caching (every lookup is a miss and inserts are
/// dropped), so a `PlanCache` can be carried unconditionally.
pub struct PlanCache {
    capacity: usize,
    map: FxHashMap<u64, CachedPlan>,
    /// Keys from least- to most-recently used.
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// A cache holding up to `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            map: FxHashMap::default(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a plan. A hit refreshes the entry's recency and returns
    /// the cached plan and its per-node group estimates, with the search
    /// stats rewritten to report the skip: `cache_hit = true`,
    /// `optimizer_calls = 0` (no cost-model call is made on a hit).
    pub fn get(
        &mut self,
        key: WorkloadFingerprint,
    ) -> Option<(LogicalPlan, SearchStats, GroupEstimates)> {
        match self.map.get(&key.0) {
            Some(entry) => {
                let hit = (
                    entry.plan.clone(),
                    SearchStats {
                        optimizer_calls: 0,
                        cache_hit: true,
                        ..entry.stats
                    },
                    entry.estimates.clone(),
                );
                self.hits += 1;
                self.touch(key.0);
                Some(hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Cache `plan` under `key`, evicting the least-recently-used entry
    /// if the cache is full. No-op at capacity 0.
    pub fn insert(
        &mut self,
        key: WorkloadFingerprint,
        plan: LogicalPlan,
        stats: SearchStats,
        estimates: GroupEstimates,
    ) {
        if self.capacity == 0 {
            return;
        }
        if self
            .map
            .insert(
                key.0,
                CachedPlan {
                    plan,
                    stats,
                    estimates,
                },
            )
            .is_some()
        {
            self.touch(key.0);
            return;
        }
        self.order.push_back(key.0);
        if self.map.len() > self.capacity {
            if let Some(lru) = self.order.pop_front() {
                self.map.remove(&lru);
                self.evictions += 1;
            }
        }
    }

    /// Drop the entry cached under `key`, if any, so the next lookup
    /// misses and re-runs the search. This is the adaptive feedback
    /// loop's re-optimization hook: when execution-corrected estimates
    /// shift a cached plan's cost past the session's threshold, the
    /// entry is invalidated rather than served stale. Returns true when
    /// an entry was removed.
    pub fn invalidate(&mut self, key: WorkloadFingerprint) -> bool {
        if self.map.remove(&key.0).is_some() {
            if let Some(pos) = self.order.iter().position(|&k| k == key.0) {
                self.order.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Drop all entries (the counters survive; `entries` resets).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SubNode;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64((0..10).collect()),
                Column::from_i64((0..10).map(|i| i % 2).collect()),
            ],
        )
        .unwrap()
    }

    fn workload(requests: &[Vec<&str>]) -> Workload {
        Workload::new("r", &table(), &["a", "b"], requests).unwrap()
    }

    fn plan_of(w: &Workload) -> LogicalPlan {
        LogicalPlan {
            subplans: w.requests.iter().map(|&c| SubNode::leaf(c)).collect(),
        }
    }

    fn key_of(w: &Workload) -> WorkloadFingerprint {
        WorkloadFingerprint::compute(w, &SearchConfig::default(), 0, 0, 0)
    }

    #[test]
    fn fingerprint_is_stable_and_order_insensitive() {
        let w1 = workload(&[vec!["a"], vec!["b"]]);
        let w2 = workload(&[vec!["b"], vec!["a"]]);
        assert_eq!(key_of(&w1), key_of(&w1), "same input, same key");
        assert_eq!(
            key_of(&w1),
            key_of(&w2),
            "request order must not change the key"
        );
    }

    #[test]
    fn fingerprint_distinguishes_inputs() {
        let w = workload(&[vec!["a"], vec!["b"]]);
        let base = key_of(&w);
        let other = workload(&[vec!["a"], vec!["a", "b"]]);
        assert_ne!(base, key_of(&other), "different requests");
        assert_ne!(
            base,
            WorkloadFingerprint::compute(&w, &SearchConfig::pruned(), 0, 0, 0),
            "different search config"
        );
        assert_ne!(
            base,
            WorkloadFingerprint::compute(&w, &SearchConfig::default(), 1, 0, 0),
            "different stats version"
        );
        assert_ne!(
            base,
            WorkloadFingerprint::compute(&w, &SearchConfig::default(), 0, 1, 0),
            "different cost model"
        );
        assert_ne!(
            base,
            WorkloadFingerprint::compute(&w, &SearchConfig::default(), 0, 0, 1),
            "different table version: a replaced table must miss"
        );
    }

    #[test]
    fn hit_miss_counters_and_stats_rewrite() {
        let w = workload(&[vec!["a"]]);
        let mut cache = PlanCache::new(4);
        let key = key_of(&w);
        assert!(cache.get(key).is_none());
        let stats = SearchStats {
            optimizer_calls: 17,
            rounds: 2,
            ..Default::default()
        };
        cache.insert(key, plan_of(&w), stats, Default::default());
        let (plan, hit_stats, _) = cache.get(key).unwrap();
        assert_eq!(plan.subplans.len(), 1);
        assert!(hit_stats.cache_hit);
        assert_eq!(
            hit_stats.optimizer_calls, 0,
            "a hit makes no optimizer calls"
        );
        assert_eq!(hit_stats.rounds, 2, "other stats are preserved");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let workloads: Vec<Workload> = vec![
            workload(&[vec!["a"]]),
            workload(&[vec!["b"]]),
            workload(&[vec!["a", "b"]]),
        ];
        let keys: Vec<WorkloadFingerprint> = workloads.iter().map(key_of).collect();
        let mut cache = PlanCache::new(2);
        cache.insert(
            keys[0],
            plan_of(&workloads[0]),
            SearchStats::default(),
            Default::default(),
        );
        cache.insert(
            keys[1],
            plan_of(&workloads[1]),
            SearchStats::default(),
            Default::default(),
        );
        // touch key 0 so key 1 becomes the LRU
        assert!(cache.get(keys[0]).is_some());
        cache.insert(
            keys[2],
            plan_of(&workloads[2]),
            SearchStats::default(),
            Default::default(),
        );
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(keys[1]).is_none(), "LRU entry was evicted");
        assert!(cache.get(keys[0]).is_some());
        assert!(cache.get(keys[2]).is_some());
    }

    #[test]
    fn fingerprint_covers_merge_variant_flags() {
        let w = workload(&[vec!["a"], vec!["b"]]);
        let base = key_of(&w);
        assert_ne!(
            base,
            WorkloadFingerprint::compute(
                &w,
                &SearchConfig {
                    cube_rollup_merges: true,
                    ..Default::default()
                },
                0,
                0,
                0
            ),
            "cube/rollup merge alternatives change the search trajectory"
        );
        assert_ne!(
            base,
            WorkloadFingerprint::compute(
                &w,
                &SearchConfig {
                    benefit_greedy: true,
                    ..Default::default()
                },
                0,
                0,
                0
            ),
            "benefit-greedy ordering changes the search trajectory"
        );
    }

    #[test]
    fn invalidate_forces_reoptimization() {
        let w = workload(&[vec!["a"]]);
        let mut cache = PlanCache::new(4);
        let key = key_of(&w);
        assert!(!cache.invalidate(key), "nothing cached yet");
        cache.insert(key, plan_of(&w), SearchStats::default(), Default::default());
        assert!(cache.invalidate(key));
        assert!(cache.get(key).is_none(), "invalidated entry must miss");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let w = workload(&[vec!["a"]]);
        let mut cache = PlanCache::new(0);
        cache.insert(
            key_of(&w),
            plan_of(&w),
            SearchStats::default(),
            Default::default(),
        );
        assert!(cache.get(key_of(&w)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_empties_the_cache() {
        let w = workload(&[vec!["a"]]);
        let mut cache = PlanCache::new(2);
        cache.insert(
            key_of(&w),
            plan_of(&w),
            SearchStats::default(),
            Default::default(),
        );
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(key_of(&w)).is_none());
    }
}
