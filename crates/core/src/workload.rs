//! Workloads: the input `S = {s1..sn}` of the GB-MQO problem (§3.3).

use crate::colset::ColSet;
use crate::error::{CoreError, Result};
use gbmqo_exec::AggSpec;
use gbmqo_storage::Table;

/// A GB-MQO problem instance: a base relation, the universe of columns the
/// requests draw from, and the requested Group By queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Catalog name of the base relation `R`.
    pub table: String,
    /// Universe column names; bit `i` of every [`ColSet`] refers to
    /// `column_names[i]`.
    pub column_names: Vec<String>,
    /// Base-table schema ordinal for each universe column.
    pub base_ordinals: Vec<usize>,
    /// The requested Group By queries (deduplicated, non-empty).
    pub requests: Vec<ColSet>,
    /// Aggregates every query computes (§7.2 extension; the paper's core
    /// setting is a single `COUNT(*)`). Merged nodes carry the union of
    /// aggregates so every descendant can be re-aggregated from them.
    pub aggregates: Vec<AggSpec>,
}

impl Workload {
    /// Build a workload with explicit requests, given as lists of column
    /// names drawn from `universe`.
    pub fn new(
        table_name: &str,
        table: &Table,
        universe: &[&str],
        requests: &[Vec<&str>],
    ) -> Result<Self> {
        let base_ordinals = universe
            .iter()
            .map(|n| table.schema().index_of(n))
            .collect::<gbmqo_storage::Result<Vec<_>>>()
            .map_err(CoreError::Storage)?;
        let column_names: Vec<String> = universe.iter().map(|s| s.to_string()).collect();
        let mut sets: Vec<ColSet> = Vec::new();
        for req in requests {
            if req.is_empty() {
                return Err(CoreError::InvalidWorkload(
                    "empty grouping set requested".to_string(),
                ));
            }
            let mut s = ColSet::EMPTY;
            for name in req {
                let bit = column_names.iter().position(|n| n == name).ok_or_else(|| {
                    CoreError::InvalidWorkload(format!(
                        "requested column {name} not in the workload universe"
                    ))
                })?;
                s = s.insert(bit);
            }
            if !sets.contains(&s) {
                sets.push(s);
            }
        }
        if sets.is_empty() {
            return Err(CoreError::InvalidWorkload("no queries requested".into()));
        }
        Ok(Workload {
            table: table_name.to_string(),
            column_names,
            base_ordinals,
            requests: sets,
            aggregates: vec![AggSpec::count()],
        })
    }

    /// The paper's SC workload: one single-column Group By per universe
    /// column.
    pub fn single_columns(table_name: &str, table: &Table, universe: &[&str]) -> Result<Self> {
        let requests: Vec<Vec<&str>> = universe.iter().map(|c| vec![*c]).collect();
        Workload::new(table_name, table, universe, &requests)
    }

    /// The paper's TC workload: one Group By per unordered pair of
    /// universe columns.
    pub fn two_columns(table_name: &str, table: &Table, universe: &[&str]) -> Result<Self> {
        let mut requests: Vec<Vec<&str>> = Vec::new();
        for i in 0..universe.len() {
            for j in i + 1..universe.len() {
                requests.push(vec![universe[i], universe[j]]);
            }
        }
        Workload::new(table_name, table, universe, &requests)
    }

    /// The Combi-operator workload (the syntactic extension of the
    /// paper's related work \[15\] that it calls "useful for the kinds of
    /// data analysis scenarios presented in this paper"): **all** subsets
    /// of the universe of size 1..=`k`.
    pub fn up_to_k_columns(
        table_name: &str,
        table: &Table,
        universe: &[&str],
        k: usize,
    ) -> Result<Self> {
        if k == 0 || k > universe.len() {
            return Err(CoreError::InvalidWorkload(format!(
                "subset size {k} out of range 1..={}",
                universe.len()
            )));
        }
        if universe.len() > 20 {
            return Err(CoreError::InvalidWorkload(
                "combi workloads over more than 20 columns are intractable".to_string(),
            ));
        }
        let mut requests: Vec<Vec<&str>> = Vec::new();
        let n = universe.len();
        for mask in 1u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size <= k {
                requests.push(
                    (0..n)
                        .filter(|b| mask >> b & 1 == 1)
                        .map(|b| universe[b])
                        .collect(),
                );
            }
        }
        Workload::new(table_name, table, universe, &requests)
    }

    /// Replace the aggregate list (§7.2).
    pub fn with_aggregates(mut self, aggregates: Vec<AggSpec>) -> Self {
        self.aggregates = aggregates;
        self
    }

    /// Number of requested queries.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if there are no requests (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Map a column set to base-table schema ordinals (ascending bit
    /// order).
    pub fn base_cols(&self, set: ColSet) -> Vec<usize> {
        set.iter().map(|b| self.base_ordinals[b]).collect()
    }

    /// Map a column set to universe column names.
    pub fn col_names(&self, set: ColSet) -> Vec<&str> {
        set.iter().map(|b| self.column_names[b].as_str()).collect()
    }

    /// True if all requests are pairwise disjoint (the common
    /// data-analysis case the paper highlights, e.g. SC workloads).
    pub fn is_non_overlapping(&self) -> bool {
        for i in 0..self.requests.len() {
            for j in i + 1..self.requests.len() {
                if !self.requests[i].is_disjoint(self.requests[j]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64(vec![1]),
                Column::from_i64(vec![2]),
                Column::from_i64(vec![3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn explicit_requests_resolve_and_dedup() {
        let t = table();
        let w = Workload::new(
            "r",
            &t,
            &["a", "b", "c"],
            &[vec!["a"], vec!["b", "a"], vec!["a", "b"], vec!["c"]],
        )
        .unwrap();
        assert_eq!(w.len(), 3); // (a), (a,b), (c)
        assert_eq!(w.col_names(w.requests[1]), vec!["a", "b"]);
        assert_eq!(w.base_cols(w.requests[2]), vec![2]);
    }

    #[test]
    fn sc_and_tc_builders() {
        let t = table();
        let sc = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        assert_eq!(sc.len(), 3);
        assert!(sc.is_non_overlapping());
        let tc = Workload::two_columns("r", &t, &["a", "b", "c"]).unwrap();
        assert_eq!(tc.len(), 3); // ab, ac, bc
        assert!(!tc.is_non_overlapping());
    }

    #[test]
    fn universe_subset_of_table() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["c", "a"]).unwrap();
        // bit 0 = c → base ordinal 2
        assert_eq!(w.base_cols(ColSet::single(0)), vec![2]);
    }

    #[test]
    fn combi_builder_enumerates_subsets() {
        let t = table();
        let w = Workload::up_to_k_columns("r", &t, &["a", "b", "c"], 2).unwrap();
        // C(3,1) + C(3,2) = 3 + 3
        assert_eq!(w.len(), 6);
        let w = Workload::up_to_k_columns("r", &t, &["a", "b", "c"], 3).unwrap();
        assert_eq!(w.len(), 7);
        assert!(Workload::up_to_k_columns("r", &t, &["a"], 0).is_err());
        assert!(Workload::up_to_k_columns("r", &t, &["a"], 2).is_err());
    }

    #[test]
    fn errors_on_bad_input() {
        let t = table();
        assert!(Workload::new("r", &t, &["a"], &[vec![]]).is_err());
        assert!(Workload::new("r", &t, &["a"], &[vec!["zz"]]).is_err());
        assert!(Workload::new("r", &t, &["zz"], &[vec!["zz"]]).is_err());
        assert!(Workload::new("r", &t, &["a"], &[]).is_err());
    }
}
