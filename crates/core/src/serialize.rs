//! A compact, dependency-free text format for logical plans, so
//! applications can persist an optimized plan and replay it later
//! (e.g. the nightly data-quality job re-runs yesterday's plan without
//! re-optimizing).
//!
//! Format: one node per line, `<depth> <kind> <required> <colset-hex>`,
//! pre-order; a header line carries the format version.
//!
//! ```
//! use gbmqo_core::plan::{LogicalPlan, SubNode};
//! use gbmqo_core::ColSet;
//!
//! let plan = LogicalPlan {
//!     subplans: vec![SubNode::internal(
//!         ColSet::from_cols([0, 1]),
//!         vec![SubNode::leaf(ColSet::single(0)), SubNode::leaf(ColSet::single(1))],
//!     )],
//! };
//! let text = gbmqo_core::serialize::plan_to_text(&plan);
//! let back = gbmqo_core::serialize::plan_from_text(&text).unwrap();
//! assert_eq!(plan, back);
//! ```

use crate::colset::ColSet;
use crate::error::{CoreError, Result};
use crate::plan::{LogicalPlan, NodeKind, SubNode};
use std::fmt::Write as _;

const HEADER: &str = "gbmqo-plan v1";

/// Serialize a plan to the compact text format.
pub fn plan_to_text(plan: &LogicalPlan) -> String {
    fn emit(n: &SubNode, depth: usize, out: &mut String) {
        let kind = match n.kind {
            NodeKind::GroupBy => "g",
            NodeKind::Rollup => "r",
            NodeKind::Cube => "c",
        };
        let _ = writeln!(
            out,
            "{depth} {kind} {} {:x}",
            u8::from(n.required),
            n.cols.0
        );
        for c in &n.children {
            emit(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    for sp in &plan.subplans {
        emit(sp, 0, &mut out);
    }
    out
}

/// Parse a plan from the compact text format.
pub fn plan_from_text(text: &str) -> Result<LogicalPlan> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    match lines.next() {
        Some(h) if h.trim() == HEADER => {}
        other => {
            return Err(CoreError::InvalidPlan(format!(
                "bad plan header: {other:?} (expected {HEADER:?})"
            )))
        }
    }

    struct Parsed {
        depth: usize,
        node: SubNode,
    }
    let mut flat: Vec<Parsed> = Vec::new();
    for (i, line) in lines.enumerate() {
        let mut parts = line.split_whitespace();
        let (depth, kind, required, cols) =
            (parts.next(), parts.next(), parts.next(), parts.next());
        let (Some(depth), Some(kind), Some(required), Some(cols), None) =
            (depth, kind, required, cols, parts.next())
        else {
            return Err(CoreError::InvalidPlan(format!(
                "line {}: expected `<depth> <kind> <required> <colset>`",
                i + 2
            )));
        };
        let depth: usize = depth
            .parse()
            .map_err(|e| CoreError::InvalidPlan(format!("line {}: depth: {e}", i + 2)))?;
        let kind = match kind {
            "g" => NodeKind::GroupBy,
            "r" => NodeKind::Rollup,
            "c" => NodeKind::Cube,
            other => {
                return Err(CoreError::InvalidPlan(format!(
                    "line {}: unknown node kind {other:?}",
                    i + 2
                )))
            }
        };
        let required = match required {
            "0" => false,
            "1" => true,
            other => {
                return Err(CoreError::InvalidPlan(format!(
                    "line {}: required flag {other:?}",
                    i + 2
                )))
            }
        };
        let cols = u128::from_str_radix(cols, 16)
            .map_err(|e| CoreError::InvalidPlan(format!("line {}: colset: {e}", i + 2)))?;
        flat.push(Parsed {
            depth,
            node: SubNode {
                cols: ColSet(cols),
                required,
                kind,
                children: Vec::new(),
            },
        });
    }

    // Rebuild the forest from the pre-order depth sequence.
    let mut plan = LogicalPlan {
        subplans: Vec::new(),
    };
    // stack of (depth, path index within the tree being built)
    let mut stack: Vec<usize> = Vec::new(); // depths currently open
    let mut paths: Vec<Vec<usize>> = Vec::new(); // child-index path per open depth
    for p in flat {
        if p.depth > stack.len() {
            return Err(CoreError::InvalidPlan(format!(
                "node at depth {} follows depth {}",
                p.depth,
                stack.len().saturating_sub(1)
            )));
        }
        stack.truncate(p.depth);
        paths.truncate(p.depth);
        if p.depth == 0 {
            plan.subplans.push(p.node);
            stack.push(0);
            paths.push(vec![plan.subplans.len() - 1]);
        } else {
            // walk to the parent via the recorded path
            let path = paths[p.depth - 1].clone();
            let mut node: &mut SubNode = &mut plan.subplans[path[0]];
            for &ix in &path[1..] {
                node = &mut node.children[ix];
            }
            node.children.push(p.node);
            let mut child_path = path;
            child_path.push(node.children.len() - 1);
            stack.push(p.depth);
            paths.push(child_path);
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> LogicalPlan {
        LogicalPlan {
            subplans: vec![
                SubNode {
                    cols: ColSet::from_cols([0, 1, 2]),
                    required: true,
                    kind: NodeKind::GroupBy,
                    children: vec![
                        SubNode::internal(
                            ColSet::from_cols([0, 1]),
                            vec![SubNode::leaf(ColSet::single(0))],
                        ),
                        SubNode::leaf(ColSet::single(2)),
                    ],
                },
                SubNode {
                    cols: ColSet::from_cols([3, 4]),
                    required: false,
                    kind: NodeKind::Rollup,
                    children: vec![SubNode::leaf(ColSet::single(3))],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let plan = sample_plan();
        let text = plan_to_text(&plan);
        let back = plan_from_text(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(plan_from_text("").is_err());
        assert!(plan_from_text("wrong header\n0 g 1 1\n").is_err());
        for bad_line in [
            "0 g 1",    // missing colset
            "0 x 1 1",  // bad kind
            "0 g 2 1",  // bad required
            "0 g 1 zz", // bad hex
            "2 g 1 1",  // depth jump
            "0 g 1 1 extra",
        ] {
            let text = format!("gbmqo-plan v1\n{bad_line}\n");
            assert!(plan_from_text(&text).is_err(), "{bad_line:?}");
        }
    }

    #[test]
    fn empty_plan_roundtrips() {
        let plan = LogicalPlan { subplans: vec![] };
        assert_eq!(plan_from_text(&plan_to_text(&plan)).unwrap(), plan);
    }

    #[test]
    fn deep_chains_roundtrip() {
        // R → (0..4) → (0..3) → (0..2) → (0,1) → (0)
        let mut node = SubNode::leaf(ColSet::single(0));
        for d in 1..5usize {
            node = SubNode::internal(ColSet::from_cols(0..=d), vec![node]);
        }
        let plan = LogicalPlan {
            subplans: vec![node],
        };
        assert_eq!(plan_from_text(&plan_to_text(&plan)).unwrap(), plan);
    }
}
