//! Cached edge costing over a [`CostModel`].
//!
//! §4.2's running-time analysis relies on storing previously computed
//! sub-plan costs so the greedy search issues only `O(n²)` optimizer
//! calls. This cache is that memo: each distinct plan edge
//! `(source, target, materialize)` is priced by the underlying model at
//! most once; the model's own call counter therefore reports the paper's
//! "number of calls to the query optimizer" metric.

use crate::colset::ColSet;
use gbmqo_cost::{CostModel, CostNode, EdgeQuery};
use rustc_hash::FxHashMap;

/// A memoizing wrapper around a cost model, translating [`ColSet`]s to
/// base-table ordinals.
pub struct EdgeCoster<'m> {
    model: &'m mut dyn CostModel,
    /// Universe bit → base-table ordinal.
    base_ordinals: Vec<usize>,
    edge_cache: FxHashMap<(u128, u128, bool), f64>,
    card_cache: FxHashMap<u128, f64>,
    bytes_cache: FxHashMap<u128, f64>,
}

impl<'m> EdgeCoster<'m> {
    /// Wrap `model`; `base_ordinals` maps universe bits to base-table
    /// schema ordinals (see [`crate::workload::Workload::base_ordinals`]).
    pub fn new(model: &'m mut dyn CostModel, base_ordinals: Vec<usize>) -> Self {
        EdgeCoster {
            model,
            base_ordinals,
            edge_cache: FxHashMap::default(),
            card_cache: FxHashMap::default(),
            bytes_cache: FxHashMap::default(),
        }
    }

    fn cols_of(&self, set: ColSet) -> Vec<usize> {
        set.iter().map(|b| self.base_ordinals[b]).collect()
    }

    /// Cost of computing the Group By on `target` from `source`
    /// (`None` = the base relation), optionally materializing.
    pub fn edge(&mut self, source: Option<ColSet>, target: ColSet, materialize: bool) -> f64 {
        let key = (source.map_or(u128::MAX, |s| s.0), target.0, materialize);
        if let Some(&c) = self.edge_cache.get(&key) {
            return c;
        }
        let target_cols = self.cols_of(target);
        let source_cols = source.map(|s| self.cols_of(s));
        let q = EdgeQuery {
            source: match &source_cols {
                None => CostNode::Base,
                Some(cols) => CostNode::GroupBy(cols),
            },
            target_cols: &target_cols,
            materialize,
        };
        let c = self.model.edge_cost(&q);
        self.edge_cache.insert(key, c);
        c
    }

    /// Estimated result rows of the Group By on `set`.
    pub fn cardinality(&mut self, set: ColSet) -> f64 {
        if let Some(&c) = self.card_cache.get(&set.0) {
            return c;
        }
        let cols = self.cols_of(set);
        let c = self.model.cardinality(&cols);
        self.card_cache.insert(set.0, c);
        c
    }

    /// Estimated materialized bytes of the Group By on `set`.
    pub fn result_bytes(&mut self, set: ColSet) -> f64 {
        if let Some(&b) = self.bytes_cache.get(&set.0) {
            return b;
        }
        let cols = self.cols_of(set);
        let b = self.model.result_bytes(&cols);
        self.bytes_cache.insert(set.0, b);
        b
    }

    /// Rows of the base relation.
    pub fn base_rows(&self) -> f64 {
        self.model.base_rows()
    }

    /// Optimizer calls issued by the underlying model so far.
    pub fn model_calls(&self) -> u64 {
        self.model.calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_cost::CardinalityCostModel;
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64(vec![1, 1, 2, 3]),
                Column::from_i64(vec![0, 0, 0, 1]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn edges_are_cached() {
        let t = table();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let mut coster = EdgeCoster::new(&mut model, vec![0, 1]);
        let a = ColSet::single(0);
        let c1 = coster.edge(None, a, true);
        let c2 = coster.edge(None, a, true);
        assert_eq!(c1, 4.0);
        assert_eq!(c2, 4.0);
        assert_eq!(coster.model_calls(), 1, "second lookup must hit the cache");
        // different materialize flag is a different edge
        let _ = coster.edge(None, a, false);
        assert_eq!(coster.model_calls(), 2);
    }

    #[test]
    fn source_colsets_map_to_base_ordinals() {
        let t = table();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        // universe reversed: bit0 → base col 1 (b), bit1 → base col 0 (a)
        let mut coster = EdgeCoster::new(&mut model, vec![1, 0]);
        // cardinality of bit0 = column b = {0,1} → 2
        assert_eq!(coster.cardinality(ColSet::single(0)), 2.0);
        assert_eq!(coster.cardinality(ColSet::single(1)), 3.0);
        // edge from (bit1) to (bit1): source card = |a| = 3
        let c = coster.edge(Some(ColSet::single(1)), ColSet::single(1), false);
        assert_eq!(c, 3.0);
        assert_eq!(coster.base_rows(), 4.0);
        assert!(coster.result_bytes(ColSet::single(0)) > 0.0);
    }
}
