//! Column sets as 128-bit bitsets.
//!
//! Every node of the paper's Search DAG (§3.1) is identified by the set of
//! grouping columns. All subsumption tests in SubPlanMerge and the pruning
//! techniques (§4.3) reduce to bitwise operations on these sets. 128 bits
//! comfortably covers the paper's widest experiment (48 columns, §6.4).

use std::fmt;

/// A set of column ordinals (0..127) packed into a `u128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ColSet(pub u128);

/// The maximum column ordinal a [`ColSet`] can hold.
pub const MAX_COLUMNS: usize = 128;

impl ColSet {
    /// The empty set.
    pub const EMPTY: ColSet = ColSet(0);

    /// A singleton set.
    pub fn single(col: usize) -> Self {
        assert!(col < MAX_COLUMNS, "column ordinal {col} out of range");
        ColSet(1u128 << col)
    }

    /// Build from column ordinals.
    pub fn from_cols<I: IntoIterator<Item = usize>>(cols: I) -> Self {
        let mut s = ColSet::EMPTY;
        for c in cols {
            s = s.insert(c);
        }
        s
    }

    /// Set with `col` added.
    pub fn insert(self, col: usize) -> Self {
        assert!(col < MAX_COLUMNS, "column ordinal {col} out of range");
        ColSet(self.0 | (1u128 << col))
    }

    /// Union.
    pub fn union(self, other: ColSet) -> Self {
        ColSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: ColSet) -> Self {
        ColSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn difference(self, other: ColSet) -> Self {
        ColSet(self.0 & !other.0)
    }

    /// True if `col` is a member.
    pub fn contains(self, col: usize) -> bool {
        col < MAX_COLUMNS && (self.0 >> col) & 1 == 1
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(self, other: ColSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if `self ⊊ other`.
    pub fn is_strict_subset_of(self, other: ColSet) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// True if the sets share no columns.
    pub fn is_disjoint(self, other: ColSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of columns.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate member ordinals ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(c)
            }
        })
    }

    /// Member ordinals as a vector (ascending).
    pub fn to_vec(self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Render with column names, e.g. `(a, c)`.
    pub fn display<'a>(self, names: &'a [String]) -> ColSetDisplay<'a> {
        ColSetDisplay { set: self, names }
    }
}

impl FromIterator<usize> for ColSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        ColSet::from_cols(iter)
    }
}

/// Helper rendering a [`ColSet`] with names.
pub struct ColSetDisplay<'a> {
    set: ColSet,
    names: &'a [String],
}

impl fmt::Display for ColSetDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.names.get(c) {
                Some(n) => write!(f, "{n}")?,
                None => write!(f, "#{c}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = ColSet::from_cols([0, 3, 127]);
        assert!(s.contains(0) && s.contains(3) && s.contains(127));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 3, 127]);
        assert_eq!(ColSet::single(5), ColSet::from_cols([5]));
    }

    #[test]
    fn set_algebra() {
        let a = ColSet::from_cols([0, 1, 2]);
        let b = ColSet::from_cols([2, 3]);
        assert_eq!(a.union(b), ColSet::from_cols([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), ColSet::single(2));
        assert_eq!(a.difference(b), ColSet::from_cols([0, 1]));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(ColSet::from_cols([4, 5])));
    }

    #[test]
    fn subset_relations() {
        let a = ColSet::from_cols([1, 2]);
        let ab = ColSet::from_cols([1, 2, 3]);
        assert!(a.is_subset_of(ab));
        assert!(a.is_strict_subset_of(ab));
        assert!(a.is_subset_of(a));
        assert!(!a.is_strict_subset_of(a));
        assert!(!ab.is_subset_of(a));
        assert!(ColSet::EMPTY.is_subset_of(a));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_ordinal_panics() {
        ColSet::single(128);
    }

    #[test]
    fn display_with_names() {
        let names: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let s = ColSet::from_cols([0, 2]);
        assert_eq!(s.display(&names).to_string(), "(a, c)");
        assert_eq!(ColSet::EMPTY.display(&names).to_string(), "()");
        let oob = ColSet::single(5);
        assert_eq!(oob.display(&names).to_string(), "(#5)");
    }

    #[test]
    fn from_iterator() {
        let s: ColSet = [2usize, 2, 4].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
