//! High-level GROUPING SETS API: optimize + execute + assemble the
//! union-all result in one call (§5's two integration paths).
//!
//! A `GROUPING SETS` query returns one result set — the UNION ALL of its
//! member Group Bys, distinguishable by a `Grp-Tag` (§5.1.1). This module
//! provides that semantics on top of the optimizer:
//!
//! * [`ExecutionMode::ClientSide`] — §5.2: the plan runs as a sequence of
//!   separate SQL-like queries (`SELECT … INTO`, `SUM(cnt)`), exactly
//!   what an application can do against a stock DBMS.
//! * [`ExecutionMode::ServerSide`] — §5.1: the plan runs inside the
//!   engine, where queries that read the same table can share one scan
//!   (PipeHash-style; the paper: "when implemented inside the server our
//!   approach can also potentially benefit from shared sorts … even
//!   greater speedup").

use crate::colset::ColSet;
use crate::error::Result;
use crate::executor::{
    cleanup_exec_temps, exec_prefix, exec_temp_name, execute_plan_parallel_sharded,
    execute_plan_parallel_with, next_exec_id, run_plan, CacheHooks, GroupEstimates,
    ParallelOptions, ShardContext, WHOLE_TABLE_PIN,
};
use crate::greedy::SearchStats;
use crate::plan::{LogicalPlan, NodeKind, SubNode};
use crate::workload::Workload;
use gbmqo_exec::{union_all_tagged, AggSpec, Engine, ExecMetrics};
use gbmqo_storage::Table;

/// How the optimized plan is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One engine query per plan edge (§5.2).
    #[default]
    ClientSide,
    /// Shared scans across queries reading the same table (§5.1).
    ServerSide,
    /// Dependency-parallel waves: independent plan edges run
    /// concurrently on scoped threads
    /// (see [`crate::executor::execute_plan_parallel`]).
    Parallel,
}

/// The result of a GROUPING SETS execution.
#[derive(Debug)]
pub struct GroupingSetsResult {
    /// The UNION ALL of all member results, tagged by `grp_tag`
    /// (comma-joined column names of the member set).
    pub table: Table,
    /// The logical plan that was executed.
    pub plan: LogicalPlan,
    /// Search statistics.
    pub stats: SearchStats,
    /// Execution metrics.
    pub metrics: ExecMetrics,
}

impl GroupingSetsResult {
    /// Number of distinct grouping sets present in the union (the
    /// distinct `grp_tag` values).
    pub fn grouping_set_count(&self) -> usize {
        let Ok(tag_col) = self.table.schema().index_of("grp_tag") else {
            return 0;
        };
        let mut tags = std::collections::BTreeSet::new();
        for r in 0..self.table.num_rows() {
            if let Some(s) = self.table.value(r, tag_col).as_str() {
                tags.insert(s.to_string());
            }
        }
        tags.len()
    }
}

/// Execute an optimized plan under `mode` (the execution half of
/// [`crate::session::Session::grouping_sets`]). `estimates` carries the
/// optimizer's distinct-group counts per node (empty when no cost model
/// is available); the executors forward them to the engine's radix
/// kernel.
pub(crate) fn run_mode(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    mode: ExecutionMode,
    parallel: ParallelOptions,
    estimates: &GroupEstimates,
    hooks: &mut CacheHooks,
) -> Result<(Vec<(ColSet, Table)>, ExecMetrics)> {
    // A radix-sharded base table executes shard-parallel in client-side
    // and parallel modes: every plan edge fans out across the shard
    // entries, with a final merge at delivery. Server-side shared scans
    // keep reading the logical table, which the dual-resident layout
    // registers alongside the shards.
    if mode != ExecutionMode::ServerSide {
        if let Some(desc) = engine.catalog().shard_desc(&workload.table).cloned() {
            let ctx = ShardContext::build(&desc, workload);
            let opts = if mode == ExecutionMode::ClientSide {
                // Client-side stays serial: one engine query at a time,
                // per shard — the fan-out still narrows each query's
                // input and preserves per-shard cache granularity.
                ParallelOptions {
                    threads: 1,
                    memory_budget: parallel.memory_budget,
                }
            } else {
                parallel
            };
            let report = execute_plan_parallel_sharded(
                plan, workload, engine, opts, estimates, hooks, &ctx,
            )?;
            return Ok((report.results, report.metrics));
        }
    }
    Ok(match mode {
        ExecutionMode::ClientSide => {
            let report = run_plan(plan, workload, engine, None, estimates, hooks)?;
            (report.results, report.metrics)
        }
        ExecutionMode::ServerSide => execute_server_side(plan, workload, engine, estimates, hooks)?,
        ExecutionMode::Parallel => {
            let report =
                execute_plan_parallel_with(plan, workload, engine, parallel, estimates, hooks)?;
            (report.results, report.metrics)
        }
    })
}

/// Tag each member result with its grouping columns and UNION ALL them
/// into the single GROUPING SETS result table (§5.1.1's `Grp-Tag`).
pub(crate) fn assemble_union(
    workload: &Workload,
    plan: LogicalPlan,
    stats: SearchStats,
    results: Vec<(ColSet, Table)>,
    metrics: ExecMetrics,
) -> Result<GroupingSetsResult> {
    let mut tagged: Vec<(String, Table)> = Vec::with_capacity(results.len());
    for (set, table) in results {
        tagged.push((workload.col_names(set).join(","), table));
    }
    let refs: Vec<(&str, &Table)> = tagged.iter().map(|(t, tb)| (t.as_str(), tb)).collect();
    let mut m2 = metrics;
    let table = union_all_tagged(&refs, "grp_tag", &mut m2)?;
    Ok(GroupingSetsResult {
        table,
        plan,
        stats,
        metrics: m2,
    })
}

/// Server-side execution: all queries that read the same table run in one
/// shared scan. Sub-plan roots share the base-relation scan; each
/// materialized node's children share a scan of its temp table.
fn execute_server_side(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    estimates: &GroupEstimates,
    hooks: &mut CacheHooks,
) -> Result<(Vec<(ColSet, Table)>, ExecMetrics)> {
    plan.validate(workload)?;
    engine.reset_metrics();
    let exec_id = next_exec_id();
    let out = server_side_levels(plan, workload, engine, estimates, exec_id, hooks);
    if out.is_err() {
        cleanup_exec_temps(engine, exec_id);
    }
    out
}

fn server_side_levels(
    plan: &LogicalPlan,
    workload: &Workload,
    engine: &mut Engine,
    estimates: &GroupEstimates,
    exec_id: u64,
    hooks: &mut CacheHooks,
) -> Result<(Vec<(ColSet, Table)>, ExecMetrics)> {
    let mut results: Vec<(ColSet, Table)> = Vec::new();

    // Level order: (source table name, source aggs, nodes to compute).
    // Roots served from pinned cached aggregates read their pinned
    // table (with re-aggregation) instead of the base relation; the
    // remaining roots share one scan of the base relation as usual.
    let reagg: Vec<AggSpec> = workload
        .aggregates
        .iter()
        .map(AggSpec::reaggregate)
        .collect();
    let mut frontier: Vec<(String, Vec<AggSpec>, Vec<&SubNode>)> = Vec::new();
    let mut base_nodes: Vec<&SubNode> = Vec::new();
    for node in &plan.subplans {
        match hooks.roots.get(&(node.cols.0, WHOLE_TABLE_PIN)) {
            Some(pinned) if node.children.is_empty() && node.kind == NodeKind::GroupBy => {
                frontier.push((pinned.clone(), reagg.clone(), vec![node]));
            }
            _ => base_nodes.push(node),
        }
    }
    if !base_nodes.is_empty() {
        frontier.push((
            workload.table.clone(),
            workload.aggregates.clone(),
            base_nodes,
        ));
    }

    while let Some((source, aggs, nodes)) = frontier.pop() {
        // ROLLUP/CUBE nodes keep their dedicated execution path; plain
        // nodes share one scan of `source`.
        let (plain, special): (Vec<&SubNode>, Vec<&SubNode>) =
            nodes.into_iter().partition(|n| n.kind == NodeKind::GroupBy);
        if !plain.is_empty() {
            let groupings: Vec<Vec<String>> = plain
                .iter()
                .map(|n| {
                    workload
                        .col_names(n.cols)
                        .iter()
                        .map(|s| s.to_string())
                        .collect()
                })
                .collect();
            let in_rows = hooks
                .observing()
                .then(|| crate::executor::input_rows_of(engine, &source));
            let tables = engine.run_shared_group_bys(&source, &groupings, &aggs)?;
            for (node, table) in plain.iter().zip(tables) {
                if let Some(rows) = in_rows {
                    hooks.observe(node.cols, rows, table.num_rows() as u64, 0);
                }
                if node.required {
                    results.push((node.cols, table.clone()));
                }
                if node.is_materialized() {
                    engine.materialize_temp(&exec_temp_name(exec_id, node.cols), table)?;
                    hooks.harvest_temp(engine, exec_id, node.cols);
                    frontier.push((
                        exec_temp_name(exec_id, node.cols),
                        aggs.iter().map(AggSpec::reaggregate).collect(),
                        node.children.iter().collect(),
                    ));
                }
            }
        }
        for node in special {
            // Fall back to the client-side executor for CUBE/ROLLUP
            // nodes: wrap the node in a one-subplan plan.
            let sub = LogicalPlan {
                subplans: vec![(*node).clone()],
            };
            // The sub-plan reads `source`; only base-relation sources are
            // supported here (plan validation enforces child ⊂ parent, so
            // special nodes under temps would need node-local workloads).
            debug_assert_eq!(source, workload.table, "CUBE/ROLLUP under a temp");
            // The sub-workload shares the outer column universe, so the
            // inner executor's observations transfer directly: lend it
            // the sink and take it back afterwards.
            let mut inner = CacheHooks {
                observations: hooks.observations.take(),
                ..Default::default()
            };
            let report = run_plan(
                &sub,
                &sub_workload(workload, node),
                engine,
                None,
                estimates,
                &mut inner,
            );
            hooks.observations = inner.observations;
            results.extend(report?.results);
        }
    }

    // Drop any of *this execution's* temps that still linger (children
    // consumed them already, but required-internal nodes may remain).
    // Other executions' temps in a shared catalog are left alone.
    let prefix = exec_prefix(exec_id);
    for name in engine.catalog().temp_names() {
        if name.starts_with(&prefix) {
            engine.drop_temp(&name)?;
        }
    }
    Ok((results, engine.metrics()))
}

/// A workload whose requests are exactly the required sets inside `node`
/// (used to execute a single CUBE/ROLLUP sub-plan).
fn sub_workload(workload: &Workload, node: &SubNode) -> Workload {
    let mut required = Vec::new();
    node.collect_required(&mut required);
    Workload {
        table: workload.table.clone(),
        column_names: workload.column_names.clone(),
        base_ordinals: workload.base_ordinals.clone(),
        requests: required,
        aggregates: workload.aggregates.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::SearchConfig;
    use crate::session::Session;
    use gbmqo_storage::{Catalog, Column, DataType, Field, Schema, Value};

    fn setup() -> (Engine, Table) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64((0..120).map(|i| i % 3).collect()),
                Column::from_i64((0..120).map(|i| (i % 3) * 10).collect()),
                Column::from_i64((0..120).map(|i| i % 5).collect()),
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register("r", t.clone()).unwrap();
        (Engine::new(cat), t)
    }

    fn tag_counts(table: &Table) -> Vec<(String, usize)> {
        let tag_col = table.schema().index_of("grp_tag").unwrap();
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for r in 0..table.num_rows() {
            *counts
                .entry(table.value(r, tag_col).as_str().unwrap().to_string())
                .or_default() += 1;
        }
        counts.into_iter().collect()
    }

    #[test]
    fn client_and_server_side_agree() {
        let (engine, t) = setup();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut session = Session::builder()
            .engine(engine)
            .search(SearchConfig::pruned())
            .mode(ExecutionMode::ClientSide)
            .build()
            .unwrap();
        let client = session.grouping_sets(&w).unwrap();
        session.set_mode(ExecutionMode::ServerSide);
        let server = session.grouping_sets(&w).unwrap();
        assert_eq!(tag_counts(&client.table), tag_counts(&server.table));
        // a and b are perfectly correlated (3 groups each), c has 5
        assert_eq!(
            tag_counts(&client.table),
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 3),
                ("c".to_string(), 5)
            ]
        );
        // no temp tables leak
        assert!(session.engine().catalog().temp_names().is_empty());
    }

    #[test]
    fn server_side_shares_scans() {
        let (engine, t) = setup();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut session = Session::builder()
            .engine(engine)
            .search(SearchConfig::pruned())
            .mode(ExecutionMode::ServerSide)
            .build()
            .unwrap();
        let server = session.grouping_sets(&w).unwrap();
        // With the plan (a,b) merged: one shared scan of R computes the
        // (a,b) node and the c leaf; one scan of the temp computes a and b.
        assert!(
            server.metrics.rows_scanned <= 120 * 2 + 10,
            "rows scanned {} suggests scans were not shared",
            server.metrics.rows_scanned
        );
    }

    #[test]
    fn grouping_sets_result_has_union_all_shape() {
        let (engine, t) = setup();
        let w = Workload::new("r", &t, &["a", "c"], &[vec!["a"], vec!["a", "c"]]).unwrap();
        let mut session = Session::builder().engine(engine).build().unwrap();
        let out = session.grouping_sets(&w).unwrap();
        // columns: a, c, cnt, grp_tag — with NULL-padded c for the (a) rows
        assert_eq!(out.table.num_columns(), 4);
        let tags = tag_counts(&out.table);
        assert_eq!(tags.len(), 2);
        let a_rows = tags.iter().find(|(t, _)| t == "a").unwrap().1;
        assert_eq!(a_rows, 3);
        // the (a)-tagged rows have NULL in the c column
        let c_col = out.table.schema().index_of("c").unwrap();
        let tag_col = out.table.schema().index_of("grp_tag").unwrap();
        for r in 0..out.table.num_rows() {
            if out.table.value(r, tag_col) == Value::str("a") {
                assert!(out.table.value(r, c_col).is_null());
            }
        }
    }

    #[test]
    fn selection_pushdown_via_run_filter() {
        use gbmqo_exec::Predicate;
        let (engine, _) = setup();
        let mut session = Session::builder().engine(engine).build().unwrap();
        // §5.1.1: push the selection below GROUPING SETS by materializing
        // the filtered relation once.
        session
            .engine_mut()
            .run_filter(
                "r",
                &Predicate::Ge("c".into(), Value::Int(2)),
                Some("r_filtered"),
            )
            .unwrap();
        let filtered = session
            .engine()
            .catalog()
            .table("r_filtered")
            .unwrap()
            .clone();
        assert!(filtered.num_rows() < 120);
        let w = Workload::single_columns("r_filtered", &filtered, &["a", "c"]).unwrap();
        let out = session.grouping_sets(&w).unwrap();
        // counts reflect only the filtered rows
        let cnt_col = out.table.schema().index_of("cnt").unwrap();
        let tag_col = out.table.schema().index_of("grp_tag").unwrap();
        let total_a: i64 = (0..out.table.num_rows())
            .filter(|&r| out.table.value(r, tag_col) == Value::str("a"))
            .map(|r| out.table.value(r, cnt_col).as_int().unwrap())
            .sum();
        assert_eq!(total_a as usize, filtered.num_rows());
        session.engine_mut().drop_temp("r_filtered").unwrap();
    }
}
