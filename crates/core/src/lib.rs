//! # gbmqo-core
//!
//! A from-scratch Rust reproduction of **"Efficient Computation of
//! Multiple Group By Queries"** (Zhimin Chen & Vivek Narasayya, SIGMOD
//! 2005): cost-based multi-query optimization for sets of Group By
//! queries over one relation (the **GB-MQO** problem).
//!
//! The problem: given a relation `R` and requested Group Bys
//! `S = {s1..sn}`, find a tree of Group By queries rooted at `R`
//! (intermediate results materialized as temp tables) that computes all
//! of `S` at minimum cost. Even the all-single-column case is
//! NP-complete, and the search DAG is exponential — so the paper's
//! algorithm climbs bottom-up from the naive plan by greedily merging
//! sub-plans, never building the full lattice.
//!
//! Map of the crate (paper section → module):
//!
//! * §3.1 search DAG nodes → [`colset`], problem input → [`workload`],
//!   logical plans → [`plan`]
//! * §3.2 cost models → the `gbmqo-cost` crate, adapted via [`coster`]
//! * §4.1 SubPlanMerge → [`merge`]
//! * §4.2 greedy algorithm → [`greedy`] ([`GbMqo`])
//! * §4.3 pruning → [`greedy::SearchConfig`] flags
//! * §4.4 storage-minimizing scheduling → [`schedule`]
//! * §5.1 server-side execution (shared scans) and the GROUPING SETS
//!   union-all facade → [`api`]
//! * §5.1.1 GROUPING SETS over joins (Grp-Tag) → [`join_pushdown`]
//! * §5.2 client-side execution → [`executor`], SQL rendering → [`sql`]
//! * §6.1 commercial GROUPING SETS baseline → [`grouping_sets`]
//! * §6.3 exhaustive optimum → [`exhaustive`]
//! * §7.1 CUBE/ROLLUP nodes → [`extensions`]
//! * §7.2 other aggregates → [`workload::Workload::with_aggregates`]
//!
//! ## Quickstart
//!
//! The entry point is a [`Session`]: it owns the engine, optimizes each
//! workload under the configured cost model, caches plans for repeated
//! workloads, and executes serially, via shared scans, or in
//! dependency-parallel waves.
//!
//! ```
//! use gbmqo_core::prelude::*;
//! use gbmqo_storage::{Column, DataType, Field, Schema, Table};
//!
//! // a tiny relation R(a, b, c)
//! let schema = Schema::new(vec![
//!     Field::new("a", DataType::Int64),
//!     Field::new("b", DataType::Int64),
//!     Field::new("c", DataType::Int64),
//! ]).unwrap();
//! let table = Table::new(schema, vec![
//!     Column::from_i64((0..100).map(|i| i % 4).collect()),
//!     Column::from_i64((0..100).map(|i| (i % 4) * 10).collect()),
//!     Column::from_i64((0..100).collect()),
//! ]).unwrap();
//!
//! let mut session = Session::builder()
//!     .table("r", table.clone())
//!     .search(SearchConfig::pruned())      // §4.3 pruning on
//!     .mode(ExecutionMode::Parallel)       // dependency-parallel waves
//!     .plan_cache(16)                      // LRU workload→plan cache
//!     .build()
//!     .unwrap();
//!
//! // ask for every single-column Group By (the paper's SC workload)
//! let workload = Workload::single_columns("r", &table, &["a", "b", "c"]).unwrap();
//! let out = session.grouping_sets(&workload).unwrap();
//! assert!(out.stats.final_cost <= out.stats.naive_cost);
//! assert_eq!(out.grouping_set_count(), 3);
//!
//! // the same workload again skips the merge search entirely
//! let again = session.grouping_sets(&workload).unwrap();
//! assert!(again.stats.cache_hit);
//! assert_eq!(again.stats.optimizer_calls, 0);
//! ```
//!
//! The pre-0.2 free functions (`execute_grouping_sets`,
//! `execute_plan`, `GbMqo::optimize`) have been removed; [`Session`]
//! covers every path they served, with plan caching on top.

#![warn(missing_docs)]

pub mod advisor;
pub mod api;
pub mod cache;
pub mod colset;
pub mod coster;
pub mod error;
pub mod executor;
pub mod exhaustive;
pub mod explain;
pub mod extensions;
pub mod greedy;
pub mod grouping_sets;
pub mod join_pushdown;
pub mod merge;
pub mod parse;
pub mod plan;
pub mod schedule;
pub mod serialize;
pub mod session;
pub mod sql;
pub mod workload;

pub use advisor::{recommend_indexes, IndexRecommendation};
pub use api::{ExecutionMode, GroupingSetsResult};
pub use cache::{CacheStats, PlanCache, WorkloadFingerprint};
pub use colset::ColSet;
pub use error::{CoreError, Result};
pub use executor::{
    execute_plan_parallel, plan_group_estimates, ExecutionReport, GroupEstimates, ParallelOptions,
};
pub use exhaustive::optimal_plan;
pub use explain::{explain, render_explain, ExplainedEdge};
pub use extensions::cube_rollup_pass;
pub use gbmqo_exec::{CancelToken, GroupByStrategy};
pub use gbmqo_matcache::{CacheControl, MatCacheStats};
pub use greedy::{GbMqo, SearchConfig, SearchStats};
pub use grouping_sets::{grouping_sets_plan, BaselineKind};
pub use join_pushdown::{grouping_sets_over_join, grouping_sets_over_star, StarDim};
pub use parse::parse_grouping_sets;
pub use plan::{LogicalPlan, NodeKind, SubNode};
pub use serialize::{plan_from_text, plan_to_text};
pub use session::{
    AppendOutcome, CostModelSpec, NodeCardReport, RefreshPolicy, Session, SessionBuilder,
    WorkloadOutcome, DEFAULT_MAX_DELTA_FRACTION, DEFAULT_REOPT_THRESHOLD, RESHARD_SKEW_THRESHOLD,
};
pub use sql::{quote_sql_ident, render_sql};
pub use workload::Workload;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::api::{ExecutionMode, GroupingSetsResult};
    pub use crate::cache::CacheStats;
    pub use crate::colset::ColSet;
    pub use crate::error::{CoreError, Result};
    pub use crate::executor::{ExecutionReport, ParallelOptions};
    pub use crate::greedy::{GbMqo, SearchConfig, SearchStats};
    pub use crate::plan::{LogicalPlan, SubNode};
    pub use crate::session::{
        AppendOutcome, CostModelSpec, NodeCardReport, RefreshPolicy, Session, SessionBuilder,
        WorkloadOutcome, DEFAULT_MAX_DELTA_FRACTION, DEFAULT_REOPT_THRESHOLD,
        RESHARD_SKEW_THRESHOLD,
    };
    pub use crate::workload::Workload;
    pub use gbmqo_exec::{CancelToken, GroupByStrategy};
    pub use gbmqo_matcache::{CacheControl, MatCacheStats};
}
