//! Exhaustive optimal search for small instances (§6.3's oracle).
//!
//! For pairwise-disjoint inputs (the SC case), every useful logical plan
//! is a laminar forest over the inputs: each internal node's column set is
//! the union of the inputs below it (adding extra columns only raises the
//! node's cardinality, and under both cost models that never helps), and
//! each input appears as exactly one leaf. The optimal plan is therefore a
//! minimum-cost recursive partition of the input set, found by a
//! subset-partition dynamic program in `O(3^n)` — feasible for the
//! paper's 7-column instances, far beyond that infeasible (which is the
//! paper's point about exhaustive methods).

use crate::colset::ColSet;
use crate::coster::EdgeCoster;
use crate::error::{CoreError, Result};
use crate::plan::{LogicalPlan, SubNode};
use crate::workload::Workload;
use gbmqo_cost::CostModel;

/// Maximum number of inputs the DP accepts (3^16 subproblem pairs).
pub const MAX_EXHAUSTIVE_INPUTS: usize = 16;

/// Find the provably optimal logical plan for a workload of pairwise
/// disjoint requests. Returns the plan and its cost.
pub fn optimal_plan(workload: &Workload, model: &mut dyn CostModel) -> Result<(LogicalPlan, f64)> {
    let n = workload.requests.len();
    if n > MAX_EXHAUSTIVE_INPUTS {
        return Err(CoreError::Unsupported(format!(
            "exhaustive search supports at most {MAX_EXHAUSTIVE_INPUTS} inputs, got {n}"
        )));
    }
    if !workload.is_non_overlapping() {
        return Err(CoreError::Unsupported(
            "exhaustive search requires pairwise-disjoint inputs".to_string(),
        ));
    }
    let mut coster = EdgeCoster::new(model, workload.base_ordinals.clone());
    let inputs = workload.requests.clone();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    let mut dp = Dp {
        inputs,
        node_memo: vec![None; (full as usize) + 1],
        cover_memo: Default::default(),
    };

    // Top level: partition all inputs into sub-plans hanging off R.
    let (cost, parts) = dp.best_cover(None, full, &mut coster);
    let subplans: Vec<SubNode> = parts
        .into_iter()
        .map(|p| dp.build_node(p, &mut coster))
        .collect();
    let plan = LogicalPlan { subplans };
    plan.validate(workload)?;
    Ok((plan, cost))
}

struct Dp {
    inputs: Vec<ColSet>,
    /// `node_memo[mask]` = best cost of the subtree rooted at ∪(mask),
    /// *excluding* the edge into the root. Only masks with ≥2 bits used.
    node_memo: Vec<Option<(f64, Vec<u32>)>>,
    /// `(parent colset or u128::MAX for base, remaining)` → best cost +
    /// chosen parts.
    cover_memo: rustc_hash::FxHashMap<(u128, u32), (f64, Vec<u32>)>,
}

impl Dp {
    fn union_of(&self, mask: u32) -> ColSet {
        let mut s = ColSet::EMPTY;
        for (i, inp) in self.inputs.iter().enumerate() {
            if mask >> i & 1 == 1 {
                s = s.union(*inp);
            }
        }
        s
    }

    /// Cost of hanging the part `p` off `parent` (`None` = base).
    fn part_cost(&mut self, parent: Option<ColSet>, p: u32, coster: &mut EdgeCoster<'_>) -> f64 {
        let cols = self.union_of(p);
        if p.count_ones() == 1 {
            coster.edge(parent, cols, false)
        } else {
            coster.edge(parent, cols, true) + self.node_cost(p, coster)
        }
    }

    /// Best cost of the internal node ∪(mask) (≥2 inputs), excluding its
    /// incoming edge: minimum over partitions of `mask` into ≥2 parts.
    fn node_cost(&mut self, mask: u32, coster: &mut EdgeCoster<'_>) -> f64 {
        if let Some((c, _)) = &self.node_memo[mask as usize] {
            return *c;
        }
        let parent = self.union_of(mask);
        let low = mask & mask.wrapping_neg();
        let rest = mask & !low;
        // First part: any submask containing `low`, strictly smaller than
        // `mask` (a single part equal to the whole node is degenerate).
        let mut best = f64::INFINITY;
        let mut best_parts: Vec<u32> = Vec::new();
        let mut sub = rest;
        loop {
            // first part = low | sub', where sub' ⊆ rest and ≠ rest
            let first = low | sub;
            if first != mask {
                let remaining = mask & !first;
                let c_first = self.part_cost(Some(parent), first, coster);
                let (c_rest, mut parts) = self.best_cover(Some(parent), remaining, coster);
                let total = c_first + c_rest;
                if total < best {
                    parts.insert(0, first);
                    best = total;
                    best_parts = parts;
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        self.node_memo[mask as usize] = Some((best, best_parts));
        best
    }

    /// Best cost of covering `remaining` inputs with any number (≥1) of
    /// parts hanging off `parent`.
    fn best_cover(
        &mut self,
        parent: Option<ColSet>,
        remaining: u32,
        coster: &mut EdgeCoster<'_>,
    ) -> (f64, Vec<u32>) {
        if remaining == 0 {
            return (0.0, Vec::new());
        }
        let key = (parent.map_or(u128::MAX, |p| p.0), remaining);
        if let Some(v) = self.cover_memo.get(&key) {
            return v.clone();
        }
        let low = remaining & remaining.wrapping_neg();
        let rest = remaining & !low;
        let mut best = f64::INFINITY;
        let mut best_parts: Vec<u32> = Vec::new();
        let mut sub = rest;
        loop {
            let part = low | sub;
            let c_part = self.part_cost(parent, part, coster);
            let (c_rest, mut parts) = self.best_cover(parent, remaining & !part, coster);
            let total = c_part + c_rest;
            if total < best {
                parts.insert(0, part);
                best = total;
                best_parts = parts;
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        let result = (best, best_parts);
        self.cover_memo.insert(key, result.clone());
        result
    }

    /// Materialize the chosen structure for part `p` as a plan node.
    fn build_node(&mut self, p: u32, coster: &mut EdgeCoster<'_>) -> SubNode {
        if p.count_ones() == 1 {
            let idx = p.trailing_zeros() as usize;
            return SubNode::leaf(self.inputs[idx]);
        }
        // ensure memo is filled
        self.node_cost(p, coster);
        let parts = self.node_memo[p as usize]
            .as_ref()
            .expect("memo filled")
            .1
            .clone();
        let children = parts
            .into_iter()
            .map(|q| self.build_node(q, coster))
            .collect();
        SubNode::internal(self.union_of(p), children)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{GbMqo, SearchConfig};
    use gbmqo_cost::CardinalityCostModel;
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn correlated_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let a: Vec<i64> = (0..200).map(|i| i % 4).collect();
        let b: Vec<i64> = (0..200).map(|i| (i % 4) + 100).collect();
        let c: Vec<i64> = (0..200).collect();
        Table::new(
            schema,
            vec![
                Column::from_i64(a),
                Column::from_i64(b),
                Column::from_i64(c),
            ],
        )
        .unwrap()
    }

    #[test]
    fn optimal_matches_hand_computed_plan() {
        let t = correlated_table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let (plan, cost) = optimal_plan(&w, &mut model).unwrap();
        // best: (a,b) from R [200], a,b from it [4+4], c from R [200] = 408
        assert_eq!(cost, 408.0);
        assert_eq!(plan.subplans.len(), 2);
    }

    #[test]
    fn greedy_never_beats_optimal() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..8 {
            // random 5-column table with varied cardinalities
            let n_rows = 300usize;
            let cards = [2usize, 5, 10, 50, 300];
            let cols: Vec<Column> = cards
                .iter()
                .map(|&c| {
                    Column::from_i64((0..n_rows).map(|_| rng.gen_range(0..c as i64)).collect())
                })
                .collect();
            let names = ["a", "b", "c", "d", "e"];
            let schema = Schema::new(
                names
                    .iter()
                    .map(|n| Field::new(*n, DataType::Int64))
                    .collect(),
            )
            .unwrap();
            let t = Table::new(schema, cols).unwrap();
            let w = Workload::single_columns("r", &t, &names).unwrap();

            let mut m1 = CardinalityCostModel::new(ExactSource::new(&t));
            let (_, opt_cost) = optimal_plan(&w, &mut m1).unwrap();

            let mut m2 = CardinalityCostModel::new(ExactSource::new(&t));
            let (_, stats) = GbMqo::with_config(SearchConfig::default())
                .plan(&w, &mut m2)
                .unwrap();

            assert!(
                opt_cost <= stats.final_cost + 1e-6,
                "trial {trial}: optimal {opt_cost} > greedy {}",
                stats.final_cost
            );
            assert!(opt_cost <= stats.naive_cost + 1e-6);
        }
    }

    #[test]
    fn rejects_overlapping_or_oversized_inputs() {
        let t = correlated_table();
        let w = Workload::new("r", &t, &["a", "b"], &[vec!["a"], vec!["a", "b"]]).unwrap();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        assert!(matches!(
            optimal_plan(&w, &mut model),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn single_input_is_a_leaf() {
        let t = correlated_table();
        let w = Workload::single_columns("r", &t, &["a"]).unwrap();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let (plan, cost) = optimal_plan(&w, &mut model).unwrap();
        assert_eq!(plan.node_count(), 1);
        assert_eq!(cost, 200.0);
    }
}
