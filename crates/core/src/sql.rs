//! SQL-script rendering — the client-side implementation of §5.2.
//!
//! Any logical plan can be executed against a stock SQL DBMS by issuing
//! one statement per plan edge: intermediates become
//! `SELECT … INTO tmp`, queries over intermediates replace `COUNT(*)`
//! with `SUM(cnt)`, and temp tables are dropped as soon as all their
//! children are computed.

use crate::colset::ColSet;
use crate::executor::temp_name;
use crate::plan::{LogicalPlan, NodeKind};
use crate::schedule::{schedule_plan, Step};
use crate::workload::Workload;

/// Render `plan` as an ordered SQL script (one statement per entry).
pub fn render_sql(plan: &LogicalPlan, workload: &Workload) -> Vec<String> {
    let mut d = |_: ColSet| 1.0;
    let steps = schedule_plan(plan, &mut d);
    steps
        .iter()
        .map(|s| match s {
            Step::Drop(cols) => format!("DROP TABLE {};", temp_name(*cols)),
            Step::Query {
                source,
                target,
                materialize,
                kind,
                ..
            } => {
                let cols = workload.col_names(*target).join(", ");
                let (from, agg) = match source {
                    None => (workload.table.clone(), "COUNT(*)".to_string()),
                    Some(s) => (temp_name(*s), "SUM(cnt)".to_string()),
                };
                let into = match materialize {
                    true => format!(" INTO {}", temp_name(*target)),
                    false => String::new(),
                };
                let grouping = match kind {
                    NodeKind::GroupBy => format!("GROUP BY {cols}"),
                    NodeKind::Rollup => format!("GROUP BY ROLLUP ({cols})"),
                    NodeKind::Cube => format!("GROUP BY CUBE ({cols})"),
                };
                format!("SELECT {cols}, {agg} AS cnt{into} FROM {from} {grouping};")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SubNode;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn workload() -> Workload {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![2])],
        )
        .unwrap();
        Workload::single_columns("lineitem", &t, &["a", "b"]).unwrap()
    }

    #[test]
    fn naive_plan_renders_plain_queries() {
        let w = workload();
        let sql = render_sql(&LogicalPlan::naive(&w), &w);
        assert_eq!(sql.len(), 2);
        assert_eq!(
            sql[0],
            "SELECT a, COUNT(*) AS cnt FROM lineitem GROUP BY a;"
        );
    }

    #[test]
    fn merged_plan_renders_into_sum_cnt_and_drop() {
        let w = workload();
        let plan = LogicalPlan {
            subplans: vec![SubNode::internal(
                ColSet::from_cols([0, 1]),
                vec![
                    SubNode::leaf(ColSet::single(0)),
                    SubNode::leaf(ColSet::single(1)),
                ],
            )],
        };
        let sql = render_sql(&plan, &w);
        assert_eq!(sql.len(), 4);
        assert!(sql[0].contains("INTO"));
        assert!(sql[0].contains("COUNT(*)"));
        assert!(sql[1].contains("SUM(cnt)"), "{}", sql[1]);
        assert!(sql.iter().any(|s| s.starts_with("DROP TABLE")));
        // drop comes only after both children are computed
        let drop_pos = sql.iter().position(|s| s.starts_with("DROP")).unwrap();
        assert!(drop_pos >= 3 || sql[..drop_pos].iter().filter(|s| s.contains("SUM")).count() == 2);
    }

    #[test]
    fn rollup_node_renders_rollup_syntax() {
        let w = workload();
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1]),
                required: true,
                kind: NodeKind::Rollup,
                children: vec![SubNode::leaf(ColSet::single(0))],
            }],
        };
        let w2 = Workload::new(
            "lineitem",
            &Table::new(
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("b", DataType::Int64),
                ])
                .unwrap(),
                vec![Column::from_i64(vec![1]), Column::from_i64(vec![2])],
            )
            .unwrap(),
            &["a", "b"],
            &[vec!["a"], vec!["a", "b"]],
        )
        .unwrap();
        drop(w);
        let sql = render_sql(&plan, &w2);
        assert!(sql[0].contains("GROUP BY ROLLUP"), "{}", sql[0]);
    }
}
