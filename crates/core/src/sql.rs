//! SQL-script rendering — the client-side implementation of §5.2.
//!
//! Any logical plan can be executed against a stock SQL DBMS by issuing
//! one statement per plan edge: intermediates become
//! `SELECT … INTO tmp`, queries over intermediates replace `COUNT(*)`
//! with `SUM(cnt)`, and temp tables are dropped as soon as all their
//! children are computed.

use crate::colset::ColSet;
use crate::executor::temp_name;
use crate::plan::{LogicalPlan, NodeKind};
use crate::schedule::{schedule_plan, Step};
use crate::workload::Workload;

/// SQL keywords that force quoting when used as an identifier. Covers
/// everything the rendered scripts themselves use plus the usual
/// query-clause words a grouping column is likely to collide with.
const SQL_KEYWORDS: &[&str] = &[
    "all", "and", "as", "asc", "by", "count", "cross", "cube", "desc", "distinct", "drop", "from",
    "group", "grouping", "having", "inner", "into", "join", "left", "limit", "max", "min", "not",
    "null", "on", "or", "order", "outer", "right", "rollup", "select", "sets", "sum", "table",
    "union", "where",
];

/// Quote `name` for use as a SQL identifier when necessary: plain
/// lower-case identifiers that are not keywords render bare; anything
/// else is double-quoted with embedded `"` doubled.
pub fn quote_sql_ident(name: &str) -> String {
    let mut chars = name.chars();
    let plain = matches!(chars.next(), Some('a'..='z' | '_'))
        && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
        && !SQL_KEYWORDS.contains(&name);
    if plain {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// Render `plan` as an ordered SQL script (one statement per entry).
pub fn render_sql(plan: &LogicalPlan, workload: &Workload) -> Vec<String> {
    let mut d = |_: ColSet| 1.0;
    let steps = schedule_plan(plan, &mut d);
    steps
        .iter()
        .map(|s| match s {
            Step::Drop(cols) => format!("DROP TABLE {};", temp_name(*cols)),
            Step::Query {
                source,
                target,
                materialize,
                kind,
                ..
            } => {
                let cols = workload
                    .col_names(*target)
                    .iter()
                    .map(|c| quote_sql_ident(c))
                    .collect::<Vec<_>>()
                    .join(", ");
                let (from, agg) = match source {
                    None => (quote_sql_ident(&workload.table), "COUNT(*)".to_string()),
                    Some(s) => (temp_name(*s), "SUM(cnt)".to_string()),
                };
                let into = match materialize {
                    true => format!(" INTO {}", temp_name(*target)),
                    false => String::new(),
                };
                let grouping = match kind {
                    NodeKind::GroupBy => format!("GROUP BY {cols}"),
                    NodeKind::Rollup => format!("GROUP BY ROLLUP ({cols})"),
                    NodeKind::Cube => format!("GROUP BY CUBE ({cols})"),
                };
                format!("SELECT {cols}, {agg} AS cnt{into} FROM {from} {grouping};")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SubNode;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn workload() -> Workload {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![2])],
        )
        .unwrap();
        Workload::single_columns("lineitem", &t, &["a", "b"]).unwrap()
    }

    #[test]
    fn naive_plan_renders_plain_queries() {
        let w = workload();
        let sql = render_sql(&LogicalPlan::naive(&w), &w);
        assert_eq!(sql.len(), 2);
        assert_eq!(
            sql[0],
            "SELECT a, COUNT(*) AS cnt FROM lineitem GROUP BY a;"
        );
    }

    #[test]
    fn merged_plan_renders_into_sum_cnt_and_drop() {
        let w = workload();
        let plan = LogicalPlan {
            subplans: vec![SubNode::internal(
                ColSet::from_cols([0, 1]),
                vec![
                    SubNode::leaf(ColSet::single(0)),
                    SubNode::leaf(ColSet::single(1)),
                ],
            )],
        };
        let sql = render_sql(&plan, &w);
        assert_eq!(sql.len(), 4);
        assert!(sql[0].contains("INTO"));
        assert!(sql[0].contains("COUNT(*)"));
        assert!(sql[1].contains("SUM(cnt)"), "{}", sql[1]);
        assert!(sql.iter().any(|s| s.starts_with("DROP TABLE")));
        // drop comes only after both children are computed
        let drop_pos = sql.iter().position(|s| s.starts_with("DROP")).unwrap();
        assert!(drop_pos >= 3 || sql[..drop_pos].iter().filter(|s| s.contains("SUM")).count() == 2);
    }

    #[test]
    fn rollup_node_renders_rollup_syntax() {
        let w = workload();
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1]),
                required: true,
                kind: NodeKind::Rollup,
                children: vec![SubNode::leaf(ColSet::single(0))],
            }],
        };
        let w2 = Workload::new(
            "lineitem",
            &Table::new(
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("b", DataType::Int64),
                ])
                .unwrap(),
                vec![Column::from_i64(vec![1]), Column::from_i64(vec![2])],
            )
            .unwrap(),
            &["a", "b"],
            &[vec!["a"], vec!["a", "b"]],
        )
        .unwrap();
        drop(w);
        let sql = render_sql(&plan, &w2);
        assert!(sql[0].contains("GROUP BY ROLLUP"), "{}", sql[0]);
    }

    #[test]
    fn keyword_identifiers_are_quoted() {
        // Columns named after SQL keywords (and mixed-case names) must be
        // quoted; plain names must stay bare.
        let schema = Schema::new(vec![
            Field::new("order", DataType::Int64),
            Field::new("Group", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![2])],
        )
        .unwrap();
        let w = Workload::single_columns("select", &t, &["order", "Group"]).unwrap();
        let sql = render_sql(&LogicalPlan::naive(&w), &w);
        assert_eq!(
            sql[0],
            "SELECT \"order\", COUNT(*) AS cnt FROM \"select\" GROUP BY \"order\";"
        );
        assert_eq!(
            sql[1],
            "SELECT \"Group\", COUNT(*) AS cnt FROM \"select\" GROUP BY \"Group\";"
        );
    }

    #[test]
    fn quote_sql_ident_rules() {
        assert_eq!(quote_sql_ident("lineitem"), "lineitem");
        assert_eq!(quote_sql_ident("l_returnflag"), "l_returnflag");
        assert_eq!(quote_sql_ident("from"), "\"from\"");
        assert_eq!(quote_sql_ident("Cap"), "\"Cap\"");
        assert_eq!(quote_sql_ident("1col"), "\"1col\"");
        assert_eq!(quote_sql_ident("odd name"), "\"odd name\"");
        assert_eq!(quote_sql_ident("has\"quote"), "\"has\"\"quote\"");
    }
}
