//! §7.1: considering CUBE and ROLLUP nodes in the plan, as a cost-based
//! post-pass over the greedy search's output.
//!
//! The paper proposes considering `CUBE(v1 ∪ v2)` / `ROLLUP(v1 ∪ v2)` as
//! additional SubPlanMerge alternatives. We apply the equivalent
//! transformation after the search converges: for every internal node
//! whose children are leaves, compare the plain Group By tree against a
//! ROLLUP (children form a nested chain) or CUBE (otherwise) evaluation
//! of the same node, and keep whichever the cost model prefers.

use crate::coster::EdgeCoster;
use crate::plan::{LogicalPlan, NodeKind, SubNode};
use crate::workload::Workload;
use gbmqo_cost::CostModel;

/// Maximum node width for which a CUBE alternative is considered
/// (costing a cube enumerates all 2^k subsets). Shared with the in-search
/// CUBE/ROLLUP merge alternatives
/// ([`crate::greedy::SearchConfig::cube_rollup_merges`]).
pub const MAX_CUBE_WIDTH: usize = 10;

/// Apply the §7.1 rewriting. Returns the (possibly) rewritten plan and
/// how many nodes were converted.
pub fn cube_rollup_pass(
    plan: &LogicalPlan,
    workload: &Workload,
    model: &mut dyn CostModel,
) -> (LogicalPlan, usize) {
    let mut coster = EdgeCoster::new(model, workload.base_ordinals.clone());
    let mut converted = 0usize;
    let subplans = plan
        .subplans
        .iter()
        .map(|sp| rewrite(sp, &mut coster, &mut converted))
        .collect();
    (LogicalPlan { subplans }, converted)
}

fn chain_nested(node: &SubNode) -> bool {
    let mut sets: Vec<_> = node.children.iter().map(|c| c.cols).collect();
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut prev = node.cols;
    for s in sets {
        if !s.is_strict_subset_of(prev) {
            return false;
        }
        prev = s;
    }
    true
}

fn rewrite(node: &SubNode, coster: &mut EdgeCoster<'_>, converted: &mut usize) -> SubNode {
    let mut node = node.clone();
    node.children = node
        .children
        .iter()
        .map(|c| rewrite(c, coster, converted))
        .collect();

    let eligible = node.kind == NodeKind::GroupBy
        && !node.children.is_empty()
        && node
            .children
            .iter()
            .all(|c| c.children.is_empty() && c.required);
    if !eligible {
        return node;
    }

    let plain_cost = node.subtree_cost(None, coster);
    let mut best = node.clone();
    let mut best_cost = plain_cost;

    if chain_nested(&node) {
        let mut alt = node.clone();
        alt.kind = NodeKind::Rollup;
        let c = alt.subtree_cost(None, coster);
        if c < best_cost {
            best = alt;
            best_cost = c;
        }
    } else if node.cols.len() <= MAX_CUBE_WIDTH {
        let mut alt = node.clone();
        alt.kind = NodeKind::Cube;
        let c = alt.subtree_cost(None, coster);
        if c < best_cost {
            best = alt;
            best_cost = c;
        }
    }
    if best.kind != NodeKind::GroupBy {
        *converted += 1;
    }
    let _ = best_cost;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colset::ColSet;
    use gbmqo_cost::IndexSnapshot;
    use gbmqo_cost::{CostConstants, OptimizerCostModel};
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64((0..500).map(|i| i % 5).collect()),
                Column::from_i64((0..500).map(|i| i % 7).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn chain_becomes_rollup_when_cheaper() {
        // (a,b)* with required child (a): a classic ROLLUP A,B shape.
        let t = table();
        let w = Workload::new("r", &t, &["a", "b"], &[vec!["a"], vec!["a", "b"]]).unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1]),
                required: true,
                kind: NodeKind::GroupBy,
                children: vec![SubNode::leaf(ColSet::single(0))],
            }],
        };
        // Make materialization expensive so ROLLUP's pipelined levels win.
        let constants = CostConstants {
            byte_write: 10.0,
            ..Default::default()
        };
        let mut model = OptimizerCostModel::new(ExactSource::new(&t), IndexSnapshot::none())
            .with_constants(constants);
        let (rewritten, converted) = cube_rollup_pass(&plan, &w, &mut model);
        assert_eq!(converted, 1);
        assert_eq!(rewritten.subplans[0].kind, NodeKind::Rollup);
        rewritten.validate(&w).unwrap();
    }

    #[test]
    fn non_chain_considers_cube() {
        // (a,b) with children (a) and (b): not nested → CUBE candidate.
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b"]).unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode::internal(
                ColSet::from_cols([0, 1]),
                vec![
                    SubNode::leaf(ColSet::single(0)),
                    SubNode::leaf(ColSet::single(1)),
                ],
            )],
        };
        let constants = CostConstants {
            byte_write: 50.0,
            ..Default::default()
        };
        let mut model = OptimizerCostModel::new(ExactSource::new(&t), IndexSnapshot::none())
            .with_constants(constants);
        let (rewritten, converted) = cube_rollup_pass(&plan, &w, &mut model);
        if converted == 1 {
            assert_eq!(rewritten.subplans[0].kind, NodeKind::Cube);
        }
        rewritten.validate(&w).unwrap();
    }

    #[test]
    fn cheap_materialization_keeps_group_by() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b"]).unwrap();
        let plan = LogicalPlan {
            subplans: vec![SubNode::internal(
                ColSet::from_cols([0, 1]),
                vec![
                    SubNode::leaf(ColSet::single(0)),
                    SubNode::leaf(ColSet::single(1)),
                ],
            )],
        };
        // Default constants: materialization of 35 rows is nearly free,
        // while CUBE recomputes subsets — plain Group By should stay.
        let mut model = OptimizerCostModel::new(ExactSource::new(&t), IndexSnapshot::none());
        let (rewritten, _) = cube_rollup_pass(&plan, &w, &mut model);
        rewritten.validate(&w).unwrap();
    }

    #[test]
    fn leaves_and_deep_nodes_untouched() {
        let t = table();
        let w = Workload::new("r", &t, &["a", "b"], &[vec!["a"], vec!["b"]]).unwrap();
        let plan = LogicalPlan::naive(&w);
        let mut model = OptimizerCostModel::new(ExactSource::new(&t), IndexSnapshot::none());
        let (rewritten, converted) = cube_rollup_pass(&plan, &w, &mut model);
        assert_eq!(converted, 0);
        assert_eq!(rewritten, plan);
    }
}
