//! Simulated commercial GROUPING SETS planner — the baseline the paper
//! compares against (§6.1).
//!
//! The paper observes two behaviours of the commercial implementation:
//!
//! * for inputs with **little overlap** (the SC case) "the plan picked by
//!   the query optimizer is to first compute the Group By of all …
//!   columns, materialize that result, and then compute each of the …
//!   Group By queries from that materialized result" — the *union-top*
//!   plan, "almost the same as the naive approach" because the
//!   all-columns grouping is nearly as large as the table;
//! * for inputs with **containment relationships** (the CONT case) "it
//!   arranges the sorting order so that if a grouping set subsumes
//!   another, the subsumed grouping is almost free" — *shared sorts*,
//!   which we model as a containment forest: maximal sets computed from
//!   `R`, subsumed sets from their parents' materialized results.
//!
//! [`grouping_sets_plan`] reproduces that dispatch; it deliberately does
//! **not** introduce new (non-requested) nodes, which is exactly the
//! limitation the paper's algorithm removes.

use crate::colset::ColSet;
use crate::plan::{LogicalPlan, SubNode};
use crate::workload::Workload;

/// Which strategy the simulated GROUPING SETS planner chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Materialize the union of all requested columns; compute every
    /// request from it.
    UnionTop,
    /// Containment forest: subsumed groupings from their subsuming
    /// parents (shared sorts).
    SharedSort,
}

/// The plan a commercial GROUPING SETS implementation would execute.
pub fn grouping_sets_plan(workload: &Workload) -> (LogicalPlan, BaselineKind) {
    let has_containment = workload.requests.iter().any(|a| {
        workload
            .requests
            .iter()
            .any(|b| a != b && a.is_strict_subset_of(*b))
    });
    if has_containment {
        (containment_forest(workload), BaselineKind::SharedSort)
    } else {
        (union_top(workload), BaselineKind::UnionTop)
    }
}

/// The union-top plan: one intermediate node over the union of all
/// requested columns, every request computed from it.
pub fn union_top(workload: &Workload) -> LogicalPlan {
    let union = workload
        .requests
        .iter()
        .fold(ColSet::EMPTY, |acc, s| acc.union(*s));
    let mut children: Vec<SubNode> = Vec::new();
    let mut root_required = false;
    for &req in &workload.requests {
        if req == union {
            root_required = true;
        } else {
            children.push(SubNode::leaf(req));
        }
    }
    if children.is_empty() {
        // single request equal to the union: degenerate, naive
        return LogicalPlan::naive(workload);
    }
    let mut root = SubNode::internal(union, children);
    root.required = root_required;
    LogicalPlan {
        subplans: vec![root],
    }
}

/// The shared-sort plan: each request's parent is the smallest request
/// strictly containing it; parentless requests are computed from `R`.
#[allow(clippy::needless_range_loop)] // parallel index arrays
pub fn containment_forest(workload: &Workload) -> LogicalPlan {
    let n = workload.requests.len();
    // parent[i] = index of the smallest strict superset of request i.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if workload.requests[i].is_strict_subset_of(workload.requests[j]) {
                let better = match parent[i] {
                    None => true,
                    Some(p) => {
                        let cand = workload.requests[j];
                        let cur = workload.requests[p];
                        (cand.len(), cand.0) < (cur.len(), cur.0)
                    }
                };
                if better {
                    parent[i] = Some(j);
                }
            }
        }
    }
    // Build trees bottom-up: deepest (largest) first is unnecessary; we
    // assemble children lists then construct recursively.
    let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        if let Some(p) = parent[i] {
            children_of[p].push(i);
        }
    }
    fn build(i: usize, workload: &Workload, children_of: &[Vec<usize>]) -> SubNode {
        SubNode {
            cols: workload.requests[i],
            required: true,
            kind: crate::plan::NodeKind::GroupBy,
            children: children_of[i]
                .iter()
                .map(|&c| build(c, workload, children_of))
                .collect(),
        }
    }
    let subplans: Vec<SubNode> = (0..n)
        .filter(|&i| parent[i].is_none())
        .map(|i| build(i, workload, &children_of))
        .collect();
    LogicalPlan { subplans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3]),
                Column::from_i64(vec![1, 1, 2]),
                Column::from_i64(vec![2, 2, 2]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sc_input_gets_union_top() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let (plan, kind) = grouping_sets_plan(&w);
        assert_eq!(kind, BaselineKind::UnionTop);
        plan.validate(&w).unwrap();
        assert_eq!(plan.subplans.len(), 1);
        let root = &plan.subplans[0];
        assert_eq!(root.cols, ColSet::from_cols([0, 1, 2]));
        assert!(!root.required);
        assert_eq!(root.children.len(), 3);
    }

    #[test]
    fn cont_input_gets_shared_sort_forest() {
        // the paper's CONT workload shape: three singles + three pairs
        let t = table();
        let w = Workload::new(
            "r",
            &t,
            &["a", "b", "c"],
            &[
                vec!["a"],
                vec!["b"],
                vec!["c"],
                vec!["a", "b"],
                vec!["a", "c"],
                vec!["b", "c"],
            ],
        )
        .unwrap();
        let (plan, kind) = grouping_sets_plan(&w);
        assert_eq!(kind, BaselineKind::SharedSort);
        plan.validate(&w).unwrap();
        // roots = the three pairs; singles are children of a pair
        assert_eq!(plan.subplans.len(), 3);
        assert!(plan
            .subplans
            .iter()
            .all(|sp| sp.cols.len() == 2 && sp.required));
        let singles: usize = plan.subplans.iter().map(|sp| sp.children.len()).sum();
        assert_eq!(singles, 3);
    }

    #[test]
    fn union_equal_to_request_marks_root_required() {
        let t = table();
        let w = Workload::new(
            "r",
            &t,
            &["a", "b"],
            &[vec!["a"], vec!["b"], vec!["a", "b"]],
        )
        .unwrap();
        let plan = union_top(&w);
        plan.validate(&w).unwrap();
        assert!(plan.subplans[0].required);
        assert_eq!(plan.subplans[0].children.len(), 2);
    }

    #[test]
    fn single_request_degenerates_to_naive() {
        let t = table();
        let w = Workload::new("r", &t, &["a"], &[vec!["a"]]).unwrap();
        let plan = union_top(&w);
        plan.validate(&w).unwrap();
        assert_eq!(plan.node_count(), 1);
    }
}
