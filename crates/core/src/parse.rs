//! A small parser for GROUPING SETS specifications.
//!
//! Lets applications (and the CLI) state workloads the way the paper's
//! §1 examples do:
//!
//! ```text
//! GROUPING SETS ((a), (b), (c), (a, c))
//! ((a), (b), (a, c))
//! a, b, c                 — shorthand for all single-column sets
//! ```

use crate::error::{CoreError, Result};

/// Parse a GROUPING SETS specification into lists of column names.
///
/// Accepted forms (case-insensitive keyword, whitespace-insensitive):
/// * `GROUPING SETS ((a), (b,c))` — the SQL construct,
/// * `((a), (b,c))` — just the set list,
/// * `a, b, c` — bare names, shorthand for single-column sets.
///
/// ```
/// let sets = gbmqo_core::parse_grouping_sets("GROUPING SETS ((a), (b, c))").unwrap();
/// assert_eq!(sets, vec![vec!["a".to_string()], vec!["b".into(), "c".into()]]);
/// ```
pub fn parse_grouping_sets(input: &str) -> Result<Vec<Vec<String>>> {
    let mut s = input.trim();
    let upper = s.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("GROUPING") {
        let rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix("SETS") {
            let skip = s.len() - after.len();
            s = s[skip..].trim();
        } else {
            return Err(CoreError::InvalidWorkload(
                "expected `SETS` after `GROUPING`".to_string(),
            ));
        }
    }
    let s = s.trim();
    if s.is_empty() {
        return Err(CoreError::InvalidWorkload(
            "empty grouping sets".to_string(),
        ));
    }

    if !s.starts_with('(') {
        // Bare column list: one single-column set per name.
        return s
            .split(',')
            .map(|name| {
                let name = name.trim();
                if name.is_empty() || !is_identifier(name) {
                    Err(CoreError::InvalidWorkload(format!(
                        "invalid column name: {name:?}"
                    )))
                } else {
                    Ok(vec![name.to_string()])
                }
            })
            .collect();
    }

    // Outer parenthesized list of parenthesized sets.
    let inner = strip_outer_parens(s)?;
    let mut sets: Vec<Vec<String>> = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut saw_set = false;
    for ch in inner.chars() {
        match ch {
            '(' => {
                depth += 1;
                if depth == 1 {
                    current.clear();
                    saw_set = true;
                    continue;
                }
                return Err(CoreError::InvalidWorkload(
                    "nested parentheses inside a grouping set".to_string(),
                ));
            }
            ')' => {
                if depth == 0 {
                    return Err(CoreError::InvalidWorkload("unbalanced `)`".to_string()));
                }
                depth -= 1;
                if depth == 0 {
                    let cols: Vec<String> = current
                        .split(',')
                        .map(str::trim)
                        .filter(|c| !c.is_empty())
                        .map(str::to_string)
                        .collect();
                    if cols.is_empty() {
                        return Err(CoreError::InvalidWorkload(
                            "empty grouping set `()`".to_string(),
                        ));
                    }
                    for c in &cols {
                        if !is_identifier(c) {
                            return Err(CoreError::InvalidWorkload(format!(
                                "invalid column name: {c:?}"
                            )));
                        }
                    }
                    sets.push(cols);
                }
            }
            ',' if depth == 0 => {}
            c if depth == 1 => current.push(c),
            c if c.is_whitespace() => {}
            c => {
                return Err(CoreError::InvalidWorkload(format!(
                    "unexpected character {c:?} between grouping sets"
                )))
            }
        }
    }
    if depth != 0 {
        return Err(CoreError::InvalidWorkload("unbalanced `(`".to_string()));
    }
    if !saw_set || sets.is_empty() {
        return Err(CoreError::InvalidWorkload(
            "no grouping sets found".to_string(),
        ));
    }
    Ok(sets)
}

fn strip_outer_parens(s: &str) -> Result<&str> {
    let s = s.trim();
    if !s.starts_with('(') || !s.ends_with(')') {
        return Err(CoreError::InvalidWorkload(
            "grouping sets must be parenthesized".to_string(),
        ));
    }
    // Confirm the first '(' matches the final ')'.
    let mut depth = 0i64;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 && i != s.len() - 1 {
                    return Err(CoreError::InvalidWorkload(
                        "expected a single parenthesized list of sets".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(CoreError::InvalidWorkload(
            "unbalanced parentheses".to_string(),
        ));
    }
    Ok(&s[1..s.len() - 1])
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().unwrap().is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(sets: &[&[&str]]) -> Vec<Vec<String>> {
        sets.iter()
            .map(|s| s.iter().map(|c| c.to_string()).collect())
            .collect()
    }

    #[test]
    fn parses_full_grouping_sets_syntax() {
        let got = parse_grouping_sets("GROUPING SETS ((a), (b), (c), (a, c))").unwrap();
        assert_eq!(got, owned(&[&["a"], &["b"], &["c"], &["a", "c"]]));
    }

    #[test]
    fn parses_bare_set_list_and_keyword_case() {
        let got = parse_grouping_sets("grouping sets ((x,y))").unwrap();
        assert_eq!(got, owned(&[&["x", "y"]]));
        let got = parse_grouping_sets("((a),(b))").unwrap();
        assert_eq!(got, owned(&[&["a"], &["b"]]));
    }

    #[test]
    fn parses_bare_column_shorthand() {
        let got = parse_grouping_sets("a, b, l_shipdate").unwrap();
        assert_eq!(got, owned(&[&["a"], &["b"], &["l_shipdate"]]));
    }

    #[test]
    fn whitespace_is_irrelevant() {
        let got = parse_grouping_sets("  (( a ,b ) , ( c ))  ").unwrap();
        assert_eq!(got, owned(&[&["a", "b"], &["c"]]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "GROUPING ((a))",
            "((a)",
            "((a)))",
            "(())",
            "((a,(b)))",
            "((a)) extra",
            "((1abc))",
            "((a b))",
            "a,,b",
        ] {
            assert!(
                parse_grouping_sets(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn identifier_rules() {
        assert!(is_identifier("l_shipdate"));
        assert!(is_identifier("t.col"));
        assert!(!is_identifier("1col"));
        assert!(!is_identifier("a b"));
        assert!(!is_identifier(""));
    }
}
