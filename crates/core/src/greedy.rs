//! The GB-MQO search algorithm (§4.2, Figure 5): greedy hill-climbing
//! over sub-plan merges, with memoized pair evaluations and the two
//! pruning techniques of §4.3.

use crate::colset::ColSet;
use crate::coster::EdgeCoster;
use crate::error::Result;
use crate::extensions::MAX_CUBE_WIDTH;
use crate::merge::sub_plan_merge;
use crate::plan::{LogicalPlan, NodeKind, SubNode};
use crate::schedule::min_storage;
use crate::workload::Workload;
use gbmqo_cost::CostModel;
use rustc_hash::FxHashMap;

/// Knobs of the search (each maps to a paper section/experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Restrict SubPlanMerge to type (b) — binary trees (§4.2, §6.5).
    pub binary_only: bool,
    /// Subsumption-based pruning (§4.3.1).
    pub subsumption_pruning: bool,
    /// Monotonicity-based pruning (§4.3.2).
    pub monotonicity_pruning: bool,
    /// §7.1 in-search extension: besides the Group By tree shapes of
    /// SubPlanMerge, propose a single native `CUBE(v1 ∪ v2)` /
    /// `ROLLUP(v1 ∪ v2)` node covering *every* required set of both
    /// sub-plans as a merge alternative. One accepted CUBE can thereby
    /// replace a whole subtree of earlier pairwise merges. Off by
    /// default (the paper's core algorithm).
    pub cube_rollup_merges: bool,
    /// Benefit-greedy candidate ordering (after Kathuria & Sudarshan's
    /// greedy view-selection heuristic): rank uncached pairs by a merge
    /// benefit estimated from cardinality probes — which are free in the
    /// optimizer-call metric — and evaluate them best-first, stopping as
    /// soon as the next estimate cannot beat the best improvement already
    /// found this round. Cuts cost-model calls on wide workloads at a
    /// bounded plan-quality loss. Off by default.
    pub benefit_greedy: bool,
    /// Reject merges whose sub-plan needs more intermediate storage than
    /// this many bytes (§4.4.2's constrained search).
    pub max_intermediate_bytes: Option<f64>,
    /// Minimum cost improvement to accept a merge.
    pub epsilon: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            binary_only: false,
            subsumption_pruning: false,
            monotonicity_pruning: false,
            cube_rollup_merges: false,
            benefit_greedy: false,
            max_intermediate_bytes: None,
            epsilon: 1e-9,
        }
    }
}

impl SearchConfig {
    /// The configuration the paper's main experiments run with: all merge
    /// types, both pruning techniques on.
    pub fn pruned() -> Self {
        SearchConfig {
            subsumption_pruning: true,
            monotonicity_pruning: true,
            ..Default::default()
        }
    }
}

/// Counters describing one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Hill-climbing rounds until the local minimum.
    pub rounds: u64,
    /// Pair merges actually evaluated (cache misses).
    pub merges_evaluated: u64,
    /// Pairs skipped by subsumption pruning.
    pub pruned_subsumption: u64,
    /// Pairs skipped by monotonicity pruning.
    pub pruned_monotonicity: u64,
    /// Pair evaluations skipped by the benefit-ordered early cutoff
    /// ([`SearchConfig::benefit_greedy`]).
    pub pruned_benefit: u64,
    /// Calls issued to the underlying cost model — the paper's "number of
    /// calls to the query optimizer".
    pub optimizer_calls: u64,
    /// Cost of the naive plan.
    pub naive_cost: f64,
    /// Cost of the returned plan.
    pub final_cost: f64,
    /// True when the plan came out of a [`crate::cache::PlanCache`] and
    /// the search (and all its optimizer calls) was skipped entirely. A
    /// fresh search always reports `false`.
    pub cache_hit: bool,
}

struct Entry {
    id: u64,
    node: SubNode,
    cost: f64,
}

/// The GB-MQO optimizer.
#[derive(Debug, Clone, Default)]
pub struct GbMqo {
    config: SearchConfig,
}

impl GbMqo {
    /// Optimizer with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimizer with an explicit configuration.
    pub fn with_config(config: SearchConfig) -> Self {
        GbMqo { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Run the search of Figure 5: start from the naive plan and keep
    /// applying the best cost-improving SubPlanMerge until none improves.
    pub fn plan(
        &self,
        workload: &Workload,
        model: &mut dyn CostModel,
    ) -> Result<(LogicalPlan, SearchStats)> {
        let mut coster = EdgeCoster::new(model, workload.base_ordinals.clone());
        let mut stats = SearchStats::default();

        let mut next_id: u64 = 0;
        let mut alloc_id = || {
            let id = next_id;
            next_id += 1;
            id
        };

        // Step 1-2: the naive plan and its cost.
        let mut entries: Vec<Entry> = workload
            .requests
            .iter()
            .map(|&cols| {
                let node = SubNode::leaf(cols);
                let cost = node.subtree_cost(None, &mut coster);
                Entry {
                    id: alloc_id(),
                    node,
                    cost,
                }
            })
            .collect();
        stats.naive_cost = entries.iter().map(|e| e.cost).sum();

        // Memo: best merge candidate per (id, id) pair. `None` = the pair
        // has no admissible candidate.
        let mut pair_cache: FxHashMap<(u64, u64), Option<(SubNode, f64)>> = FxHashMap::default();
        // Monotonicity state: unions whose merge failed to improve.
        let mut failed_unions: Vec<ColSet> = Vec::new();

        loop {
            stats.rounds += 1;
            let unions: Vec<Vec<ColSet>> = if self.config.subsumption_pruning {
                // For pruning we need all live pair unions.
                let mut per_i = Vec::with_capacity(entries.len());
                for i in 0..entries.len() {
                    let mut row = Vec::with_capacity(entries.len());
                    for j in 0..entries.len() {
                        row.push(entries[i].node.cols.union(entries[j].node.cols));
                    }
                    per_i.push(row);
                }
                per_i
            } else {
                Vec::new()
            };

            let mut best: Option<(usize, usize, SubNode, f64)> = None;
            let mut best_improvement = f64::NEG_INFINITY;
            // Candidate pairs surviving the pruning checks but not yet
            // evaluated, with their benefit estimates (benefit-greedy only).
            let mut pending: Vec<(usize, usize, f64)> = Vec::new();
            for i in 0..entries.len() {
                for j in i + 1..entries.len() {
                    let key = pair_key(entries[i].id, entries[j].id);
                    if let std::collections::hash_map::Entry::Vacant(slot) = pair_cache.entry(key) {
                        let union = entries[i].node.cols.union(entries[j].node.cols);
                        // Both pruning techniques reason about *introduced*
                        // union nodes; a subsumption pair (one root contains
                        // the other) introduces no new node and is always
                        // evaluated (its merge is the CONT-style rewrite the
                        // paper's §6.1 relies on).
                        let subsuming = entries[i].node.cols.is_subset_of(entries[j].node.cols)
                            || entries[j].node.cols.is_subset_of(entries[i].node.cols);
                        if !subsuming {
                            if self.config.monotonicity_pruning
                                && failed_unions.iter().any(|f| f.is_subset_of(union))
                            {
                                stats.pruned_monotonicity += 1;
                                continue;
                            }
                            if self.config.subsumption_pruning
                                && dominated(&unions, i, j, union, entries.len())
                            {
                                stats.pruned_subsumption += 1;
                                continue;
                            }
                        }
                        if self.config.benefit_greedy {
                            // Defer the (expensive) pair evaluation; rank by
                            // the benefit a merge through the union node
                            // would yield under the cardinality model. The
                            // probes are free in the optimizer-call metric.
                            // Non-subsuming leaves: two base scans become one
                            // base scan plus two scans of the union result,
                            // saving base − 2·d(∪). Subsuming pairs skip one
                            // base scan outright, saving base − d(∪).
                            let d_union = coster.cardinality(union);
                            let estimate = if subsuming {
                                coster.base_rows() - d_union
                            } else {
                                coster.base_rows() - 2.0 * d_union
                            };
                            pending.push((i, j, estimate));
                            continue;
                        }
                        let cand = self.evaluate_pair(
                            &entries[i].node,
                            &entries[j].node,
                            &mut coster,
                            &mut stats,
                        );
                        if self.config.monotonicity_pruning && !subsuming {
                            let improves = cand.as_ref().is_some_and(|(_, cost)| {
                                *cost < entries[i].cost + entries[j].cost - self.config.epsilon
                            });
                            if !improves {
                                failed_unions.push(union);
                            }
                        }
                        slot.insert(cand);
                    }
                    if let Some(Some((node, cost))) = pair_cache.get(&key) {
                        // Accept the pair with the largest cost improvement
                        // (step 5 of Figure 5 picks the lowest-cost plan in
                        // MP, which is the same thing).
                        let improvement = (entries[i].cost + entries[j].cost) - cost;
                        if improvement > self.config.epsilon && improvement > best_improvement {
                            best_improvement = improvement;
                            best = Some((i, j, node.clone(), *cost));
                        }
                    }
                }
            }

            // Benefit-greedy round completion: evaluate deferred pairs in
            // descending estimated-benefit order, stopping once the next
            // estimate can no longer beat the best improvement found.
            pending.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            for (rank, &(i, j, estimate)) in pending.iter().enumerate() {
                if estimate <= best_improvement.max(self.config.epsilon) {
                    stats.pruned_benefit += (pending.len() - rank) as u64;
                    break;
                }
                let key = pair_key(entries[i].id, entries[j].id);
                let union = entries[i].node.cols.union(entries[j].node.cols);
                let subsuming = entries[i].node.cols.is_subset_of(entries[j].node.cols)
                    || entries[j].node.cols.is_subset_of(entries[i].node.cols);
                let cand =
                    self.evaluate_pair(&entries[i].node, &entries[j].node, &mut coster, &mut stats);
                if self.config.monotonicity_pruning && !subsuming {
                    let improves = cand.as_ref().is_some_and(|(_, cost)| {
                        *cost < entries[i].cost + entries[j].cost - self.config.epsilon
                    });
                    if !improves {
                        failed_unions.push(union);
                    }
                }
                if let Some((node, cost)) = &cand {
                    let improvement = (entries[i].cost + entries[j].cost) - cost;
                    if improvement > self.config.epsilon && improvement > best_improvement {
                        best_improvement = improvement;
                        best = Some((i, j, node.clone(), *cost));
                    }
                }
                pair_cache.insert(key, cand);
            }

            match best {
                None => break,
                Some((i, j, node, cost)) => {
                    // Replace entries i and j with the merged sub-plan.
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    entries.swap_remove(hi);
                    entries.swap_remove(lo);
                    entries.push(Entry {
                        id: alloc_id(),
                        node,
                        cost,
                    });
                }
            }
        }

        let plan = LogicalPlan {
            subplans: entries.into_iter().map(|e| e.node).collect(),
        };
        // Edge costs are cached, so this recomputation issues no new
        // optimizer calls.
        stats.final_cost = plan.cost(&mut coster);
        stats.optimizer_calls = coster.model_calls();
        plan.validate(workload)?;
        Ok((plan, stats))
    }

    /// Evaluate all merge candidates for a pair, returning the cheapest
    /// admissible one and its cost.
    fn evaluate_pair(
        &self,
        a: &SubNode,
        b: &SubNode,
        coster: &mut EdgeCoster<'_>,
        stats: &mut SearchStats,
    ) -> Option<(SubNode, f64)> {
        stats.merges_evaluated += 1;
        let mut candidates = sub_plan_merge(a, b, self.config.binary_only);
        if self.config.cube_rollup_merges {
            candidates.extend(cube_rollup_candidates(a, b));
        }
        let mut best: Option<(SubNode, f64)> = None;
        for cand in candidates {
            if let Some(limit) = self.config.max_intermediate_bytes {
                let mut d = |s: ColSet| coster.result_bytes(s);
                if min_storage(&cand, &mut d) > limit {
                    continue;
                }
            }
            let cost = cand.subtree_cost(None, coster);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((cand, cost));
            }
        }
        best
    }
}

/// §7.1's in-search merge alternatives: one native CUBE (and, when the
/// required sets nest, ROLLUP) node over `a.cols ∪ b.cols` whose
/// children are *all* required sets of both sub-plans, flattened to
/// leaves. Because the node absorbs every required set at once, a single
/// accepted candidate can replace a whole subtree of pairwise Group By
/// merges accumulated in earlier rounds.
fn cube_rollup_candidates(a: &SubNode, b: &SubNode) -> Vec<SubNode> {
    let union = a.cols.union(b.cols);
    let mut required: Vec<ColSet> = Vec::new();
    a.collect_required(&mut required);
    b.collect_required(&mut required);
    let root_required = required.contains(&union);
    let children: Vec<SubNode> = required
        .iter()
        .filter(|&&r| r != union)
        .map(|&r| SubNode::leaf(r))
        .collect();
    if children.is_empty() {
        // Only the union itself is required: a plain Group By already
        // covers it, and CUBE/ROLLUP would pay for unneeded subsets.
        return Vec::new();
    }

    let mut out = Vec::new();
    if union.len() <= MAX_CUBE_WIDTH {
        out.push(SubNode {
            cols: union,
            required: root_required,
            kind: NodeKind::Cube,
            children: children.clone(),
        });
    }
    let mut chain: Vec<ColSet> = children.iter().map(|c| c.cols).collect();
    chain.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let nested = {
        let mut prev = union;
        chain.iter().all(|&s| {
            let ok = s.is_strict_subset_of(prev);
            prev = s;
            ok
        })
    };
    if nested {
        out.push(SubNode {
            cols: union,
            required: root_required,
            kind: NodeKind::Rollup,
            children,
        });
    }
    out
}

fn pair_key(a: u64, b: u64) -> (u64, u64) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Subsumption pruning (§4.3.1): pair (i,j) is dominated if some other
/// live pair's union is a strict subset of (i,j)'s union.
#[allow(clippy::needless_range_loop)] // index pairs are the clearer idiom here
fn dominated(unions: &[Vec<ColSet>], i: usize, j: usize, union_ij: ColSet, n: usize) -> bool {
    for x in 0..n {
        for y in x + 1..n {
            if (x, y) == (i, j) {
                continue;
            }
            if unions[x][y].is_strict_subset_of(union_ij) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_cost::CardinalityCostModel;
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    /// 100 rows; a,b correlated (joint distinct 5), c independent dense.
    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let a: Vec<i64> = (0..100).map(|i| i % 5).collect();
        let b: Vec<i64> = (0..100).map(|i| (i % 5) * 2).collect();
        let c: Vec<i64> = (0..100).collect();
        Table::new(
            schema,
            vec![
                Column::from_i64(a),
                Column::from_i64(b),
                Column::from_i64(c),
            ],
        )
        .unwrap()
    }

    fn optimize(config: SearchConfig) -> (LogicalPlan, SearchStats, Workload) {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let (plan, stats) = GbMqo::with_config(config).plan(&w, &mut model).unwrap();
        (plan, stats, w)
    }

    #[test]
    fn merges_correlated_columns_and_leaves_dense_alone() {
        let (plan, stats, w) = optimize(SearchConfig::default());
        plan.validate(&w).unwrap();
        // Expected: (a,b) merged (joint 5 ≪ 100), c computed from R.
        assert!(stats.final_cost < stats.naive_cost);
        let merged = plan
            .subplans
            .iter()
            .find(|sp| sp.cols == ColSet::from_cols([0, 1]))
            .expect("a,b should merge: {plan:?}");
        assert_eq!(merged.children.len(), 2);
        assert!(plan
            .subplans
            .iter()
            .any(|sp| sp.cols == ColSet::single(2) && sp.children.is_empty()));
        // naive = 300 (3 scans); merged = 100 + 5 + 5 + 100 = 210
        assert_eq!(stats.naive_cost, 300.0);
        assert_eq!(stats.final_cost, 210.0);
    }

    #[test]
    fn local_minimum_terminates() {
        let (plan, stats, _) = optimize(SearchConfig::default());
        assert!(stats.rounds >= 2);
        assert!(plan.node_count() >= 3);
    }

    #[test]
    fn binary_only_still_finds_the_merge() {
        let (plan, stats, w) = optimize(SearchConfig {
            binary_only: true,
            ..Default::default()
        });
        plan.validate(&w).unwrap();
        assert_eq!(stats.final_cost, 210.0);
    }

    #[test]
    fn pruning_preserves_result_on_disjoint_single_columns() {
        // §4.3 soundness: with the cardinality model and binary merges,
        // pruning must not change the found plan's cost.
        let base = SearchConfig {
            binary_only: true,
            ..Default::default()
        };
        let (_, stats_plain, _) = optimize(base.clone());
        let (_, stats_pruned, _) = optimize(SearchConfig {
            subsumption_pruning: true,
            monotonicity_pruning: true,
            ..base
        });
        assert_eq!(stats_plain.final_cost, stats_pruned.final_cost);
        assert!(stats_pruned.merges_evaluated <= stats_plain.merges_evaluated);
    }

    #[test]
    fn optimizer_call_counting() {
        let (_, stats, _) = optimize(SearchConfig::default());
        assert!(stats.optimizer_calls > 0);
        assert!(stats.merges_evaluated > 0);
    }

    #[test]
    fn storage_constraint_forbids_merging() {
        // With a zero-byte budget no intermediate can be materialized:
        // the search must return the naive plan.
        let (plan, stats, w) = optimize(SearchConfig {
            max_intermediate_bytes: Some(0.0),
            ..Default::default()
        });
        plan.validate(&w).unwrap();
        assert_eq!(plan.node_count(), 3);
        assert_eq!(stats.final_cost, stats.naive_cost);
    }

    #[test]
    fn subsumption_inputs_collapse() {
        // requests: (a), (a,b) → optimizer should compute (a) from (a,b)
        let t = table();
        let w = Workload::new("r", &t, &["a", "b"], &[vec!["a"], vec!["a", "b"]]).unwrap();
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let (plan, stats) = GbMqo::new().plan(&w, &mut model).unwrap();
        plan.validate(&w).unwrap();
        assert_eq!(plan.subplans.len(), 1);
        let root = &plan.subplans[0];
        assert_eq!(root.cols, ColSet::from_cols([0, 1]));
        assert!(root.required);
        assert_eq!(root.children.len(), 1);
        // naive: 200; merged: R→ab (100) + ab→a (5) = 105
        assert_eq!(stats.final_cost, 105.0);
    }

    /// An [`gbmqo_cost::OptimizerCostModel`] where materializing
    /// intermediates is expensive — the regime where a pipelined
    /// CUBE/ROLLUP beats a forest of materialized Group Bys.
    fn expensive_write_model(t: &Table) -> gbmqo_cost::OptimizerCostModel<ExactSource<'_>> {
        let constants = gbmqo_cost::CostConstants {
            byte_write: 50.0,
            ..Default::default()
        };
        gbmqo_cost::OptimizerCostModel::new(ExactSource::new(t), gbmqo_cost::IndexSnapshot::none())
            .with_constants(constants)
    }

    #[test]
    fn cube_merge_replaces_pairwise_subtree() {
        // All non-empty subsets of {a,b,c} — the workload a SQL `CUBE
        // (a, b, c)` expands to: seven required sets. A Group By forest
        // covering them needs ≥ 3 pairwise merges with materialized
        // intermediates; one CUBE(a,b,c) node computes all seven
        // pipelined. With materialization priced high, the in-search
        // CUBE alternative must absorb the whole subtree. All three
        // columns are low-cardinality so every cube level stays small.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64((0..600).map(|i| i % 4).collect()),
                Column::from_i64((0..600).map(|i| i % 5).collect()),
                Column::from_i64((0..600).map(|i| i % 3).collect()),
            ],
        )
        .unwrap();
        let w = Workload::up_to_k_columns("r", &t, &["a", "b", "c"], 3).unwrap();
        assert_eq!(w.requests.len(), 7);

        let mut model = expensive_write_model(&t);
        let (baseline, base_stats) = GbMqo::new().plan(&w, &mut model).unwrap();
        baseline.validate(&w).unwrap();
        assert!(!baseline
            .subplans
            .iter()
            .any(|sp| sp.kind == NodeKind::Cube || sp.kind == NodeKind::Rollup));

        let mut model = expensive_write_model(&t);
        let config = SearchConfig {
            cube_rollup_merges: true,
            ..Default::default()
        };
        let (plan, stats) = GbMqo::with_config(config).plan(&w, &mut model).unwrap();
        plan.validate(&w).unwrap();

        let cube = plan
            .subplans
            .iter()
            .find(|sp| sp.kind == NodeKind::Cube)
            .expect("a CUBE node should be accepted: {plan:?}");
        let mut covered = Vec::new();
        cube.collect_required(&mut covered);
        // Covering ≥ 4 required sets means the node stands in for ≥ 3
        // pairwise merges' worth of tree.
        assert!(covered.len() >= 4, "cube covers {covered:?}");
        assert!(stats.final_cost <= base_stats.final_cost);
        assert!(stats.final_cost < stats.naive_cost);
    }

    #[test]
    fn cube_merges_beat_exhaustive_group_by_forest() {
        // Disjoint single columns admit the exhaustive harness. Under the
        // expensive-write model the accepted CUBE must cost no more than
        // the *optimal* Group By forest (the exhaustive search cannot
        // propose CUBE nodes).
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut model = expensive_write_model(&t);
        let (_, optimal_cost) = crate::exhaustive::optimal_plan(&w, &mut model).unwrap();

        let mut model = expensive_write_model(&t);
        let config = SearchConfig {
            cube_rollup_merges: true,
            ..Default::default()
        };
        let (plan, stats) = GbMqo::with_config(config).plan(&w, &mut model).unwrap();
        plan.validate(&w).unwrap();
        assert!(
            stats.final_cost <= optimal_cost + 1e-6,
            "cube search {} vs exhaustive {}",
            stats.final_cost,
            optimal_cost
        );
    }

    #[test]
    fn rollup_merge_accepted_on_nested_chain() {
        // (a) ⊂ (a,b): the union's required sets form a chain, so the
        // ROLLUP alternative is proposed alongside CUBE and plain merges.
        let t = table();
        let w = Workload::new("r", &t, &["a", "b"], &[vec!["a"], vec!["a", "b"]]).unwrap();
        let mut model = expensive_write_model(&t);
        let config = SearchConfig {
            cube_rollup_merges: true,
            ..Default::default()
        };
        let (plan, stats) = GbMqo::with_config(config).plan(&w, &mut model).unwrap();
        plan.validate(&w).unwrap();
        assert_eq!(plan.subplans.len(), 1);
        assert!(matches!(
            plan.subplans[0].kind,
            NodeKind::Rollup | NodeKind::Cube
        ));
        assert!(stats.final_cost < stats.naive_cost);
    }

    #[test]
    fn benefit_greedy_matches_plain_greedy_on_single_columns() {
        // With leaf entries the benefit estimate is exact under the
        // cardinality model, so the merge trajectory — and the final
        // cost — must match the paper's greedy.
        let (plan, stats, w) = optimize(SearchConfig {
            benefit_greedy: true,
            ..Default::default()
        });
        plan.validate(&w).unwrap();
        assert_eq!(stats.final_cost, 210.0);
        assert!(
            stats.pruned_benefit > 0,
            "the cutoff should skip some evaluations: {stats:?}"
        );
    }

    #[test]
    fn benefit_greedy_saves_optimizer_calls() {
        let (_, plain, _) = optimize(SearchConfig::default());
        let (_, benefit, _) = optimize(SearchConfig {
            benefit_greedy: true,
            ..Default::default()
        });
        assert!(
            benefit.optimizer_calls < plain.optimizer_calls,
            "benefit {} vs plain {}",
            benefit.optimizer_calls,
            plain.optimizer_calls
        );
        assert!(benefit.merges_evaluated <= plain.merges_evaluated);
    }

    #[test]
    fn benefit_greedy_composes_with_pruning() {
        let (plan, stats, w) = optimize(SearchConfig {
            benefit_greedy: true,
            subsumption_pruning: true,
            monotonicity_pruning: true,
            binary_only: true,
            ..Default::default()
        });
        plan.validate(&w).unwrap();
        assert_eq!(stats.final_cost, 210.0);
    }

    #[test]
    fn cube_merges_off_by_default_keeps_pinned_costs() {
        // The flag must not perturb the paper-pinned default behavior.
        assert!(!SearchConfig::default().cube_rollup_merges);
        let (plan, stats, w) = optimize(SearchConfig::default());
        plan.validate(&w).unwrap();
        assert_eq!(stats.final_cost, 210.0);
        assert!(plan.subplans.iter().all(|sp| sp.kind == NodeKind::GroupBy));
    }
}
