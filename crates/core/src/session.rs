//! The serving-oriented entry point: a [`Session`] owns an engine, a
//! search configuration, a cost-model specification, and a
//! [`PlanCache`], and answers GROUPING SETS requests through one method.
//!
//! The free functions this replaces (`execute_grouping_sets`,
//! `execute_plan`, `GbMqo::optimize`) forced every caller to wire the
//! optimizer, cost model, engine and executor together by hand, and to
//! re-run the O(n²)-per-round merge search on every request. A session
//! does that wiring once:
//!
//! ```
//! use gbmqo_core::prelude::*;
//! use gbmqo_storage::{Column, DataType, Field, Schema, Table};
//!
//! let schema = Schema::new(vec![
//!     Field::new("a", DataType::Int64),
//!     Field::new("b", DataType::Int64),
//! ]).unwrap();
//! let table = Table::new(schema, vec![
//!     Column::from_i64((0..100).map(|i| i % 4).collect()),
//!     Column::from_i64((0..100).map(|i| i % 10).collect()),
//! ]).unwrap();
//!
//! let mut session = Session::builder()
//!     .table("r", table.clone())
//!     .search(SearchConfig::pruned())
//!     .mode(ExecutionMode::Parallel)
//!     .plan_cache(16)
//!     .build()
//!     .unwrap();
//!
//! let workload = Workload::single_columns("r", &table, &["a", "b"]).unwrap();
//! let first = session.grouping_sets(&workload).unwrap();
//! assert!(!first.stats.cache_hit);
//! let again = session.grouping_sets(&workload).unwrap();
//! assert!(again.stats.cache_hit, "second request reuses the cached plan");
//! ```

use crate::api::{assemble_union, run_mode, ExecutionMode, GroupingSetsResult};
use crate::cache::{CacheStats, PlanCache, WorkloadFingerprint};
use crate::colset::ColSet;
use crate::error::{CoreError, Result};
use crate::executor::{
    next_exec_id, plan_group_estimates, CacheHooks, ExecutionReport, GroupEstimates,
    ParallelOptions, PlanObservation, WHOLE_TABLE_PIN,
};
use crate::greedy::{GbMqo, SearchConfig, SearchStats};
use crate::plan::{LogicalPlan, SubNode};
use crate::workload::Workload;
use gbmqo_cost::{CardinalityCostModel, CostModel, IndexSnapshot, OptimizerCostModel};
use gbmqo_exec::{
    hash_group_by, AggFunc, AggSpec, CancelToken, Engine, ExecMetrics, GroupByQuery,
    GroupByStrategy,
};
use gbmqo_feedback::{q_error, AdaptiveCardinalitySource, FeedbackStore, NodeObservation};
use gbmqo_matcache::{
    agg_signature, CacheControl, CachedAggregate, MatCache, MatCacheStats, StaleAggregate,
};
use gbmqo_stats::{DistinctEstimator, ExactSource, SampledSource, TableSketches};
use gbmqo_storage::{shard_table_name, Catalog, Table};
use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Which cost model a [`Session`] optimizes under. The session builds a
/// fresh model instance per search (they borrow catalog tables), so the
/// spec is plain data.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum CostModelSpec {
    /// §3.2.1's cardinality model over exact statistics.
    #[default]
    Cardinality,
    /// §3.2.1's cardinality model over a reservoir sample.
    SampledCardinality {
        /// Rows in the reservoir sample.
        sample_size: usize,
        /// Distinct-value estimator run over the sample.
        estimator: DistinctEstimator,
        /// Sampling seed (fixed for reproducible plans).
        seed: u64,
    },
    /// §3.2.2's simulated query-optimizer model: sampled cardinalities
    /// plus physical-design awareness (the session snapshots the base
    /// table's indexes at search time).
    Optimizer {
        /// Rows in the reservoir sample.
        sample_size: usize,
        /// Distinct-value estimator run over the sample.
        estimator: DistinctEstimator,
        /// Sampling seed (fixed for reproducible plans).
        seed: u64,
    },
}

impl CostModelSpec {
    /// A stable tag for plan-cache fingerprints: two specs with the same
    /// tag produce the same plans (given the same statistics version).
    fn tag(&self) -> u64 {
        let mut h = rustc_hash::FxHasher::default();
        match self {
            CostModelSpec::Cardinality => 0u8.hash(&mut h),
            CostModelSpec::SampledCardinality {
                sample_size,
                estimator,
                seed,
            } => {
                1u8.hash(&mut h);
                sample_size.hash(&mut h);
                format!("{estimator:?}").hash(&mut h);
                seed.hash(&mut h);
            }
            CostModelSpec::Optimizer {
                sample_size,
                estimator,
                seed,
            } => {
                2u8.hash(&mut h);
                sample_size.hash(&mut h);
                format!("{estimator:?}").hash(&mut h);
                seed.hash(&mut h);
            }
        }
        h.finish()
    }
}

/// When stale materialized aggregates are brought current after an
/// append (see [`Session::append`]). Refreshing aggregates only the
/// appended row range (the delta) and merges it into the cached result
/// under the paper's §7 aggregate-union identity, instead of discarding
/// the cache and rescanning the whole base table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// Refresh a stale covering entry when a lookup first wants it (the
    /// default): appends stay cheap, the first post-append request pays
    /// the (delta-sized) merge.
    #[default]
    Lazy,
    /// Refresh every stale entry synchronously inside
    /// [`Session::append`]: appends pay the merges, requests always see
    /// a warm cache.
    Eager,
    /// Never refresh: a stale entry is dropped the first time a lookup
    /// misses over it — the old invalidate-everything behaviour.
    Disabled,
}

/// What an [`Session::append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Rows appended.
    pub rows: usize,
    /// The logical table's new contents version.
    pub version: u64,
    /// True when the append left shard sizes skewed enough (largest
    /// shard at least [`RESHARD_SKEW_THRESHOLD`]% of fair share) that
    /// [`Session::reshard`] is advisable. Appends route rows with the
    /// shard key chosen at registration time; a delta with shifted
    /// cardinalities can concentrate on few shards, and nothing
    /// re-evaluates the key automatically.
    pub reshard_hint: bool,
}

/// Shard skew (largest shard as a percentage of the mean; 100 =
/// perfectly balanced) at or above which [`Session::append`] raises
/// [`AppendOutcome::reshard_hint`] and counts an
/// [`ExecMetrics::reshard_hints`].
pub const RESHARD_SKEW_THRESHOLD: u64 = 200;

/// Default [`SessionBuilder::max_delta_fraction`]: refresh is abandoned
/// (stale entries dropped) when the unmerged delta exceeds this
/// fraction of the base table.
pub const DEFAULT_MAX_DELTA_FRACTION: f64 = 0.5;

/// Default [`SessionBuilder::reopt_threshold`]: a cached plan is
/// invalidated for re-optimization when feedback-corrected cardinalities
/// shift its estimated cost by more than this relative fraction.
pub const DEFAULT_REOPT_THRESHOLD: f64 = 0.3;

/// The adaptive feedback loop's session state (see `gbmqo-feedback`):
/// observed cardinalities from executed plans, per-table distinct
/// sketches maintained incrementally from append deltas, and the
/// re-optimization threshold.
#[derive(Debug)]
struct AdaptiveState {
    feedback: FeedbackStore,
    sketches: FxHashMap<String, TableSketches>,
    reopt_threshold: f64,
}

/// Estimated vs. observed distinct-group count of one executed plan
/// node; see [`Session::last_node_cards`]. Produced for every node the
/// optimizer estimated, adaptive mode or not — this is the q-error
/// report `gbmqo profile` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCardReport {
    /// Group-by column names of the node.
    pub cols: Vec<String>,
    /// The optimizer's distinct-group estimate going in.
    pub estimated: u64,
    /// The distinct-group count execution actually produced.
    pub observed: u64,
}

impl NodeCardReport {
    /// The node's q-error: `max(est/obs, obs/est)` with both clamped to
    /// at least 1. Perfect estimates score 1.0.
    pub fn q_error(&self) -> f64 {
        q_error(self.estimated as f64, self.observed as f64)
    }
}

/// Whether every aggregate merges losslessly under append-only ingest
/// (§7.2's merge rules): COUNT, SUM, MIN and MAX all do. The exhaustive
/// match forces a decision here if a non-mergeable function (AVG,
/// DISTINCT, …) ever lands.
fn specs_mergeable(specs: &[AggSpec]) -> bool {
    specs.iter().all(|s| {
        matches!(
            s.func,
            AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max
        )
    })
}

/// Run the merge search and per-node estimation with `model`. Shared by
/// every [`CostModelSpec`] arm of the planner so the adaptive overlay
/// wrapping stays in one place per arm instead of four.
fn search_and_estimate(
    gbmqo: &GbMqo,
    workload: &Workload,
    model: &mut dyn CostModel,
) -> Result<(LogicalPlan, SearchStats, GroupEstimates)> {
    let (plan, stats) = gbmqo.plan(workload, model)?;
    let est = plan_group_estimates(&plan, workload, model);
    Ok((plan, stats, est))
}

/// Total scan cost of `plan` under the §3.2.1 cardinality model with
/// node cardinalities supplied by `d` (keyed by column-set bits): each
/// root reads the `base` relation, each child reads its parent's
/// result.
fn plan_scan_cost(plan: &LogicalPlan, base: f64, d: &mut dyn FnMut(u128) -> f64) -> f64 {
    fn walk(n: &SubNode, source_rows: f64, d: &mut dyn FnMut(u128) -> f64) -> f64 {
        let mut cost = source_rows;
        if !n.children.is_empty() {
            let own = d(n.cols.0);
            for child in &n.children {
                cost += walk(child, own, d);
            }
        }
        cost
    }
    plan.subplans.iter().map(|sp| walk(sp, base, d)).sum()
}

/// Builder for [`Session`]; see the module docs for a walkthrough.
#[derive(Debug, Default)]
pub struct SessionBuilder {
    tables: Vec<(String, Table)>,
    engine: Option<Engine>,
    cost_model: CostModelSpec,
    search: SearchConfig,
    mode: ExecutionMode,
    parallelism: usize,
    memory_budget: Option<usize>,
    plan_cache: usize,
    io_ns_per_byte: f64,
    strategy: GroupByStrategy,
    mat_cache_budget_bytes: usize,
    shards: u32,
    refresh_policy: RefreshPolicy,
    max_delta_fraction: Option<f64>,
    adaptive: bool,
    reopt_threshold: Option<f64>,
}

impl SessionBuilder {
    /// Register a base table (may be called repeatedly).
    pub fn table(mut self, name: impl Into<String>, table: Table) -> Self {
        self.tables.push((name.into(), table));
        self
    }

    /// Use a pre-built engine (e.g. one with indexes or I/O emulation
    /// already configured) instead of building one from `table` calls.
    /// Tables added via [`SessionBuilder::table`] are registered on top.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Cost model to optimize under (default:
    /// [`CostModelSpec::Cardinality`]).
    pub fn cost_model(mut self, spec: CostModelSpec) -> Self {
        self.cost_model = spec;
        self
    }

    /// Search configuration (default: [`SearchConfig::default`]; the
    /// paper's experiments use [`SearchConfig::pruned`]).
    pub fn search(mut self, config: SearchConfig) -> Self {
        self.search = config;
        self
    }

    /// Execution mode (default: [`ExecutionMode::ClientSide`]).
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Worker threads for [`ExecutionMode::Parallel`]; `0` (the default)
    /// means one per available CPU.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Cap on live temp-table bytes during parallel execution (see
    /// [`ParallelOptions::memory_budget`]).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Plans to keep in the LRU plan cache (default 16; `0` disables
    /// caching).
    pub fn plan_cache(mut self, capacity: usize) -> Self {
        self.plan_cache = capacity;
        self
    }

    /// Enable the engine's disk row-store emulation
    /// (see [`Engine::set_io_ns_per_byte`]).
    pub fn io_ns_per_byte(mut self, ns_per_byte: f64) -> Self {
        self.io_ns_per_byte = ns_per_byte;
        self
    }

    /// Group-by kernel selection (default [`GroupByStrategy::Auto`]:
    /// the radix-partitioned kernel for large un-indexed inputs, the
    /// scalar hash kernel otherwise).
    pub fn group_by_strategy(mut self, strategy: GroupByStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Byte budget of the cross-request materialized aggregate cache
    /// (default `0` = disabled). With a budget, the session retains
    /// aggregates computed while answering workloads and plans later
    /// workloads from them: a request covered by a cached superset is
    /// answered by re-aggregating the cached table instead of scanning
    /// the base relation. See `gbmqo-matcache` for keying, versioning
    /// and eviction.
    pub fn mat_cache_budget_bytes(mut self, bytes: usize) -> Self {
        self.mat_cache_budget_bytes = bytes;
        self
    }

    /// Radix-partition every base table registered through this session
    /// into `shards` hash-disjoint shards (power of two; `0`/`1` keeps
    /// tables unsharded, the default). Plans over sharded tables
    /// execute shard-parallel with per-shard intermediates and a final
    /// re-aggregation merge; the shard key defaults to each table's
    /// highest-cardinality column. Applies to builder-registered tables
    /// and to [`Session::register_table`] uploads alike.
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// When stale cached aggregates are delta-refreshed after appends
    /// (default [`RefreshPolicy::Lazy`]). Only meaningful with a
    /// materialized aggregate cache budget.
    pub fn refresh_policy(mut self, policy: RefreshPolicy) -> Self {
        self.refresh_policy = policy;
        self
    }

    /// Largest delta (as a fraction of the base table's rows) a refresh
    /// will merge; beyond it stale entries are dropped and recomputed
    /// cold (default [`DEFAULT_MAX_DELTA_FRACTION`]). At that size the
    /// delta scan approaches a full rescan and merging on top of it
    /// stops paying.
    pub fn max_delta_fraction(mut self, fraction: f64) -> Self {
        self.max_delta_fraction = Some(fraction);
        self
    }

    /// Enable the adaptive feedback loop (default off): every execution
    /// records its per-node observed group counts, the optimizer's
    /// cardinality source overlays those observations (and online
    /// distinct sketches kept fresh across appends) on the configured
    /// statistics, and cached plans whose feedback-corrected cost shifts
    /// past [`SessionBuilder::reopt_threshold`] are invalidated for
    /// re-optimization. Both cost models benefit — the overlay sits
    /// below them, behind the same `CardinalitySource` trait.
    pub fn adaptive(mut self, enabled: bool) -> Self {
        self.adaptive = enabled;
        self
    }

    /// Relative estimated-cost shift beyond which the adaptive loop
    /// marks a cached plan for re-optimization (default
    /// [`DEFAULT_REOPT_THRESHOLD`]). Only meaningful with
    /// [`SessionBuilder::adaptive`].
    pub fn reopt_threshold(mut self, threshold: f64) -> Self {
        self.reopt_threshold = Some(threshold);
        self
    }

    /// Build the session.
    pub fn build(self) -> Result<Session> {
        let mut engine = self.engine.unwrap_or_else(|| Engine::new(Catalog::new()));
        for (name, table) in self.tables {
            engine
                .catalog_mut()
                .register_sharded(name, table, self.shards, None)?;
        }
        if self.io_ns_per_byte > 0.0 {
            engine.set_io_ns_per_byte(self.io_ns_per_byte);
        }
        engine.set_group_by_strategy(self.strategy);
        // One thread budget for both wave parallelism and in-kernel
        // partition parallelism: explicit `parallelism` wins; Parallel
        // mode defaults to the machine; serial modes stay single-threaded
        // inside each query unless asked otherwise.
        let kernel_threads = if self.parallelism > 0 {
            self.parallelism
        } else if self.mode == ExecutionMode::Parallel {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            1
        };
        engine.set_kernel_threads(kernel_threads);
        if let CostModelSpec::SampledCardinality { sample_size, .. }
        | CostModelSpec::Optimizer { sample_size, .. } = self.cost_model
        {
            if sample_size == 0 {
                return Err(CoreError::InvalidSession(
                    "sampled cost models need a sample size of at least 1".into(),
                ));
            }
        }
        let max_delta_fraction = self
            .max_delta_fraction
            .unwrap_or(DEFAULT_MAX_DELTA_FRACTION);
        if !(0.0..=1.0).contains(&max_delta_fraction) {
            return Err(CoreError::InvalidSession(format!(
                "max_delta_fraction must be within [0, 1], got {max_delta_fraction}"
            )));
        }
        let reopt_threshold = self.reopt_threshold.unwrap_or(DEFAULT_REOPT_THRESHOLD);
        if !reopt_threshold.is_finite() || reopt_threshold <= 0.0 {
            return Err(CoreError::InvalidSession(format!(
                "reopt_threshold must be a positive finite fraction, got {reopt_threshold}"
            )));
        }
        Ok(Session {
            engine,
            cost_model: self.cost_model,
            search: self.search,
            mode: self.mode,
            parallelism: self.parallelism,
            memory_budget: self.memory_budget,
            cache: PlanCache::new(self.plan_cache),
            mat_cache: MatCache::new(self.mat_cache_budget_bytes),
            stats_version: 0,
            shards: self.shards,
            refresh_policy: self.refresh_policy,
            max_delta_fraction,
            pending: ExecMetrics::default(),
            adaptive: self.adaptive.then(|| AdaptiveState {
                feedback: FeedbackStore::new(),
                sketches: FxHashMap::default(),
                reopt_threshold,
            }),
            last_node_cards: Vec::new(),
        })
    }
}

/// The planned-and-executed outcome of [`Session::run_workload`].
#[derive(Debug)]
pub struct WorkloadOutcome {
    /// The executed plan, including any cache-served virtual roots.
    pub plan: LogicalPlan,
    /// Search statistics of the uncovered remainder (default when every
    /// request was served from the cache — no search ran at all).
    pub stats: SearchStats,
    /// Per-set results and execution metrics.
    pub report: ExecutionReport,
}

/// A long-lived GB-MQO serving session: one entry point
/// ([`Session::grouping_sets`]) over an owned engine, with plan caching
/// and a choice of serial, shared-scan, or dependency-parallel
/// execution.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    cost_model: CostModelSpec,
    search: SearchConfig,
    mode: ExecutionMode,
    parallelism: usize,
    memory_budget: Option<usize>,
    cache: PlanCache,
    /// Cross-request materialized aggregate cache (disabled at budget 0).
    mat_cache: MatCache,
    /// Bumped whenever registered tables change; part of the plan-cache
    /// fingerprint so stale plans are not reused.
    stats_version: u64,
    /// Default shard count applied to tables registered through the
    /// session (`0`/`1` = unsharded).
    shards: u32,
    /// When stale cached aggregates are delta-refreshed.
    refresh_policy: RefreshPolicy,
    /// Largest refreshable delta, as a fraction of base-table rows.
    max_delta_fraction: f64,
    /// Ingest-side counters (eager refreshes, reshard hints) accrued
    /// outside any request; drained into the next workload's metrics.
    pending: ExecMetrics,
    /// `Some` when the adaptive feedback loop is on (see
    /// [`SessionBuilder::adaptive`]).
    adaptive: Option<AdaptiveState>,
    /// Estimated-vs-observed group counts of the last executed workload
    /// (populated adaptive or not; see [`Session::last_node_cards`]).
    last_node_cards: Vec<NodeCardReport>,
}

// A session is plain owned data (tables are `Arc`-shared but immutable),
// so it can move between threads — the server wraps one in a mutex and
// serves it from a worker pool. Compile-time audit; `Sync` is *not*
// claimed: all the interesting methods take `&mut self` anyway.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<SessionBuilder>();
};

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            plan_cache: 16,
            ..Default::default()
        }
    }

    /// Optimize and execute `workload` as one GROUPING SETS query,
    /// returning the tagged UNION ALL plus plan, search stats, and
    /// execution metrics. Repeated workloads skip the search via the
    /// plan cache ([`SearchStats::cache_hit`]); with a materialized
    /// aggregate cache enabled, requests covered by cached supersets
    /// skip the base-table scan too.
    pub fn grouping_sets(&mut self, workload: &Workload) -> Result<GroupingSetsResult> {
        self.grouping_sets_with(workload, CacheControl::Default)
    }

    /// [`Session::grouping_sets`] with an explicit per-request cache
    /// policy (`Bypass` forces cold execution, `Refresh` recomputes and
    /// re-admits).
    pub fn grouping_sets_with(
        &mut self,
        workload: &Workload,
        cache: CacheControl,
    ) -> Result<GroupingSetsResult> {
        let out = self.run_workload(workload, cache)?;
        assemble_union(
            workload,
            out.plan,
            out.stats,
            out.report.results,
            out.report.metrics,
        )
    }

    /// Optimize (consulting the materialized aggregate cache) and
    /// execute `workload`, returning the per-set result tables plus the
    /// executed plan and search stats. This is the server's entry
    /// point; [`Session::grouping_sets`] adds the UNION ALL on top.
    pub fn run_workload(
        &mut self,
        workload: &Workload,
        cache: CacheControl,
    ) -> Result<WorkloadOutcome> {
        let use_cache = self.mat_cache.enabled();
        let before = self.mat_cache.stats();
        let table_version = self.engine.catalog().table_version(&workload.table)?;
        let base_rows = self.engine.catalog().table(&workload.table)?.num_rows();
        let agg_sig = agg_signature(&workload.aggregates);

        // Shard layout of the base table, if any. Per-shard cache
        // entries are keyed by shard entry name and that shard's own
        // monotonic version, so a single-shard append invalidates only
        // the shard it touched and the other shards stay warm.
        let shard_desc = self.engine.catalog().shard_desc(&workload.table).cloned();
        let shard_meta: Vec<(String, u64, usize)> = match &shard_desc {
            Some(desc) => (0..desc.shard_count)
                .map(|s| {
                    let sname = shard_table_name(&workload.table, s);
                    let ver = self.engine.catalog().table_version(&sname)?;
                    let rows = self.engine.catalog().table(&sname)?.num_rows();
                    Ok((sname, ver, rows))
                })
                .collect::<Result<_>>()?,
            None => Vec::new(),
        };

        // Ingest-side counters: whatever appends accrued since the last
        // request (eager refreshes, reshard hints), plus any lazy delta
        // refreshes this request performs below. Folded into the
        // report's metrics at step 6.
        let mut ingest = std::mem::take(&mut self.pending);

        // 1. Consult the cache: which requests does a cached (same
        // table contents, same aggregates) superset aggregate cover?
        // Under the lazy refresh policy a miss over a *stale* covering
        // entry first tries to bring it current by aggregating only the
        // appended row range and merging (§7's aggregate-union
        // identity); only when that is impossible or uneconomic do
        // stale entries get dropped.
        let mut covered: Vec<(ColSet, CachedAggregate)> = Vec::new();
        if use_cache && cache.allows_lookup() {
            self.engine.reset_metrics();
            for &req in &workload.requests {
                let names: Vec<String> = workload
                    .col_names(req)
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let mut hit = self.mat_cache.lookup_covering(
                    &workload.table,
                    table_version,
                    &names,
                    agg_sig,
                    base_rows,
                );
                if hit.is_none()
                    && self.try_lazy_refresh(
                        &workload.table,
                        table_version,
                        &names,
                        agg_sig,
                        base_rows,
                        &mut ingest,
                    )
                {
                    hit = self.mat_cache.lookup_covering(
                        &workload.table,
                        table_version,
                        &names,
                        agg_sig,
                        base_rows,
                    );
                }
                if let Some(hit) = hit {
                    covered.push((req, hit));
                }
            }
        }

        // 1b. Per-shard serving: a request not covered at the logical
        // level may still be covered shard by shard. Every warm shard
        // pins its cached partial; cold shards scan their shard entry
        // directly — the sharded executor merges partials at delivery.
        // Only the sharded executors consult per-shard pins, so this is
        // skipped under server-side mode (which reads logical tables).
        let mut shard_covered: Vec<(ColSet, u32, CachedAggregate)> = Vec::new();
        let mut shard_served: Vec<ColSet> = Vec::new();
        if use_cache && cache.allows_lookup() && self.mode != ExecutionMode::ServerSide {
            for &req in &workload.requests {
                if covered.iter().any(|(c, _)| *c == req) {
                    continue;
                }
                let names: Vec<String> = workload
                    .col_names(req)
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let mut hits: Vec<(u32, CachedAggregate)> = Vec::new();
                for (s, (sname, sver, srows)) in shard_meta.iter().enumerate() {
                    let mut hit = self
                        .mat_cache
                        .lookup_covering(sname, *sver, &names, agg_sig, *srows);
                    if hit.is_none() {
                        // Each shard entry has its own version and delta
                        // chain; a shard left stale by a routed append
                        // refreshes from just its own delta.
                        if self.try_lazy_refresh(sname, *sver, &names, agg_sig, *srows, &mut ingest)
                        {
                            hit = self
                                .mat_cache
                                .lookup_covering(sname, *sver, &names, agg_sig, *srows);
                        }
                    }
                    if let Some(hit) = hit {
                        hits.push((s as u32, hit));
                    }
                }
                if !hits.is_empty() {
                    shard_served.push(req);
                    for (s, hit) in hits {
                        shard_covered.push((req, s, hit));
                    }
                }
            }
        }

        if use_cache && cache.allows_lookup() {
            // Fold the delta scans' engine-side counters (delta_rows,
            // rows scanned, elapsed) into this request's metrics before
            // run_mode resets the engine for the main execution.
            ingest += self.engine.metrics();
        }

        // 2. Run the merge search only over the uncovered remainder
        // (the plan cache applies to it; cache-dependent parts of the
        // plan are never memoized, so a later request with a colder
        // cache cannot reuse a plan that assumes warm state).
        let uncovered: Vec<ColSet> = workload
            .requests
            .iter()
            .copied()
            .filter(|r| !covered.iter().any(|(c, _)| c == r) && !shard_served.contains(r))
            .collect();
        let (mut plan, stats, estimates, planned_key) = if uncovered.is_empty() {
            (
                LogicalPlan { subplans: vec![] },
                SearchStats::default(),
                GroupEstimates::default(),
                None,
            )
        } else if uncovered.len() == workload.requests.len() {
            let (p, s, e, k) = self.plan_with_estimates_keyed(workload)?;
            (p, s, e, Some(k))
        } else {
            let sub = Workload {
                requests: uncovered,
                ..workload.clone()
            };
            let (p, s, e, k) = self.plan_with_estimates_keyed(&sub)?;
            (p, s, e, Some(k))
        };

        // 3. Seed the plan with the covered requests as virtual roots:
        // each becomes a leaf whose input is the cached aggregate,
        // pinned in the catalog for the duration of the execution.
        let mut hooks = CacheHooks::default();
        let pin = next_exec_id();
        for (cols, hit) in &covered {
            let name = format!("__gbmqo_mc_e{pin:x}_{:x}", cols.0);
            self.engine
                .catalog_mut()
                .register_arc(&name, Arc::clone(&hit.table))?;
            hooks.roots.insert((cols.0, WHOLE_TABLE_PIN), name);
            plan.subplans.push(SubNode::leaf(*cols));
        }
        for (cols, s, hit) in &shard_covered {
            let name = format!("__gbmqo_mc_e{pin:x}_s{s}_{:x}", cols.0);
            self.engine
                .catalog_mut()
                .register_arc(&name, Arc::clone(&hit.table))?;
            hooks.roots.insert((cols.0, *s), name);
        }
        for cols in &shard_served {
            plan.subplans.push(SubNode::leaf(*cols));
        }
        if use_cache && cache.allows_admit() {
            hooks.harvest = Some(Vec::new());
        }
        // Always collect per-node observations: the q-error report is
        // produced regardless of adaptive mode; adaptive mode further
        // feeds them into the feedback store below.
        hooks.observations = Some(Vec::new());

        // 4. Execute; unpin the cached roots afterwards even on error.
        let parallel = self.parallel_options();
        let run = run_mode(
            &plan,
            workload,
            &mut self.engine,
            self.mode,
            parallel,
            &estimates,
            &mut hooks,
        );
        for name in hooks.roots.values() {
            let _ = self.engine.catalog_mut().remove(name);
        }
        let (results, mut metrics) = run?;

        // 4b. Observe → correct → re-optimize: fold the execution's
        // per-node cardinality observations into the q-error report and
        // (when adaptive) the feedback store; invalidate the cached plan
        // when corrected estimates shift its cost past the threshold.
        let observations = hooks.observations.take().unwrap_or_default();
        self.digest_observations(
            workload,
            table_version,
            planned_key,
            &plan,
            base_rows,
            &estimates,
            &observations,
            &mut metrics,
        );

        // 5. Admission: offer the scheduler's materialized
        // intermediates and the request results themselves. Requests
        // answered verbatim from the cache are not re-admitted.
        if hooks.harvest.is_some() {
            let mut admitted: Vec<ColSet> = Vec::new();
            let offer = |mc: &mut MatCache, cols: ColSet, table: Arc<Table>| {
                let names: Vec<String> = workload
                    .col_names(cols)
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                mc.admit(
                    &workload.table,
                    table_version,
                    &names,
                    agg_sig,
                    &workload.aggregates,
                    table,
                    base_rows,
                );
            };
            for (cols, shard, table) in hooks.harvest.take().into_iter().flatten() {
                if shard == WHOLE_TABLE_PIN {
                    admitted.push(cols);
                    offer(&mut self.mat_cache, cols, table);
                } else if let Some((sname, sver, srows)) = shard_meta.get(shard as usize) {
                    // Per-shard partials are admitted under the shard
                    // entry's own name and version — the granularity
                    // that survives appends to sibling shards.
                    let names: Vec<String> = workload
                        .col_names(cols)
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    self.mat_cache.admit(
                        sname,
                        *sver,
                        &names,
                        agg_sig,
                        &workload.aggregates,
                        table,
                        *srows,
                    );
                }
            }
            for (cols, table) in &results {
                let served_exact = covered.iter().any(|(c, h)| c == cols && h.exact);
                if served_exact || admitted.contains(cols) {
                    continue;
                }
                offer(&mut self.mat_cache, *cols, Arc::new(table.clone()));
            }
        }

        // 6. Surface this request's cache and ingest activity in the
        // metrics (delta counters sum; gauges take the max).
        metrics += ingest;
        if use_cache {
            let after = self.mat_cache.stats();
            metrics.matcache_hits = after.hits - before.hits;
            metrics.matcache_evictions = after.evictions - before.evictions;
            metrics.matcache_rows_saved = after.rows_saved - before.rows_saved;
            metrics.matcache_bytes = after.bytes;
        }

        Ok(WorkloadOutcome {
            plan,
            stats,
            report: ExecutionReport {
                results,
                metrics,
                peak_temp_bytes: self.engine.catalog().accounting().peak_temp_bytes,
            },
        })
    }

    /// Optimize `workload` (or fetch the cached plan) without executing.
    pub fn plan(&mut self, workload: &Workload) -> Result<(LogicalPlan, SearchStats)> {
        let (plan, stats, _) = self.plan_with_estimates(workload)?;
        Ok((plan, stats))
    }

    /// [`Session::plan`] plus the optimizer's distinct-group estimate per
    /// plan node, which execution forwards to the engine's radix kernel.
    /// Cached alongside the plan, so a hit costs zero model calls.
    fn plan_with_estimates(
        &mut self,
        workload: &Workload,
    ) -> Result<(LogicalPlan, SearchStats, GroupEstimates)> {
        let (plan, stats, estimates, _) = self.plan_with_estimates_keyed(workload)?;
        Ok((plan, stats, estimates))
    }

    /// [`Session::plan_with_estimates`] plus the plan-cache fingerprint
    /// the result is cached under, so the adaptive loop can invalidate
    /// exactly this entry when corrected estimates drift.
    fn plan_with_estimates_keyed(
        &mut self,
        workload: &Workload,
    ) -> Result<(
        LogicalPlan,
        SearchStats,
        GroupEstimates,
        WorkloadFingerprint,
    )> {
        // The base table's contents version is part of the key: a
        // replaced or appended-to table can never reuse a stale plan.
        // The feedback generation is deliberately NOT hashed in — that
        // would turn every repeat of a workload into a miss and defeat
        // the cache; instead the post-execution recost invalidates
        // entries whose corrected cost drifts (see digest_observations).
        let table_version = self
            .engine
            .catalog()
            .table_version(&workload.table)
            .unwrap_or(0);
        let key = WorkloadFingerprint::compute(
            workload,
            &self.search,
            self.stats_version,
            self.cost_model.tag(),
            table_version,
        );
        if let Some((plan, stats, estimates)) = self.cache.get(key) {
            return Ok((plan, stats, estimates, key));
        }
        // First contact with this table in adaptive mode builds its
        // distinct sketches with one full scan; appends keep them fresh
        // incrementally afterwards ([`Session::append`]).
        if let Some(ad) = self.adaptive.as_mut() {
            if !ad.sketches.contains_key(&workload.table) {
                if let Ok(t) = self.engine.catalog().table(&workload.table) {
                    ad.sketches
                        .insert(workload.table.clone(), TableSketches::build(t));
                }
            }
        }
        let (plan, stats, estimates) = {
            let table = self.engine.catalog().table(&workload.table)?;
            let gbmqo = GbMqo::with_config(self.search.clone());
            // The adaptive overlay wraps whichever source the spec
            // produces — the cost models are generic over
            // `CardinalitySource`, so both benefit without API changes.
            let adaptive = self.adaptive.as_ref();
            match &self.cost_model {
                CostModelSpec::Cardinality => {
                    let source = ExactSource::new(table);
                    match adaptive {
                        Some(ad) => search_and_estimate(
                            &gbmqo,
                            workload,
                            &mut CardinalityCostModel::new(AdaptiveCardinalitySource::new(
                                source,
                                &workload.table,
                                &ad.feedback,
                                ad.sketches.get(&workload.table),
                            )),
                        )?,
                        None => search_and_estimate(
                            &gbmqo,
                            workload,
                            &mut CardinalityCostModel::new(source),
                        )?,
                    }
                }
                CostModelSpec::SampledCardinality {
                    sample_size,
                    estimator,
                    seed,
                } => {
                    let source = SampledSource::try_new(table, *sample_size, *estimator, *seed)?;
                    match adaptive {
                        Some(ad) => search_and_estimate(
                            &gbmqo,
                            workload,
                            &mut CardinalityCostModel::new(AdaptiveCardinalitySource::new(
                                source,
                                &workload.table,
                                &ad.feedback,
                                ad.sketches.get(&workload.table),
                            )),
                        )?,
                        None => search_and_estimate(
                            &gbmqo,
                            workload,
                            &mut CardinalityCostModel::new(source),
                        )?,
                    }
                }
                CostModelSpec::Optimizer {
                    sample_size,
                    estimator,
                    seed,
                } => {
                    let source = SampledSource::try_new(table, *sample_size, *estimator, *seed)?;
                    let indexes = IndexSnapshot::capture(self.engine.catalog(), &workload.table);
                    match adaptive {
                        Some(ad) => search_and_estimate(
                            &gbmqo,
                            workload,
                            &mut OptimizerCostModel::new(
                                AdaptiveCardinalitySource::new(
                                    source,
                                    &workload.table,
                                    &ad.feedback,
                                    ad.sketches.get(&workload.table),
                                ),
                                indexes,
                            ),
                        )?,
                        None => search_and_estimate(
                            &gbmqo,
                            workload,
                            &mut OptimizerCostModel::new(source, indexes),
                        )?,
                    }
                }
            }
        };
        self.cache
            .insert(key, plan.clone(), stats, estimates.clone());
        Ok((plan, stats, estimates, key))
    }

    /// Step 4b of [`Session::run_workload`]: turn the execution's raw
    /// per-node observations into (a) the always-on estimated-vs-observed
    /// q-error report, (b) feedback-store corrections (adaptive mode),
    /// and (c) a plan-cache invalidation when the corrected cost of the
    /// planned subtree drifts past the re-optimization threshold or a
    /// planned node's q-error exceeds `1 + threshold`.
    #[allow(clippy::too_many_arguments)]
    fn digest_observations(
        &mut self,
        workload: &Workload,
        table_version: u64,
        planned_key: Option<WorkloadFingerprint>,
        plan: &LogicalPlan,
        base_rows: usize,
        estimates: &GroupEstimates,
        observations: &[PlanObservation],
        metrics: &mut ExecMetrics,
    ) {
        self.last_node_cards.clear();
        let mut max_qe = 1.0f64;
        for obs in observations {
            // Nodes the optimizer never estimated (cache-served virtual
            // roots) have no q-error to report.
            let Some(&est) = estimates.get(&obs.cols.0) else {
                continue;
            };
            let qe = q_error(est as f64, obs.output_groups as f64);
            max_qe = max_qe.max(qe);
            let x100 = (qe * 100.0).round() as u64;
            metrics.qerror_nodes += 1;
            metrics.qerror_sum_x100 += x100;
            metrics.qerror_max_x100 = metrics.qerror_max_x100.max(x100);
            self.last_node_cards.push(NodeCardReport {
                cols: workload
                    .col_names(obs.cols)
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                estimated: est,
                observed: obs.output_groups,
            });
        }

        let Some(ad) = self.adaptive.as_mut() else {
            return;
        };
        for obs in observations {
            ad.feedback.record(&NodeObservation {
                table: workload.table.clone(),
                cols: workload.base_cols(obs.cols),
                input_rows: obs.input_rows,
                output_groups: obs.output_groups,
                elapsed_ns: obs.elapsed_ns,
                table_version,
            });
        }
        metrics.feedback_observations += observations.len() as u64;

        // Re-cost the planned subtree under corrected cardinalities:
        // root edges scan the base relation, child edges scan their
        // parent's result (the §3.2.1 cardinality model). Column sets
        // without feedback keep their original estimates, so the shift
        // isolates what was actually learned. Cache-served leaf roots
        // price identically on both sides and cancel out of the ratio's
        // numerator.
        let Some(key) = planned_key else {
            return;
        };
        let base = base_rows as f64;
        let old = plan_scan_cost(plan, base, &mut |bits| {
            estimates.get(&bits).map_or(base, |&e| e as f64)
        });
        let feedback = &ad.feedback;
        let corrected = plan_scan_cost(plan, base, &mut |bits| {
            feedback
                .observed_groups(&workload.table, &workload.base_cols(ColSet(bits)))
                .unwrap_or_else(|| estimates.get(&bits).map_or(base, |&e| e as f64))
        });
        // Two re-plan triggers. Scan-cost drift catches estimates whose
        // error changes what the plan *costs*; the q-error gate catches
        // nodes that are badly estimated but cheap in absolute scan
        // terms — without it the loop can settle on a suboptimal plan
        // whose mispriced nodes are too small to move the total. Every
        // executed node lands in the feedback store, so each re-plan
        // runs with strictly more observed column sets and the loop
        // terminates once the search picks a fully-observed plan
        // (q-error 1.0).
        let drifted = (corrected - old).abs() > ad.reopt_threshold * old.max(1.0);
        let misestimated = max_qe > 1.0 + ad.reopt_threshold;
        if (drifted || misestimated) && self.cache.invalidate(key) {
            metrics.plan_reopts += 1;
        }
    }

    /// Execute an explicit plan for `workload` under the session's
    /// execution mode, returning the per-set result tables (no UNION
    /// ALL). For pre-built or deserialized plans; `Session::grouping_sets`
    /// is the usual path.
    pub fn run_plan(&mut self, plan: &LogicalPlan, workload: &Workload) -> Result<ExecutionReport> {
        let parallel = self.parallel_options();
        let (results, metrics) = run_mode(
            plan,
            workload,
            &mut self.engine,
            self.mode,
            parallel,
            &GroupEstimates::default(),
            &mut CacheHooks::default(),
        )?;
        Ok(ExecutionReport {
            results,
            metrics,
            peak_temp_bytes: self.engine.catalog().accounting().peak_temp_bytes,
        })
    }

    /// Execute an explicit plan serially under the §4.4
    /// storage-minimizing schedule, with `size_estimate` guiding the
    /// breadth-first/depth-first choice (pass a cost model's
    /// `result_bytes` for faithful behaviour). Ignores the session's
    /// execution mode: the storage schedule is inherently sequential.
    pub fn run_plan_scheduled(
        &mut self,
        plan: &LogicalPlan,
        workload: &Workload,
        size_estimate: &mut dyn FnMut(crate::colset::ColSet) -> f64,
    ) -> Result<ExecutionReport> {
        crate::executor::run_plan(
            plan,
            workload,
            &mut self.engine,
            Some(size_estimate),
            &GroupEstimates::default(),
            &mut CacheHooks::default(),
        )
    }

    /// Register a base table, replacing any same-named table (upsert
    /// semantics: a serving session accepts re-uploads). Replacement
    /// invalidates everything derived from the old contents: cached
    /// plans (the statistics version and the table's catalog version
    /// are both part of the fingerprint) and every cached materialized
    /// aggregate of the table.
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        let old_shards = self
            .engine
            .catalog()
            .shard_desc(&name)
            .map_or(0, |d| d.shard_count);
        self.engine
            .catalog_mut()
            .replace_sharded(&name, table, self.shards, None)?;
        self.mat_cache.invalidate_table(&name);
        for s in 0..old_shards.max(self.shards) {
            self.mat_cache.invalidate_table(&shard_table_name(&name, s));
        }
        if let Some(ad) = self.adaptive.as_mut() {
            // The contents were replaced wholesale: sketches and
            // observed cardinalities describe the old rows.
            ad.sketches.remove(&name);
            ad.feedback.forget_table(&name);
        }
        self.stats_version += 1;
        Ok(())
    }

    /// Append `rows` to base table `name` (schemas must match). The
    /// catalog records a delta descriptor per touched entry — for a
    /// sharded table the rows route through the existing shard key and
    /// each receiving shard logs its own delta — so cached aggregates
    /// are *refreshed* from just the appended range instead of being
    /// invalidated (per the session's [`RefreshPolicy`]). Cached plans
    /// stop matching automatically: the table's contents version is
    /// part of the plan fingerprint.
    ///
    /// Appends never re-evaluate the shard key. When the delta's value
    /// distribution differs from the registration-time contents, rows
    /// can concentrate on few shards; the post-append skew is measured
    /// here and surfaced as [`AppendOutcome::reshard_hint`] plus an
    /// [`ExecMetrics::reshard_hints`] count — [`Session::reshard`] is
    /// the escape hatch.
    pub fn append(&mut self, name: &str, rows: Table) -> Result<AppendOutcome> {
        let appended = rows.num_rows();
        let version = self.engine.catalog_mut().append(name, rows)?;
        let mut reshard_hint = false;
        if let Some(desc) = self.engine.catalog().shard_desc(name).cloned() {
            let sizes: Vec<u64> = (0..desc.shard_count)
                .map(|s| {
                    let sname = shard_table_name(name, s);
                    self.engine
                        .catalog()
                        .table(&sname)
                        .map_or(0, |t| t.num_rows() as u64)
                })
                .collect();
            let total: u64 = sizes.iter().sum();
            let largest = sizes.iter().copied().max().unwrap_or(0);
            let skew = (largest * 100 * u64::from(desc.shard_count))
                .checked_div(total)
                .unwrap_or(0);
            self.pending.shard_skew = self.pending.shard_skew.max(skew);
            if skew >= RESHARD_SKEW_THRESHOLD {
                reshard_hint = true;
                self.pending.reshard_hints += 1;
            }
        }
        // Fold just the appended range into the table's distinct
        // sketches — corrected estimates stay fresh under churn without
        // a full re-sample (the sketch tracks rows already seen).
        if let Some(ad) = self.adaptive.as_mut() {
            if let Some(sketches) = ad.sketches.get_mut(name) {
                if let Ok(t) = self.engine.catalog().table(name) {
                    if sketches.update(t) > 0 {
                        self.pending.sketch_refreshes += 1;
                    }
                }
            }
        }
        if self.refresh_policy == RefreshPolicy::Eager && self.mat_cache.enabled() {
            self.refresh_all_stale(name)?;
        }
        Ok(AppendOutcome {
            rows: appended,
            version,
            reshard_hint,
        })
    }

    /// Re-split `name` into the session's shard count with a freshly
    /// selected shard key — the escape hatch when appends have skewed
    /// the layout (see [`AppendOutcome::reshard_hint`]). Resharding
    /// rewrites every shard entry, so it invalidates the table's cached
    /// aggregates and plans; use it like a (rare) re-registration.
    pub fn reshard(&mut self, name: &str) -> Result<()> {
        let table = self.engine.catalog().table(name)?.clone();
        let old_shards = self
            .engine
            .catalog()
            .shard_desc(name)
            .map_or(0, |d| d.shard_count);
        self.engine
            .catalog_mut()
            .replace_sharded(name, table, self.shards, None)?;
        self.mat_cache.invalidate_table(name);
        for s in 0..old_shards.max(self.shards) {
            self.mat_cache.invalidate_table(&shard_table_name(name, s));
        }
        if let Some(ad) = self.adaptive.as_mut() {
            // Same logical rows, new physical layout: observed
            // cardinalities stay valid, but the sketches track a scan
            // cursor into the old layout and must rebuild.
            ad.sketches.remove(name);
        }
        self.stats_version += 1;
        Ok(())
    }

    /// The session's refresh policy.
    pub fn refresh_policy(&self) -> RefreshPolicy {
        self.refresh_policy
    }

    /// Eagerly bring every stale cached aggregate of `name` (logical
    /// entry and shard entries alike) current. Counters accrue in
    /// `self.pending` and drain into the next request's metrics.
    fn refresh_all_stale(&mut self, name: &str) -> Result<()> {
        let mut entries: Vec<(String, u64, usize)> = Vec::new();
        let push = |cat: &Catalog, ename: String, out: &mut Vec<(String, u64, usize)>| {
            if let (Ok(v), Ok(t)) = (cat.table_version(&ename), cat.table(&ename)) {
                out.push((ename, v, t.num_rows()));
            }
        };
        push(self.engine.catalog(), name.to_string(), &mut entries);
        if let Some(desc) = self.engine.catalog().shard_desc(name).cloned() {
            for s in 0..desc.shard_count {
                push(
                    self.engine.catalog(),
                    shard_table_name(name, s),
                    &mut entries,
                );
            }
        }
        self.engine.reset_metrics();
        let mut ingest = ExecMetrics::default();
        for (ename, version, rows) in entries {
            for stale in self.mat_cache.stale_entries(&ename, version) {
                self.refresh_stale_entry(&ename, version, rows, stale, &mut ingest);
            }
        }
        ingest += self.engine.metrics();
        self.engine.reset_metrics();
        self.pending += ingest;
        Ok(())
    }

    /// Lazy-refresh hook for a cache miss at lookup time: find the best
    /// stale covering entry and try to bring it current. Returns true
    /// when a refresh landed (the caller's next lookup will hit).
    fn try_lazy_refresh(
        &mut self,
        entry: &str,
        version: u64,
        want_cols: &[String],
        agg_sig: u64,
        base_rows: usize,
        metrics: &mut ExecMetrics,
    ) -> bool {
        match self.refresh_policy {
            RefreshPolicy::Lazy => {}
            RefreshPolicy::Eager => return false, // nothing stale survives an append
            RefreshPolicy::Disabled => {
                self.mat_cache.drop_stale(entry, version);
                return false;
            }
        }
        let Some(stale) = self
            .mat_cache
            .lookup_stale(entry, version, want_cols, agg_sig)
        else {
            return false;
        };
        self.refresh_stale_entry(entry, version, base_rows, stale, metrics)
    }

    /// Bring one stale cached aggregate of catalog entry `entry`
    /// current at `version`: aggregate only the delta row range with
    /// the entry's original specs, concatenate with the cached partial,
    /// and re-aggregate under the §7.2 lossless merge rules
    /// ([`AggSpec::reaggregate`] — `SUM(cnt)`-style). Falls back to
    /// dropping the table's stale entries when the delta chain is
    /// broken (compacted or replaced), an aggregate is not mergeable,
    /// or the delta exceeds `max_delta_fraction` of the base.
    fn refresh_stale_entry(
        &mut self,
        entry: &str,
        version: u64,
        base_rows: usize,
        stale: StaleAggregate,
        metrics: &mut ExecMetrics,
    ) -> bool {
        let fallback = |mc: &mut MatCache, metrics: &mut ExecMetrics| {
            mc.drop_stale(entry, version);
            metrics.delta_fallbacks += 1;
            false
        };
        let chain = match self.engine.catalog().delta_chain(entry, stale.version) {
            Some(c) if c.to_version == version && specs_mergeable(&stale.specs) => c,
            _ => return fallback(&mut self.mat_cache, metrics),
        };
        if (chain.rows as f64) > self.max_delta_fraction * base_rows as f64 {
            return fallback(&mut self.mat_cache, metrics);
        }
        // The cached payload's schema is its group columns followed by
        // one output per spec; aggregating the delta with the same
        // specs in that column order makes the two concat-compatible.
        let ngroup = stale.table.schema().fields().len() - stale.specs.len();
        let group_cols: Vec<String> = stale.table.schema().fields()[..ngroup]
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let q = GroupByQuery {
            input: entry.to_string(),
            group_cols,
            aggs: stale.specs.clone(),
            into: None,
            estimated_groups: None,
        };
        let merged = self
            .engine
            .run_group_by_range(&q, chain.start_row, chain.rows)
            .and_then(|delta| {
                let combined = Table::concat(&[stale.table.as_ref(), &delta])?;
                let reagg: Vec<AggSpec> = stale.specs.iter().map(AggSpec::reaggregate).collect();
                let idx: Vec<usize> = (0..ngroup).collect();
                hash_group_by(&combined, &idx, &reagg, metrics)
            });
        let Ok(merged) = merged else {
            return fallback(&mut self.mat_cache, metrics);
        };
        if self.mat_cache.refresh(
            entry,
            &stale.cols,
            stale.agg_sig,
            stale.version,
            version,
            Arc::new(merged),
            base_rows,
        ) {
            metrics.delta_refreshes += 1;
            // Rows *not* rescanned: everything before the delta range.
            metrics.refresh_rows_saved += chain.start_row as u64;
            true
        } else {
            false
        }
    }

    /// The session's default shard count for registered tables
    /// (`0`/`1` = unsharded).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Declare that table statistics changed (data refreshed in place,
    /// indexes rebuilt, …): cached plans stop matching from now on.
    pub fn bump_stats_version(&mut self) {
        self.stats_version += 1;
    }

    /// Current statistics version (see [`Session::bump_stats_version`]).
    pub fn stats_version(&self) -> u64 {
        self.stats_version
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Materialized-aggregate-cache counters (all zero when disabled).
    pub fn mat_cache_stats(&self) -> MatCacheStats {
        self.mat_cache.stats()
    }

    /// Per-node estimated vs. observed group counts from the most
    /// recent [`Session::run_workload`], in execution order — the
    /// q-error report `gbmqo profile` prints. Populated whether or not
    /// adaptive mode is on; empty before the first request.
    pub fn last_node_cards(&self) -> &[NodeCardReport] {
        &self.last_node_cards
    }

    /// Whether the adaptive feedback loop is on (see
    /// [`SessionBuilder::adaptive`]).
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Number of distinct (table, column-set) cardinality observations
    /// held by the feedback store. Zero when adaptive mode is off.
    pub fn feedback_len(&self) -> usize {
        self.adaptive.as_ref().map_or(0, |ad| ad.feedback.len())
    }

    /// Drop every cached materialized aggregate (counters survive).
    pub fn clear_mat_cache(&mut self) {
        self.mat_cache.clear();
    }

    /// Drop all cached plans.
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// The session's execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Switch execution mode (plans are mode-independent, so the cache
    /// survives).
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// Attach a [`CancelToken`] polled by every subsequent execution at
    /// its morsel/step boundaries; `None` detaches. The server attaches
    /// a fresh deadline token per request and detaches it afterwards.
    pub fn set_cancel_token(&mut self, cancel: Option<CancelToken>) {
        self.engine.set_cancel_token(cancel);
    }

    /// Borrow the engine (metrics, catalog inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutably borrow the engine. If you change table data or physical
    /// design through it, call [`Session::bump_stats_version`] so cached
    /// plans are invalidated.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    fn parallel_options(&self) -> ParallelOptions {
        ParallelOptions {
            threads: self.parallelism,
            memory_budget: self.memory_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64((0..240).map(|i| i % 3).collect()),
                Column::from_i64((0..240).map(|i| (i % 3) * 10).collect()),
                Column::from_i64((0..240).map(|i| i % 5).collect()),
            ],
        )
        .unwrap()
    }

    fn session(mode: ExecutionMode) -> (Session, Workload) {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let s = Session::builder()
            .table("r", t)
            .search(SearchConfig::pruned())
            .mode(mode)
            .plan_cache(4)
            .build()
            .unwrap();
        (s, w)
    }

    fn tag_counts(table: &Table) -> Vec<(String, usize)> {
        let tag_col = table.schema().index_of("grp_tag").unwrap();
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for r in 0..table.num_rows() {
            *counts
                .entry(table.value(r, tag_col).as_str().unwrap().to_string())
                .or_default() += 1;
        }
        counts.into_iter().collect()
    }

    #[test]
    fn all_modes_agree() {
        let (mut client, w) = session(ExecutionMode::ClientSide);
        let (mut server, _) = session(ExecutionMode::ServerSide);
        let (mut parallel, _) = session(ExecutionMode::Parallel);
        let c = client.grouping_sets(&w).unwrap();
        let s = server.grouping_sets(&w).unwrap();
        let p = parallel.grouping_sets(&w).unwrap();
        assert_eq!(tag_counts(&c.table), tag_counts(&s.table));
        assert_eq!(tag_counts(&c.table), tag_counts(&p.table));
        for sess in [&client, &server, &parallel] {
            assert!(
                sess.engine().catalog().temp_names().is_empty(),
                "temps leaked in {:?}",
                sess.mode()
            );
        }
    }

    #[test]
    fn repeated_workloads_hit_the_plan_cache() {
        let (mut s, w) = session(ExecutionMode::ClientSide);
        let first = s.grouping_sets(&w).unwrap();
        assert!(!first.stats.cache_hit);
        assert!(first.stats.optimizer_calls > 0);
        let second = s.grouping_sets(&w).unwrap();
        assert!(second.stats.cache_hit, "same workload must hit the cache");
        assert_eq!(
            second.stats.optimizer_calls, 0,
            "a cache hit performs zero optimizer cost calls"
        );
        assert_eq!(
            second.plan.render(&w.column_names),
            first.plan.render(&w.column_names)
        );
        assert_eq!(tag_counts(&second.table), tag_counts(&first.table));
        let cs = s.cache_stats();
        assert_eq!((cs.hits, cs.misses), (1, 1));
    }

    #[test]
    fn stats_version_invalidates_cached_plans() {
        let (mut s, w) = session(ExecutionMode::ClientSide);
        s.grouping_sets(&w).unwrap();
        s.bump_stats_version();
        let after = s.grouping_sets(&w).unwrap();
        assert!(!after.stats.cache_hit, "bumped stats version must miss");
        assert_eq!(s.cache_stats().misses, 2);
    }

    #[test]
    fn sampled_and_optimizer_cost_models_work() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        for spec in [
            CostModelSpec::SampledCardinality {
                sample_size: 64,
                estimator: DistinctEstimator::Hybrid,
                seed: 7,
            },
            CostModelSpec::Optimizer {
                sample_size: 64,
                estimator: DistinctEstimator::Hybrid,
                seed: 7,
            },
        ] {
            let mut s = Session::builder()
                .table("r", t.clone())
                .cost_model(spec)
                .build()
                .unwrap();
            let out = s.grouping_sets(&w).unwrap();
            assert_eq!(tag_counts(&out.table).len(), 3);
        }
    }

    #[test]
    fn zero_sample_size_is_rejected_at_build() {
        let err = Session::builder()
            .table("r", table())
            .cost_model(CostModelSpec::SampledCardinality {
                sample_size: 0,
                estimator: DistinctEstimator::Hybrid,
                seed: 7,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSession(_)));
    }

    /// Rows as order-independent `name=value` strings (the UNION ALL's
    /// column order varies with the plan; only the cell values matter).
    fn rows_sorted(t: &Table) -> Vec<String> {
        let names = t.schema().names();
        let mut v: Vec<String> = (0..t.num_rows())
            .map(|r| {
                let mut cells: Vec<String> = (0..t.num_columns())
                    .map(|c| format!("{}={:?}", names[c], t.value(r, c)))
                    .filter(|s| !s.ends_with("=Null"))
                    .collect();
                cells.sort();
                cells.join("|")
            })
            .collect();
        v.sort();
        v
    }

    fn cached_session(shards: u32, policy: RefreshPolicy) -> (Session, Workload) {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let s = Session::builder()
            .table("r", t)
            .mat_cache_budget_bytes(1 << 20)
            .shards(shards)
            .refresh_policy(policy)
            .build()
            .unwrap();
        (s, w)
    }

    #[test]
    fn append_then_lazy_refresh_matches_cold_recompute() {
        for shards in [0u32, 4] {
            let (mut s, w) = cached_session(shards, RefreshPolicy::Lazy);
            s.grouping_sets(&w).unwrap(); // warm the cache
            let out = s.append("r", table()).unwrap();
            assert_eq!(out.rows, 240);
            let warm = s.grouping_sets(&w).unwrap();
            assert!(
                warm.metrics.delta_refreshes >= 1,
                "shards={shards}: expected delta refreshes, got {:?}",
                warm.metrics
            );
            assert_eq!(warm.metrics.delta_fallbacks, 0, "shards={shards}");
            assert!(warm.metrics.delta_rows >= 240, "shards={shards}");
            assert!(warm.metrics.refresh_rows_saved >= 240, "shards={shards}");

            let doubled = Table::concat(&[&table(), &table()]).unwrap();
            let mut cold = Session::builder().table("r", doubled).build().unwrap();
            let cold_out = cold.grouping_sets(&w).unwrap();
            assert_eq!(
                rows_sorted(&warm.table),
                rows_sorted(&cold_out.table),
                "shards={shards}: refreshed cache must equal cold recompute"
            );
        }
    }

    #[test]
    fn eager_policy_refreshes_inside_append() {
        let (mut s, w) = cached_session(0, RefreshPolicy::Eager);
        s.grouping_sets(&w).unwrap();
        s.append("r", table()).unwrap();
        assert!(
            s.mat_cache_stats().refreshes >= 1,
            "append itself refreshes"
        );
        let warm = s.grouping_sets(&w).unwrap();
        // Pending append-side counters drain into the next request.
        assert!(warm.metrics.delta_refreshes >= 1);
        assert!(warm.metrics.matcache_hits >= 1, "cache is warm post-append");
    }

    #[test]
    fn disabled_policy_drops_stale_entries() {
        let (mut s, w) = cached_session(0, RefreshPolicy::Disabled);
        s.grouping_sets(&w).unwrap();
        s.append("r", table()).unwrap();
        let after = s.grouping_sets(&w).unwrap();
        assert_eq!(after.metrics.delta_refreshes, 0);
        assert!(s.mat_cache_stats().stale_drops >= 1);
    }

    #[test]
    fn oversized_delta_falls_back_to_invalidation() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut s = Session::builder()
            .table("r", t)
            .mat_cache_budget_bytes(1 << 20)
            .max_delta_fraction(0.1)
            .build()
            .unwrap();
        s.grouping_sets(&w).unwrap();
        // Doubling the table is far beyond a 10% delta budget.
        s.append("r", table()).unwrap();
        let after = s.grouping_sets(&w).unwrap();
        assert_eq!(after.metrics.delta_refreshes, 0);
        assert!(after.metrics.delta_fallbacks >= 1);
    }

    #[test]
    fn skewed_append_hints_reshard_and_reshard_recovers() {
        let (mut s, w) = cached_session(4, RefreshPolicy::Lazy);
        s.grouping_sets(&w).unwrap();
        // A constant-key delta routes every row to one shard.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let skewed = Table::new(
            schema,
            vec![
                Column::from_i64(vec![1; 2000]),
                Column::from_i64(vec![2; 2000]),
                Column::from_i64(vec![3; 2000]),
            ],
        )
        .unwrap();
        let out = s.append("r", skewed).unwrap();
        assert!(out.reshard_hint, "one-shard delta must flag skew");
        let report = s.grouping_sets(&w).unwrap();
        assert_eq!(report.metrics.reshard_hints, 1);
        assert!(report.metrics.shard_skew >= RESHARD_SKEW_THRESHOLD);

        s.reshard("r").unwrap();
        let again = s.grouping_sets(&w).unwrap();
        assert_eq!(again.metrics.reshard_hints, 0);
        assert_eq!(rows_sorted(&again.table), rows_sorted(&report.table));
    }

    #[test]
    fn register_table_and_run_plan() {
        let (mut s, w) = session(ExecutionMode::Parallel);
        let (plan, _) = s.plan(&w).unwrap();
        let report = s.run_plan(&plan, &w).unwrap();
        assert_eq!(report.results.len(), 3);

        s.register_table("r2", table()).unwrap();
        assert!(s.engine().catalog().contains("r2"));
        assert_eq!(s.stats_version(), 1);
    }

    #[test]
    fn qerror_report_is_produced_without_adaptive_mode() {
        let (mut s, w) = session(ExecutionMode::ClientSide);
        assert!(s.last_node_cards().is_empty(), "empty before first run");
        let out = s.grouping_sets(&w).unwrap();
        let cards = s.last_node_cards();
        assert!(cards.len() >= 3, "every executed plan node is reported");
        for card in cards {
            // The exact cardinality model estimates perfectly, so every
            // node's q-error is exactly 1.
            assert_eq!(card.estimated, card.observed, "node {:?}", card.cols);
            assert_eq!(card.q_error(), 1.0);
        }
        assert_eq!(out.metrics.qerror_nodes, cards.len() as u64);
        assert_eq!(out.metrics.qerror_sum_x100, 100 * cards.len() as u64);
        assert_eq!(out.metrics.qerror_max_x100, 100);
        // No feedback loop without adaptive mode.
        assert_eq!(out.metrics.feedback_observations, 0);
        assert_eq!(s.feedback_len(), 0);
        assert!(!s.adaptive_enabled());
    }

    #[test]
    fn adaptive_results_match_static_across_modes() {
        for mode in [
            ExecutionMode::ClientSide,
            ExecutionMode::ServerSide,
            ExecutionMode::Parallel,
        ] {
            for shards in [0u32, 4] {
                let t = table();
                let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
                let build = |adaptive: bool| {
                    Session::builder()
                        .table("r", t.clone())
                        .search(SearchConfig::pruned())
                        .mode(mode)
                        .shards(shards)
                        .adaptive(adaptive)
                        .build()
                        .unwrap()
                };
                let (mut plain, mut adaptive) = (build(false), build(true));
                let expect = plain.grouping_sets(&w).unwrap();
                let got = adaptive.grouping_sets(&w).unwrap();
                assert_eq!(
                    rows_sorted(&got.table),
                    rows_sorted(&expect.table),
                    "mode={mode:?} shards={shards}: adaptive must not change results"
                );
                assert!(got.metrics.feedback_observations > 0);
                assert!(adaptive.feedback_len() > 0);
            }
        }
    }

    #[test]
    fn append_refreshes_sketches_incrementally() {
        let t = table();
        let w = Workload::single_columns("r", &t, &["a", "b", "c"]).unwrap();
        let mut s = Session::builder()
            .table("r", t)
            .adaptive(true)
            .build()
            .unwrap();
        s.grouping_sets(&w).unwrap(); // builds the table's sketches
        s.append("r", table()).unwrap();
        let after = s.grouping_sets(&w).unwrap();
        assert!(
            after.metrics.sketch_refreshes >= 1,
            "append must fold the delta into the sketches: {:?}",
            after.metrics
        );
    }

    /// The full observe → correct → re-optimize loop. Half the rows
    /// share one (a, b) pair and the rest are distinct pairs — the
    /// classic skew that makes a sample-based joint estimate collapse
    /// (the reservoir is full of the heavy pair), while the per-column
    /// HLL sketches keep the single-column estimates honest. The
    /// optimizer merges on the bogus cheap union, execution observes the
    /// true cardinality, the corrected cost drifts past the threshold,
    /// the cached plan is invalidated, and the re-planned workload stops
    /// drifting.
    #[test]
    fn observed_drift_invalidates_and_replans() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let heavy_or = |i: i64, rare: i64| if i % 2 == 0 { 0 } else { rare };
        let t = Table::new(
            schema,
            vec![
                Column::from_i64((0..2000).map(|i| heavy_or(i, i)).collect()),
                Column::from_i64((0..2000).map(|i| heavy_or(i, i + 10_000)).collect()),
            ],
        )
        .unwrap();
        let w = Workload::single_columns("u", &t, &["a", "b"]).unwrap();
        let mut s = Session::builder()
            .table("u", t)
            .cost_model(CostModelSpec::SampledCardinality {
                sample_size: 32,
                estimator: DistinctEstimator::Hybrid,
                seed: 7,
            })
            .adaptive(true)
            .plan_cache(4)
            .build()
            .unwrap();

        let first = s.grouping_sets(&w).unwrap();
        assert!(
            first.metrics.plan_reopts >= 1,
            "observed cardinalities must invalidate the drifted plan: {:?}",
            first.metrics
        );
        let second = s.grouping_sets(&w).unwrap();
        assert!(
            !second.stats.cache_hit,
            "the invalidated plan must be re-optimized"
        );
        assert!(
            second.metrics.qerror_max_x100 <= first.metrics.qerror_max_x100,
            "corrected estimates must not get worse: {} -> {}",
            first.metrics.qerror_max_x100,
            second.metrics.qerror_max_x100
        );
        assert_eq!(
            second.metrics.plan_reopts, 0,
            "the corrected plan does not drift again"
        );
        let third = s.grouping_sets(&w).unwrap();
        assert!(third.stats.cache_hit, "the loop converges to a cache hit");
        assert_eq!(rows_sorted(&second.table), rows_sorted(&first.table));
        assert_eq!(rows_sorted(&third.table), rows_sorted(&first.table));
    }

    #[test]
    fn invalid_reopt_threshold_is_rejected_at_build() {
        for bad in [0.0, -1.0, f64::NAN] {
            let err = Session::builder()
                .table("r", table())
                .adaptive(true)
                .reopt_threshold(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, CoreError::InvalidSession(_)), "{bad}");
        }
    }
}
