//! Intermediate-storage-aware execution scheduling (§4.4).
//!
//! Each intermediate node of a logical plan is materialized as a temp
//! table and can be dropped once all its children are computed. Whether a
//! node's subtree is executed breadth-first (compute all children, drop
//! the node, then descend) or depth-first (finish one child's subtree
//! before computing the next child) changes the peak storage. The paper's
//! recursion
//!
//! ```text
//! Storage(u) = min( d(u) + Σᵢ d(vᵢ),  d(u) + maxᵢ Storage(vᵢ) )
//! ```
//!
//! picks the cheaper traversal per node; this module computes the marking
//! and emits the corresponding query/drop schedule.
//!
//! Like the paper's, the recursion is a *per-node* bound: under a
//! breadth-first node whose children themselves materialize grandchildren,
//! the true peak can exceed the node's breadth-first term (siblings stay
//! live while one child's subtree runs). The executor therefore tracks
//! the actual peak via catalog accounting; [`simulate_peak`] checks any
//! emitted schedule directly.

use crate::colset::ColSet;
use crate::plan::{LogicalPlan, NodeKind, SubNode};

/// Per-node traversal choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// Compute all children, drop this node, then descend into children.
    BreadthFirst,
    /// Fully finish each child's subtree in turn, then drop this node.
    DepthFirst,
}

/// One scheduled action.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Run the Group By producing `target` from `source`
    /// (`None` = the base relation).
    Query {
        /// Source node (temp table) or `None` for the base relation.
        source: Option<ColSet>,
        /// The node computed by this query.
        target: ColSet,
        /// Materialize the result as a temp table.
        materialize: bool,
        /// Stream the result to the client (a required node).
        required: bool,
        /// Evaluation strategy of the target node.
        kind: NodeKind,
    },
    /// Drop the temp table of `node`.
    Drop(ColSet),
}

/// Storage needed by the subtree rooted at `node` per the §4.4.1
/// recursion. `d` estimates the materialized size of a node (0 is used
/// automatically for nodes that are never materialized).
pub fn min_storage(node: &SubNode, d: &mut dyn FnMut(ColSet) -> f64) -> f64 {
    storage_and_mark(node, d).0
}

fn node_bytes(node: &SubNode, d: &mut dyn FnMut(ColSet) -> f64) -> f64 {
    if node.is_materialized() && node.kind == NodeKind::GroupBy {
        d(node.cols)
    } else {
        0.0
    }
}

/// Returns `(Storage(node), marking)` where `marking` is the traversal
/// choice for this node (leaves get `DepthFirst`, vacuously).
fn storage_and_mark(node: &SubNode, d: &mut dyn FnMut(ColSet) -> f64) -> (f64, Traversal) {
    let du = node_bytes(node, d);
    if node.children.is_empty() || node.kind != NodeKind::GroupBy {
        return (du, Traversal::DepthFirst);
    }
    let breadth: f64 = du + node.children.iter().map(|c| node_bytes(c, d)).sum::<f64>();
    let depth: f64 = du
        + node
            .children
            .iter()
            .map(|c| storage_and_mark(c, d).0)
            .fold(0.0, f64::max);
    if breadth <= depth {
        (breadth, Traversal::BreadthFirst)
    } else {
        (depth, Traversal::DepthFirst)
    }
}

/// Peak intermediate storage of the whole plan: sub-plans execute one
/// after another, so the peak is the maximum over sub-plans.
pub fn plan_min_storage(plan: &LogicalPlan, d: &mut dyn FnMut(ColSet) -> f64) -> f64 {
    plan.subplans
        .iter()
        .map(|sp| min_storage(sp, d))
        .fold(0.0, f64::max)
}

/// Emit the execution schedule for `plan`, ordering queries per the
/// storage-minimizing marking and interleaving `Drop`s as early as
/// possible.
pub fn schedule_plan(plan: &LogicalPlan, d: &mut dyn FnMut(ColSet) -> f64) -> Vec<Step> {
    let mut steps = Vec::new();
    for sp in &plan.subplans {
        emit_query(sp, None, &mut steps);
        emit_body(sp, d, &mut steps);
    }
    steps
}

fn emit_query(node: &SubNode, source: Option<ColSet>, steps: &mut Vec<Step>) {
    steps.push(Step::Query {
        source,
        target: node.cols,
        materialize: node.is_materialized() && node.kind == NodeKind::GroupBy,
        required: node.required,
        kind: node.kind,
    });
}

/// Steps after `node` itself has been computed (and materialized if it is
/// an intermediate).
fn emit_body(node: &SubNode, d: &mut dyn FnMut(ColSet) -> f64, steps: &mut Vec<Step>) {
    if node.children.is_empty() {
        return;
    }
    if node.kind != NodeKind::GroupBy {
        // ROLLUP/CUBE produce all their children in the same pass; nothing
        // further to schedule.
        return;
    }
    let (_, mark) = storage_and_mark(node, d);
    match mark {
        Traversal::BreadthFirst => {
            for c in &node.children {
                emit_query(c, Some(node.cols), steps);
            }
            steps.push(Step::Drop(node.cols));
            for c in &node.children {
                emit_body(c, d, steps);
            }
        }
        Traversal::DepthFirst => {
            for c in &node.children {
                emit_query(c, Some(node.cols), steps);
                emit_body(c, d, steps);
            }
            steps.push(Step::Drop(node.cols));
        }
    }
}

/// A plan edge annotated for wave (dependency-parallel) execution.
///
/// The same information as [`Step::Query`], but grouped into topological
/// waves instead of a serial schedule — drops are decided at run time by
/// the parallel executor's reader counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEdge {
    /// Source node (temp table) or `None` for the base relation.
    pub source: Option<ColSet>,
    /// The node computed by this edge.
    pub target: ColSet,
    /// Whether the target is materialized as a temp table (it has
    /// Group By children that re-aggregate from it).
    pub materialize: bool,
    /// Whether the target is a requested result.
    pub required: bool,
    /// Evaluation strategy of the target node.
    pub kind: NodeKind,
}

/// Topologically level `plan` into dependency waves: wave 0 holds the
/// sub-plan roots (they read the base relation), wave `k` holds the
/// children of nodes materialized in wave `k-1`. All edges within a wave
/// are independent — their sources were produced by earlier waves — so a
/// wave can execute concurrently.
///
/// ROLLUP/CUBE nodes are emitted as single edges; their children are
/// delivered by the node's own lattice descent, not as separate edges.
pub fn level_plan(plan: &LogicalPlan) -> Vec<Vec<PlanEdge>> {
    let mut waves: Vec<Vec<PlanEdge>> = Vec::new();
    let mut frontier: Vec<(Option<ColSet>, &SubNode)> =
        plan.subplans.iter().map(|n| (None, n)).collect();
    while !frontier.is_empty() {
        let mut next: Vec<(Option<ColSet>, &SubNode)> = Vec::new();
        let mut wave: Vec<PlanEdge> = Vec::with_capacity(frontier.len());
        for (source, node) in frontier {
            let group_by = node.kind == NodeKind::GroupBy;
            wave.push(PlanEdge {
                source,
                target: node.cols,
                materialize: group_by && node.is_materialized(),
                required: node.required,
                kind: node.kind,
            });
            if group_by {
                for child in &node.children {
                    next.push((Some(node.cols), child));
                }
            }
        }
        waves.push(wave);
        frontier = next;
    }
    waves
}

/// Simulate a schedule's peak storage given per-node sizes (testing aid
/// and sanity check for the recursion).
pub fn simulate_peak(steps: &[Step], d: &mut dyn FnMut(ColSet) -> f64) -> f64 {
    let mut live = 0.0f64;
    let mut peak = 0.0f64;
    for s in steps {
        match s {
            Step::Query {
                target,
                materialize,
                ..
            } => {
                if *materialize {
                    live += d(*target);
                    peak = peak.max(live);
                }
            }
            Step::Drop(cols) => {
                live -= d(*cols);
            }
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SubNode;
    use rustc_hash::FxHashMap;

    /// Figure 6 of the paper: sizes ABCD=10, ABC=6, BCD=2, AB=4, BC=1,
    /// AC=2 (leaf), A/B/C are required leaves under AB/BC, etc. We model
    /// the exact sub-tree shown: ABCD → {ABC → {AB → {A,B}, BC? ...}}.
    /// The paper's point: at ABCD, breadth-first gives 10+6+2 = 18,
    /// depth-first gives 10+max(Storage(ABC), Storage(BCD)).
    fn figure6() -> (SubNode, FxHashMap<u128, f64>) {
        let a = ColSet::single(0);
        let b = ColSet::single(1);
        let c = ColSet::single(2);
        let dd = ColSet::single(3);
        let ab = a.union(b);
        let bc = b.union(c);
        let bd = b.union(dd);
        let cd = c.union(dd);
        let ac = a.union(c);
        let abc = ab.union(c);
        let bcd = bc.union(dd);
        let abcd = abc.union(dd);

        let mut sizes: FxHashMap<u128, f64> = FxHashMap::default();
        for (s, v) in [
            (abcd, 10.0),
            (abc, 6.0),
            (bcd, 2.0),
            (ab, 4.0),
            (bc, 1.0),
            (ac, 2.0),
            (bd, 4.0),
            (cd, 1.0),
            (a, 1.0),
            (b, 1.0),
            (c, 1.0),
        ] {
            sizes.insert(s.0, v);
        }

        let tree = SubNode::internal(
            abcd,
            vec![
                SubNode::internal(
                    abc,
                    vec![
                        SubNode::internal(ab, vec![SubNode::leaf(a), SubNode::leaf(b)]),
                        SubNode::leaf(bc),
                        SubNode::leaf(ac),
                    ],
                ),
                SubNode::internal(bcd, vec![SubNode::leaf(bd), SubNode::leaf(cd)]),
            ],
        );
        (tree, sizes)
    }

    #[test]
    fn figure6_breadth_first_wins_at_root() {
        let (tree, sizes) = figure6();
        let mut d = |s: ColSet| sizes.get(&s.0).copied().unwrap_or(0.0);
        // BF at root: 10 + 6 + 2 = 18 (leaf children of ABCD contribute 0).
        // DF at root: 10 + max(Storage(ABC), Storage(BCD))
        //   Storage(ABC) = min(6+4, 6+Storage(AB)=6+4) = 10 (AB's leaves take 0)
        //   Storage(BCD) = min(2+0, 2+0) = 2
        // → DF = 10 + 10 = 20 > BF = 18.
        let s = min_storage(&tree, &mut d);
        assert_eq!(s, 18.0);
    }

    #[test]
    fn schedule_respects_predicted_peak() {
        let (tree, sizes) = figure6();
        let plan = LogicalPlan {
            subplans: vec![tree],
        };
        let mut d = |s: ColSet| sizes.get(&s.0).copied().unwrap_or(0.0);
        let predicted = plan_min_storage(&plan, &mut d);
        let steps = schedule_plan(&plan, &mut d);
        let simulated = simulate_peak(&steps, &mut d);
        assert!(
            simulated <= predicted + 1e-9,
            "simulated {simulated} > predicted {predicted}"
        );
    }

    #[test]
    fn schedule_covers_all_nodes_and_drops_all_temps() {
        let (tree, sizes) = figure6();
        let plan = LogicalPlan {
            subplans: vec![tree],
        };
        let mut d = |s: ColSet| sizes.get(&s.0).copied().unwrap_or(0.0);
        let steps = schedule_plan(&plan, &mut d);
        let queries = steps
            .iter()
            .filter(|s| matches!(s, Step::Query { .. }))
            .count();
        assert_eq!(queries, plan.node_count());
        let mats = steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Step::Query {
                        materialize: true,
                        ..
                    }
                )
            })
            .count();
        let drops = steps.iter().filter(|s| matches!(s, Step::Drop(_))).count();
        assert_eq!(mats, drops, "every materialized temp is dropped");
        // every query's source must have been materialized and not yet dropped
        let mut live: Vec<ColSet> = Vec::new();
        for s in &steps {
            match s {
                Step::Query {
                    source,
                    target,
                    materialize,
                    ..
                } => {
                    if let Some(src) = source {
                        assert!(live.contains(src), "query {target:?} from dropped {src:?}");
                    }
                    if *materialize {
                        live.push(*target);
                    }
                }
                Step::Drop(c) => {
                    let pos = live.iter().position(|x| x == c).expect("drop of non-live");
                    live.remove(pos);
                }
            }
        }
        assert!(live.is_empty());
    }

    #[test]
    fn depth_first_wins_when_children_are_large() {
        // root (3 cols) with two large intermediate children: BF stores
        // both children at once, DF only one at a time.
        let ab = ColSet::from_cols([0, 1]);
        let bc = ColSet::from_cols([1, 2]);
        let root = ColSet::from_cols([0, 1, 2]);
        let tree = SubNode::internal(
            root,
            vec![
                SubNode::internal(ab, vec![SubNode::leaf(ColSet::single(0))]),
                SubNode::internal(bc, vec![SubNode::leaf(ColSet::single(2))]),
            ],
        );
        let mut d = |s: ColSet| {
            if s == root {
                1.0
            } else {
                100.0
            }
        };
        // BF: 1 + 200 = 201; DF: 1 + max(100, 100) = 101
        assert_eq!(min_storage(&tree, &mut d), 101.0);
        let plan = LogicalPlan {
            subplans: vec![tree],
        };
        let steps = schedule_plan(&plan, &mut d);
        assert!(simulate_peak(&steps, &mut d) <= 101.0);
    }

    #[test]
    fn level_plan_groups_edges_into_dependency_waves() {
        // (a,b) → {a, b} plus a direct c leaf: wave 0 = {(a,b), c} off
        // the base relation, wave 1 = {a, b} off the (a,b) temp.
        let ab = ColSet::from_cols([0, 1]);
        let plan = LogicalPlan {
            subplans: vec![
                SubNode::internal(
                    ab,
                    vec![
                        SubNode::leaf(ColSet::single(0)),
                        SubNode::leaf(ColSet::single(1)),
                    ],
                ),
                SubNode::leaf(ColSet::single(2)),
            ],
        };
        let waves = level_plan(&plan);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].len(), 2);
        assert!(waves[0].iter().all(|e| e.source.is_none()));
        let ab_edge = waves[0].iter().find(|e| e.target == ab).unwrap();
        assert!(ab_edge.materialize);
        assert_eq!(waves[1].len(), 2);
        assert!(waves[1].iter().all(|e| e.source == Some(ab)));
        assert!(waves[1].iter().all(|e| !e.materialize && e.required));
    }

    #[test]
    fn level_plan_keeps_special_nodes_atomic() {
        let plan = LogicalPlan {
            subplans: vec![SubNode {
                cols: ColSet::from_cols([0, 1]),
                required: true,
                kind: NodeKind::Rollup,
                children: vec![SubNode::leaf(ColSet::single(0))],
            }],
        };
        let waves = level_plan(&plan);
        assert_eq!(waves.len(), 1, "rollup children are delivered inline");
        assert_eq!(waves[0].len(), 1);
        assert!(!waves[0][0].materialize);
    }

    #[test]
    fn leaves_and_naive_plans_take_no_storage() {
        let plan = LogicalPlan {
            subplans: vec![
                SubNode::leaf(ColSet::single(0)),
                SubNode::leaf(ColSet::single(1)),
            ],
        };
        let mut d = |_: ColSet| 1000.0;
        assert_eq!(plan_min_storage(&plan, &mut d), 0.0);
        let steps = schedule_plan(&plan, &mut d);
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|s| matches!(
            s,
            Step::Query {
                materialize: false,
                ..
            }
        )));
    }
}
