//! EXPLAIN-style rendering: the plan annotated with per-edge cost-model
//! estimates, the way a DBMS explains its query plans.

use crate::colset::ColSet;
use crate::coster::EdgeCoster;
use crate::plan::{LogicalPlan, NodeKind, SubNode};
use crate::workload::Workload;
use gbmqo_cost::CostModel;
use std::fmt::Write as _;

/// One explained plan edge.
#[derive(Debug, Clone)]
pub struct ExplainedEdge {
    /// Source column set (`None` = the base relation).
    pub source: Option<ColSet>,
    /// Target column set.
    pub target: ColSet,
    /// Whether the target is materialized.
    pub materialize: bool,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated cost of this query (model units).
    pub est_cost: f64,
}

/// Explain `plan` under `model`: per-edge estimates plus the total.
pub fn explain(
    plan: &LogicalPlan,
    workload: &Workload,
    model: &mut dyn CostModel,
) -> (Vec<ExplainedEdge>, f64) {
    let mut coster = EdgeCoster::new(model, workload.base_ordinals.clone());
    let mut edges = Vec::new();
    fn walk(
        n: &SubNode,
        source: Option<ColSet>,
        coster: &mut EdgeCoster<'_>,
        edges: &mut Vec<ExplainedEdge>,
    ) {
        // CUBE/ROLLUP nodes price their whole pass on the incoming edge.
        let est_cost = match n.kind {
            NodeKind::GroupBy => coster.edge(source, n.cols, n.is_materialized()),
            _ => n.subtree_cost(source, coster),
        };
        edges.push(ExplainedEdge {
            source,
            target: n.cols,
            materialize: n.is_materialized() && n.kind == NodeKind::GroupBy,
            est_rows: coster.cardinality(n.cols),
            est_cost,
        });
        if n.kind == NodeKind::GroupBy {
            for c in &n.children {
                walk(c, Some(n.cols), coster, edges);
            }
        }
    }
    for sp in &plan.subplans {
        walk(sp, None, &mut coster, &mut edges);
    }
    let total = edges.iter().map(|e| e.est_cost).sum();
    (edges, total)
}

/// Render an EXPLAIN table.
pub fn render_explain(
    plan: &LogicalPlan,
    workload: &Workload,
    model: &mut dyn CostModel,
) -> String {
    let (edges, total) = explain(plan, workload, model);
    let names = &workload.column_names;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<42} {:>12} {:>14}  notes",
        "query", "est. rows", "est. cost"
    );
    for e in &edges {
        let src = match e.source {
            None => "R".to_string(),
            Some(s) => s.display(names).to_string(),
        };
        let _ = writeln!(
            out,
            "{:<42} {:>12.0} {:>14.0}  {}",
            format!("{src} → {}", e.target.display(names)),
            e.est_rows,
            e.est_cost,
            if e.materialize { "INTO temp" } else { "" }
        );
    }
    let _ = writeln!(out, "{:<42} {:>12} {:>14.0}", "TOTAL", "", total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_cost::CardinalityCostModel;
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn setup() -> (Table, Workload) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64((0..100).map(|i| i % 4).collect()),
                Column::from_i64((0..100).map(|i| (i % 4) * 2).collect()),
            ],
        )
        .unwrap();
        let w = Workload::single_columns("r", &t, &["a", "b"]).unwrap();
        (t, w)
    }

    #[test]
    fn explain_covers_every_edge_and_sums() {
        let (t, w) = setup();
        let plan = LogicalPlan {
            subplans: vec![SubNode::internal(
                ColSet::from_cols([0, 1]),
                vec![
                    SubNode::leaf(ColSet::single(0)),
                    SubNode::leaf(ColSet::single(1)),
                ],
            )],
        };
        let mut model = CardinalityCostModel::new(ExactSource::new(&t));
        let (edges, total) = explain(&plan, &w, &mut model);
        assert_eq!(edges.len(), 3);
        assert_eq!(total, edges.iter().map(|e| e.est_cost).sum::<f64>());
        // cardinality model: R→ab = 100, ab→a = 4, ab→b = 4
        assert_eq!(total, 108.0);
        assert!(edges[0].materialize);
        assert_eq!(edges[0].est_rows, 4.0);

        let text = render_explain(&plan, &w, &mut model);
        assert!(text.contains("R → (a, b)"));
        assert!(text.contains("INTO temp"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn explain_total_matches_plan_cost() {
        let (t, w) = setup();
        let plan = LogicalPlan::naive(&w);
        let mut m1 = CardinalityCostModel::new(ExactSource::new(&t));
        let (_, total) = explain(&plan, &w, &mut m1);
        let mut m2 = CardinalityCostModel::new(ExactSource::new(&t));
        let mut coster = EdgeCoster::new(&mut m2, w.base_ordinals.clone());
        assert_eq!(total, plan.cost(&mut coster));
    }
}
