//! Property-based tests over the statistics subsystem.

use gbmqo_stats::{
    exact_distinct, reservoir_sample, CardinalitySource, DistinctEstimator, ExactSource,
    FrequencyProfile, SampledSource,
};
use gbmqo_storage::{Column, DataType, Field, Schema, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn int_table(vals: Vec<i64>) -> Table {
    let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
    Table::new(schema, vec![Column::from_i64(vals)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every estimator's output lies in [distinct-in-sample, table rows].
    #[test]
    fn estimates_are_bounded(
        vals in prop::collection::vec(0i64..40, 1..300),
        sample_frac in 0.1f64..1.0,
        seed in 0u64..100,
    ) {
        let n = vals.len();
        let table = int_table(vals);
        let mut rng = StdRng::seed_from_u64(seed);
        let k = ((n as f64 * sample_frac) as usize).max(1);
        let sample = reservoir_sample(n, k, &mut rng);
        let profile = FrequencyProfile::build(&table, &[0], &sample);
        let d_sample = profile.distinct_in_sample() as f64;
        for est in [
            DistinctEstimator::Gee,
            DistinctEstimator::Shlosser,
            DistinctEstimator::Jackknife,
            DistinctEstimator::Hybrid,
        ] {
            let e = est.estimate(&profile, n);
            prop_assert!(e >= d_sample - 1e-9, "{est:?}: {e} < sample distinct {d_sample}");
            prop_assert!(e <= n as f64 + 1e-9, "{est:?}: {e} > n {n}");
        }
    }

    /// The frequency profile is a partition of the sample:
    /// Σ i·f_i = sample size and Σ f_i = distinct-in-sample.
    #[test]
    fn frequency_profile_sums(
        vals in prop::collection::vec(0i64..20, 1..200),
        k in 1usize..200,
    ) {
        let n = vals.len();
        let table = int_table(vals);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = reservoir_sample(n, k.min(n), &mut rng);
        let p = FrequencyProfile::build(&table, &[0], &sample);
        let total: usize = (1..=p.max_frequency()).map(|i| i * p.f(i)).sum();
        prop_assert_eq!(total, p.sample_size());
        let distinct: usize = (1..=p.max_frequency()).map(|i| p.f(i)).sum();
        prop_assert_eq!(distinct, p.distinct_in_sample());
    }

    /// Exact distinct of a subset of columns never exceeds the joint
    /// distinct, and the joint never exceeds the row count.
    #[test]
    fn distinct_monotonicity(
        a in prop::collection::vec(0i64..10, 1..150),
    ) {
        let n = a.len();
        let b: Vec<i64> = (0..n as i64).map(|i| i % 7).collect();
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(schema, vec![Column::from_i64(a), Column::from_i64(b)]).unwrap();
        let da = exact_distinct(&t, &[0]);
        let db = exact_distinct(&t, &[1]);
        let dab = exact_distinct(&t, &[0, 1]);
        prop_assert!(dab >= da.max(db));
        prop_assert!(dab <= da * db);
        prop_assert!(dab <= n);
    }

    /// SampledSource respects the cap: joint ≤ min(n, Π singles),
    /// and ExactSource agrees with exact_distinct.
    #[test]
    fn sources_respect_caps(vals in prop::collection::vec(0i64..6, 10..200)) {
        let n = vals.len();
        let doubled: Vec<i64> = vals.iter().map(|v| v * 3).collect();
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![Column::from_i64(vals), Column::from_i64(doubled)],
        )
        .unwrap();

        let mut exact = ExactSource::new(&t);
        prop_assert_eq!(exact.distinct(&[0]), exact_distinct(&t, &[0]) as f64);

        let mut sampled = SampledSource::new(&t, n / 2 + 1, DistinctEstimator::Hybrid, 3);
        let ja = sampled.distinct(&[0]);
        let jb = sampled.distinct(&[1]);
        let joint = sampled.distinct(&[0, 1]);
        prop_assert!(joint <= ja * jb + 1e-6);
        prop_assert!(joint <= n as f64 + 1e-6);
    }

    /// Reservoir samples are uniform-without-replacement draws: right
    /// size, no duplicates, in range.
    #[test]
    fn reservoir_is_sane(n in 0usize..500, k in 0usize..600, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = reservoir_sample(n, k, &mut rng);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len());
        prop_assert!(s.iter().all(|&r| (r as usize) < n));
    }
}
