//! Cardinality sources: the what-if-API analog the cost models consume.
//!
//! The paper's query-optimizer cost model (§3.2.2) costs queries over
//! tables that do not exist yet by registering hypothetical tables with a
//! cardinality and statistics through the DBMS's what-if APIs \[5, 25\].
//! In this reproduction the optimizer needs, for any column set `G` of the
//! base relation `R`:
//!
//! * `|G|` — the number of distinct combinations (the cardinality of the
//!   Group By result, and hence of the hypothetical table), and
//! * the average materialized row width of `G` plus the count column.
//!
//! Because every node in a logical plan is a Group By over `R`, the
//! distinct count of a subset of a node's columns within that node equals
//! its distinct count in `R` — so a single source over `R` prices every
//! hypothetical edge `u → v`.

use crate::distinct::{exact_distinct, DistinctEstimator};
use crate::freq::FrequencyProfile;
use crate::sample::reservoir_sample;
use crate::store::{StatsCreationLog, StatsStore};
use gbmqo_storage::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Supplies cardinality and width information about column sets of one
/// base relation.
pub trait CardinalitySource {
    /// Rows in the base relation.
    fn base_rows(&self) -> usize;

    /// Estimated distinct combinations of `cols` in the base relation.
    /// An empty set has cardinality 1 (the single global group).
    fn distinct(&mut self, cols: &[usize]) -> f64;

    /// Average row width in bytes of a materialized Group By result on
    /// `cols` (includes the 8-byte count column).
    fn row_width(&self, cols: &[usize]) -> f64;

    /// Average full-row width of the base relation in bytes — what a
    /// row-store scan of `R` reads per row regardless of the grouping
    /// columns (used by the simulated optimizer cost model).
    fn full_row_width(&self) -> f64;

    /// Statistics-creation log, if the source builds statistics lazily.
    fn creation_log(&self) -> Option<&StatsCreationLog> {
        None
    }
}

/// Exact cardinalities computed by scanning the table; an oracle used by
/// tests and by experiments that isolate search quality from estimation
/// error.
#[derive(Debug)]
pub struct ExactSource<'a> {
    table: &'a Table,
    cache: StatsStore,
}

impl<'a> ExactSource<'a> {
    /// Create an exact source over `table`.
    pub fn new(table: &'a Table) -> Self {
        ExactSource {
            table,
            cache: StatsStore::new(),
        }
    }
}

impl CardinalitySource for ExactSource<'_> {
    fn base_rows(&self) -> usize {
        self.table.num_rows()
    }

    fn distinct(&mut self, cols: &[usize]) -> f64 {
        if cols.is_empty() {
            return 1.0;
        }
        let table = self.table;
        self.cache
            .get_or_create(cols, || exact_distinct(table, cols) as f64)
    }

    fn row_width(&self, cols: &[usize]) -> f64 {
        self.table.stored_row_width(cols) + 8.0
    }

    fn full_row_width(&self) -> f64 {
        self.table.stored_total_row_width()
    }
}

/// Sampling-based cardinalities, the realistic counterpart of DBMS
/// statistics: one shared row sample, per-column-set estimates built on
/// first use (and their build time logged — Figure 12).
#[derive(Debug)]
pub struct SampledSource<'a> {
    table: &'a Table,
    sample: Vec<u32>,
    estimator: DistinctEstimator,
    store: StatsStore,
}

impl<'a> SampledSource<'a> {
    /// Create a source with a fresh reservoir sample of `sample_size` rows
    /// (deterministic for a given `seed`).
    pub fn new(
        table: &'a Table,
        sample_size: usize,
        estimator: DistinctEstimator,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = reservoir_sample(table.num_rows(), sample_size, &mut rng);
        SampledSource {
            table,
            sample,
            estimator,
            store: StatsStore::new(),
        }
    }

    /// Like [`SampledSource::new`], but rejects unusable sample
    /// specifications instead of silently producing a source whose every
    /// estimate is degenerate.
    pub fn try_new(
        table: &'a Table,
        sample_size: usize,
        estimator: DistinctEstimator,
        seed: u64,
    ) -> crate::error::Result<Self> {
        if sample_size == 0 {
            return Err(crate::error::StatsError::InvalidSample(
                "sample size must be at least 1".into(),
            ));
        }
        Ok(Self::new(table, sample_size, estimator, seed))
    }

    /// The sampled row ids.
    pub fn sample_rows(&self) -> &[u32] {
        &self.sample
    }

    fn estimate(&mut self, cols: &[usize]) -> f64 {
        let table = self.table;
        let sample = &self.sample;
        let estimator = self.estimator;

        self.store.get_or_create(cols, || {
            let p = FrequencyProfile::build(table, cols, sample);
            estimator.estimate(&p, table.num_rows())
        })
    }
}

impl CardinalitySource for SampledSource<'_> {
    fn base_rows(&self) -> usize {
        self.table.num_rows()
    }

    fn distinct(&mut self, cols: &[usize]) -> f64 {
        if cols.is_empty() {
            return 1.0;
        }
        let joint = self.estimate(cols);
        if cols.len() == 1 {
            return joint;
        }
        // Cap the joint estimate by the product of per-column distincts
        // (an upper bound that sampling can overshoot for wide sets) and
        // by the table size.
        let mut product = 1.0f64;
        for &c in cols {
            product *= self.estimate(&[c]).max(1.0);
            if product >= self.table.num_rows() as f64 {
                product = self.table.num_rows() as f64;
                break;
            }
        }
        joint.min(product).min(self.table.num_rows() as f64)
    }

    fn row_width(&self, cols: &[usize]) -> f64 {
        self.table.stored_row_width(cols) + 8.0
    }

    fn full_row_width(&self) -> f64 {
        self.table.stored_total_row_width()
    }

    fn creation_log(&self) -> Option<&StatsCreationLog> {
        Some(self.store.creation_log())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_col_table(rows: usize, d1: i64, d2: i64, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..d1)).collect();
        let b: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..d2)).collect();
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        Table::new(schema, vec![Column::from_i64(a), Column::from_i64(b)]).unwrap()
    }

    #[test]
    fn exact_source_is_exact() {
        let t = two_col_table(1000, 10, 20, 1);
        let mut s = ExactSource::new(&t);
        assert_eq!(s.base_rows(), 1000);
        assert_eq!(s.distinct(&[0]), 10.0);
        assert_eq!(s.distinct(&[1]), 20.0);
        assert_eq!(s.distinct(&[]), 1.0);
        let joint = s.distinct(&[0, 1]);
        assert!(joint <= 200.0 && joint > 20.0);
        assert_eq!(s.row_width(&[0]), 16.0);
    }

    #[test]
    fn sampled_source_tracks_creation_and_caches() {
        let t = two_col_table(10_000, 50, 50, 2);
        let mut s = SampledSource::new(&t, 1000, DistinctEstimator::Hybrid, 42);
        let d1 = s.distinct(&[0]);
        assert!((30.0..=80.0).contains(&d1), "estimate {d1} for true 50");
        let before = s.creation_log().unwrap().count();
        let _ = s.distinct(&[0]);
        assert_eq!(s.creation_log().unwrap().count(), before, "cache hit");
        // joint estimate touches singles too
        let joint = s.distinct(&[0, 1]);
        assert!(joint <= 2500.0 + 1e-9);
        assert!(joint <= 10_000.0);
        assert!(s.creation_log().unwrap().count() >= 3);
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let t = two_col_table(5000, 30, 30, 3);
        let mut a = SampledSource::new(&t, 500, DistinctEstimator::Gee, 7);
        let mut b = SampledSource::new(&t, 500, DistinctEstimator::Gee, 7);
        assert_eq!(a.distinct(&[0]), b.distinct(&[0]));
        assert_eq!(a.sample_rows(), b.sample_rows());
    }

    #[test]
    fn joint_capped_by_product_of_singles() {
        // Perfectly correlated columns: joint distinct = single distinct.
        let rows = 4000;
        let vals: Vec<i64> = (0..rows).map(|i| (i % 7) as i64).collect();
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![Column::from_i64(vals.clone()), Column::from_i64(vals)],
        )
        .unwrap();
        let mut s = SampledSource::new(&t, 400, DistinctEstimator::Hybrid, 5);
        let joint = s.distinct(&[0, 1]);
        assert!(joint <= 49.0 + 1e-9, "joint {joint} must be ≤ 7*7");
    }
}
