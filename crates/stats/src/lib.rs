//! # gbmqo-stats
//!
//! The statistics subsystem standing in for a commercial DBMS's statistics
//! and what-if analysis machinery, which the paper's query-optimizer cost
//! model (§3.2.2) depends on:
//!
//! * [`sample`] — reservoir sampling of row ids (one shared sample per
//!   table; the paper notes "the optimizer can create multiple statistics
//!   from one sample"),
//! * [`freq`] — sample frequency profiles (`f_i` = number of values seen
//!   exactly `i` times),
//! * [`distinct`] — sampling-based distinct-value estimators (GEE,
//!   Shlosser, first-order jackknife, and the Haas et al. hybrid the paper
//!   cites as \[3\]), plus exact counting,
//! * [`histogram`] — equi-depth histograms,
//! * [`column_stats`] — per-column summaries,
//! * [`store`] — a [`store::StatsStore`] caching per-column-set cardinality
//!   estimates with creation-cost accounting (experiment §6.7 / Figure 12),
//! * [`sketch`] — HyperLogLog distinct sketches maintained incrementally
//!   from appended delta rows (online sketch maintenance),
//! * [`source`] — the [`source::CardinalitySource`] trait (the what-if API
//!   analog) with sampled and exact implementations.

#![warn(missing_docs)]

pub mod column_stats;
pub mod distinct;
pub mod error;
pub mod freq;
pub mod histogram;
pub mod sample;
pub mod sketch;
pub mod source;
pub mod store;

pub use column_stats::ColumnStats;
pub use distinct::{exact_distinct, DistinctEstimator};
pub use error::{Result, StatsError};
pub use freq::FrequencyProfile;
pub use histogram::EquiDepthHistogram;
pub use sample::reservoir_sample;
pub use sketch::{DistinctSketch, TableSketches};
pub use source::{CardinalitySource, ExactSource, SampledSource};
pub use store::{StatsCreationLog, StatsStore};
