//! Online distinct-count sketches maintained incrementally under appends.
//!
//! The sample-based estimators in [`crate::distinct`] are built once from a
//! static sample and go stale as soon as rows are appended. This module
//! provides a HyperLogLog-style sketch whose registers can absorb *delta*
//! rows (the suffix appended since the sketch last saw the table) without
//! re-scanning history — the "online sketch maintenance" half of the
//! adaptive feedback loop. A [`TableSketches`] bundle keeps one sketch per
//! column and remembers how many rows it has consumed, so refreshing after
//! an append is a single call that scans only the new suffix.

use gbmqo_storage::Table;
use rustc_hash::FxHasher;
use std::hash::Hasher;

/// Default register-count exponent: 2^12 = 4096 registers (~1.6% standard
/// error), 4 KiB per column.
pub const DEFAULT_PRECISION: u32 = 12;

/// A HyperLogLog distinct-count sketch over one stream of values.
///
/// Values are ingested as 64-bit hashes; the top `p` bits pick a register
/// and the register keeps the maximum leading-zero rank seen for its
/// bucket. Insert-only tables only ever *raise* registers, so the sketch
/// is exactly incrementally maintainable under appends.
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    precision: u32,
    registers: Vec<u8>,
}

impl DistinctSketch {
    /// Create an empty sketch with `2^precision` registers.
    ///
    /// `precision` is clamped to `[4, 16]`.
    pub fn new(precision: u32) -> Self {
        let precision = precision.clamp(4, 16);
        DistinctSketch {
            precision,
            registers: vec![0u8; 1 << precision],
        }
    }

    /// Ingest one pre-hashed value.
    pub fn observe_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.precision)) as usize;
        // Rank of the first set bit in the remaining (64 - p) bits, 1-based.
        let rest = hash << self.precision;
        let rank = (rest.leading_zeros() + 1).min(64 - self.precision + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Ingest one raw key encoding (e.g. from `Column::encode_key`).
    pub fn observe_bytes(&mut self, bytes: &[u8]) {
        let mut h = FxHasher::default();
        h.write(bytes);
        // FxHasher concentrates entropy in the high bits of the final
        // multiply; fold once so both the register index and the rank
        // bits are well mixed.
        let raw = h.finish();
        self.observe_hash(raw ^ raw.rotate_left(29).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }

    /// Estimated number of distinct values seen.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            n => 0.7213 / (1.0 + 1.079 / n as f64),
        };
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 1.0 / (1u64 << r) as f64)
            .sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range (linear counting) correction.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Merge another sketch of the same precision into this one
    /// (register-wise max). Returns `false` (and leaves `self` untouched)
    /// if the precisions differ.
    pub fn merge(&mut self, other: &DistinctSketch) -> bool {
        if self.precision != other.precision {
            return false;
        }
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
        true
    }

    /// The register-count exponent.
    pub fn precision(&self) -> u32 {
        self.precision
    }
}

/// One sketch per column of a table, plus a high-water mark of consumed
/// rows so delta refreshes scan only the appended suffix.
#[derive(Debug, Clone)]
pub struct TableSketches {
    sketches: Vec<DistinctSketch>,
    rows_seen: usize,
    refreshes: u64,
}

impl TableSketches {
    /// Build sketches for every column of `table` by one full scan.
    pub fn build(table: &Table) -> Self {
        Self::build_with_precision(table, DEFAULT_PRECISION)
    }

    /// Build with an explicit register-count exponent.
    pub fn build_with_precision(table: &Table, precision: u32) -> Self {
        let mut s = TableSketches {
            sketches: (0..table.num_columns())
                .map(|_| DistinctSketch::new(precision))
                .collect(),
            rows_seen: 0,
            refreshes: 0,
        };
        s.update(table);
        s.refreshes = 0; // the initial scan is a build, not a refresh
        s
    }

    /// Absorb any rows of `table` beyond the high-water mark. `table` must
    /// be the same logical table the sketches were built from, grown only
    /// by appends; rows `[rows_seen, num_rows)` are scanned. Returns the
    /// number of delta rows consumed.
    pub fn update(&mut self, table: &Table) -> usize {
        let total = table.num_rows();
        if total <= self.rows_seen || table.num_columns() != self.sketches.len() {
            return 0;
        }
        let start = self.rows_seen;
        let mut buf = Vec::new();
        for (c, sketch) in self.sketches.iter_mut().enumerate() {
            let col = table.column(c);
            for row in start..total {
                buf.clear();
                col.encode_key(row, &mut buf);
                sketch.observe_bytes(&buf);
            }
        }
        self.rows_seen = total;
        self.refreshes += 1;
        total - start
    }

    /// Estimated distinct count of one column.
    pub fn column_estimate(&self, col: usize) -> Option<f64> {
        self.sketches.get(col).map(|s| s.estimate())
    }

    /// Estimate for a column *set*: the product of the per-column sketch
    /// estimates, capped by the number of rows consumed. The independence
    /// assumption is crude for correlated columns, but the cap keeps it
    /// sane and the feedback store's true observations override it.
    pub fn joint_estimate(&self, cols: &[usize]) -> Option<f64> {
        if cols.is_empty() {
            return Some(1.0);
        }
        let mut product = 1.0f64;
        for &c in cols {
            product *= self.column_estimate(c)?.max(1.0);
        }
        Some(product.min(self.rows_seen.max(1) as f64))
    }

    /// Rows consumed so far (the high-water mark).
    pub fn rows_seen(&self) -> usize {
        self.rows_seen
    }

    /// Number of delta refreshes absorbed since the initial build.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Number of per-column sketches.
    pub fn num_columns(&self) -> usize {
        self.sketches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema};

    fn table(rows: usize, a_card: i64, b_card: i64) -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64((0..rows as i64).map(|i| i % a_card).collect()),
                Column::from_i64((0..rows as i64).map(|i| (i * 7) % b_card).collect()),
            ],
        )
        .unwrap()
    }

    fn assert_close(est: f64, truth: f64) {
        let ratio = est.max(truth) / est.min(truth).max(1.0);
        assert!(
            ratio < 1.12,
            "estimate {est} too far from truth {truth} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn estimates_within_error_bound() {
        let t = table(50_000, 500, 2_000);
        let s = TableSketches::build(&t);
        assert_close(s.column_estimate(0).unwrap(), 500.0);
        assert_close(s.column_estimate(1).unwrap(), 2_000.0);
    }

    #[test]
    fn small_cardinalities_use_linear_counting() {
        let t = table(10_000, 3, 17);
        let s = TableSketches::build(&t);
        assert_close(s.column_estimate(0).unwrap(), 3.0);
        assert_close(s.column_estimate(1).unwrap(), 17.0);
    }

    #[test]
    fn incremental_update_matches_full_build() {
        let full = table(30_000, 900, 450);
        // Build from the first 10k rows, then absorb the remainder as a delta.
        let head = full.slice_rows(0, 10_000).unwrap();
        let mut inc = TableSketches::build(&head);
        assert_eq!(inc.rows_seen(), 10_000);
        let consumed = inc.update(&full);
        assert_eq!(consumed, 20_000);
        assert_eq!(inc.refreshes(), 1);

        let cold = TableSketches::build(&full);
        for c in 0..2 {
            assert_eq!(
                inc.column_estimate(c).unwrap(),
                cold.column_estimate(c).unwrap(),
                "incremental and cold sketches must agree exactly on column {c}"
            );
        }
    }

    #[test]
    fn update_is_idempotent_when_no_delta() {
        let t = table(5_000, 50, 60);
        let mut s = TableSketches::build(&t);
        assert_eq!(s.update(&t), 0);
        assert_eq!(s.refreshes(), 0);
    }

    #[test]
    fn joint_estimate_caps_at_rows_seen() {
        let t = table(10_000, 2_000, 3_000);
        let s = TableSketches::build(&t);
        // Product of singles (~6M) must be capped by the 10k rows seen.
        let joint = s.joint_estimate(&[0, 1]).unwrap();
        assert!(joint <= 10_000.0);
        assert_eq!(s.joint_estimate(&[]), Some(1.0));
        assert_eq!(s.joint_estimate(&[9]), None);
    }

    #[test]
    fn merge_requires_matching_precision() {
        let mut lhs = DistinctSketch::new(10);
        assert!(!lhs.merge(&DistinctSketch::new(12)));
        let mut rhs = DistinctSketch::new(10);
        rhs.observe_hash(0xdead_beef_cafe_f00d);
        assert!(lhs.merge(&rhs));
        assert!(lhs.estimate() > 0.0);
    }
}
