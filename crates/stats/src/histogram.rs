//! Equi-depth histograms over sampled column values.

use gbmqo_storage::{Table, Value};

/// An equi-depth histogram: bucket boundaries chosen so each bucket holds
/// (approximately) the same number of sampled rows.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram {
    /// Upper-inclusive bucket boundaries, ascending.
    boundaries: Vec<Value>,
    /// Rows per bucket (same length as `boundaries`).
    counts: Vec<usize>,
    total: usize,
}

impl EquiDepthHistogram {
    /// Build a histogram with up to `buckets` buckets over `sample_rows` of
    /// column `col` in `table`. NULLs are excluded (tracked separately by
    /// [`crate::column_stats::ColumnStats`]).
    pub fn build(table: &Table, col: usize, sample_rows: &[u32], buckets: usize) -> Self {
        let column = table.column(col);
        let mut vals: Vec<Value> = sample_rows
            .iter()
            .map(|&r| column.value(r as usize))
            .filter(|v| !v.is_null())
            .collect();
        vals.sort();
        let total = vals.len();
        if total == 0 || buckets == 0 {
            return EquiDepthHistogram {
                boundaries: Vec::new(),
                counts: Vec::new(),
                total: 0,
            };
        }
        let buckets = buckets.min(total);
        let per = total.div_ceil(buckets);
        let mut boundaries = Vec::with_capacity(buckets);
        let mut counts = Vec::with_capacity(buckets);
        let mut start = 0usize;
        while start < total {
            let mut end = (start + per).min(total);
            // Extend the bucket so equal values never straddle a boundary.
            while end < total && vals[end] == vals[end - 1] {
                end += 1;
            }
            boundaries.push(vals[end - 1].clone());
            counts.push(end - start);
            start = end;
        }
        EquiDepthHistogram {
            boundaries,
            counts,
            total,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len()
    }

    /// Total (non-null) sampled rows.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Estimated fraction of rows with value ≤ `v`.
    ///
    /// Buckets store only upper boundaries, so a probe below the sampled
    /// minimum is estimated at half the first bucket rather than 0 — a
    /// deliberate coarse approximation (half-bucket rule).
    pub fn selectivity_le(&self, v: &Value) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut cum = 0usize;
        for (b, c) in self.boundaries.iter().zip(&self.counts) {
            if v >= b {
                cum += c;
            } else {
                // assume half the straddling bucket qualifies
                cum += c / 2;
                break;
            }
        }
        (cum as f64 / self.total as f64).min(1.0)
    }

    /// Bucket boundaries (for diagnostics).
    pub fn boundaries(&self) -> &[Value] {
        &self.boundaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema};

    fn table(vals: Vec<i64>) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        Table::new(schema, vec![Column::from_i64(vals)]).unwrap()
    }

    #[test]
    fn buckets_are_balanced() {
        let t = table((0..100).collect());
        let rows: Vec<u32> = (0..100).collect();
        let h = EquiDepthHistogram::build(&t, 0, &rows, 4);
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.total(), 100);
        assert!(h.counts.iter().all(|&c| c == 25), "{:?}", h.counts);
        assert_eq!(h.boundaries.last().unwrap(), &Value::Int(99));
    }

    #[test]
    fn duplicates_do_not_straddle() {
        let t = table(vec![1, 1, 1, 1, 1, 2, 3, 4]);
        let rows: Vec<u32> = (0..8).collect();
        let h = EquiDepthHistogram::build(&t, 0, &rows, 4);
        // first bucket must swallow all the 1s
        assert_eq!(h.boundaries[0], Value::Int(1));
        assert_eq!(h.counts[0], 5);
    }

    #[test]
    fn selectivity_estimates() {
        let t = table((0..100).collect());
        let rows: Vec<u32> = (0..100).collect();
        let h = EquiDepthHistogram::build(&t, 0, &rows, 10);
        let s = h.selectivity_le(&Value::Int(49));
        assert!((0.35..=0.65).contains(&s), "sel {s}");
        assert_eq!(h.selectivity_le(&Value::Int(1_000)), 1.0);
    }

    #[test]
    fn empty_and_null_handling() {
        let t = table(vec![]);
        let h = EquiDepthHistogram::build(&t, 0, &[], 8);
        assert_eq!(h.num_buckets(), 0);
        assert_eq!(h.selectivity_le(&Value::Int(5)), 0.0);
    }
}
