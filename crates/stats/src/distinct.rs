//! Distinct-value estimation.
//!
//! The paper's cardinality cost model (§3.2.1) "assume[s] that known
//! techniques for estimating number of distinct values such as \[3\] may be
//! used" — \[3\] being Haas, Naughton, Seshadri & Stokes, *Sampling-based
//! estimation of the number of distinct values of an attribute*, VLDB 1995.
//! This module implements the standard estimators from that line of work:
//!
//! * **GEE** (Guaranteed-Error Estimator): `D = sqrt(n/r)·f₁ + Σ_{i≥2} fᵢ`
//! * **Shlosser's estimator** (good under skew)
//! * **First-order jackknife** (good for near-uniform data)
//! * **Hybrid** (Haas et al.): pick jackknife vs Shlosser based on the
//!   squared coefficient of variation of the frequency distribution.
//!
//! All estimates are clamped to `[d, n]` where `d` is the distinct count in
//! the sample and `n` the table size.

use crate::freq::FrequencyProfile;
use gbmqo_storage::{KeyEncoder, RowKey, Table};
use rustc_hash::FxHashSet;

/// Which estimator to apply to a sample frequency profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistinctEstimator {
    /// Guaranteed-Error Estimator (Charikar et al.): robust default.
    #[default]
    Gee,
    /// Shlosser's estimator: accurate for skewed data.
    Shlosser,
    /// Smoothed first-order jackknife: accurate for near-uniform data.
    Jackknife,
    /// Haas et al. hybrid: switches between jackknife and Shlosser on an
    /// estimated skew statistic.
    Hybrid,
}

impl DistinctEstimator {
    /// Estimate the number of distinct values in a table of `table_rows`
    /// rows from the sample profile `p`.
    pub fn estimate(&self, p: &FrequencyProfile, table_rows: usize) -> f64 {
        let n = table_rows as f64;
        let r = p.sample_size() as f64;
        let d = p.distinct_in_sample() as f64;
        if p.sample_size() == 0 || table_rows == 0 {
            // No information: report 0 (callers that need a usable
            // cardinality must sample at least one row).
            return 0.0;
        }
        if p.sample_size() >= table_rows {
            return d; // the "sample" is the full table
        }
        let est = match self {
            DistinctEstimator::Gee => gee(p, n, r),
            DistinctEstimator::Shlosser => shlosser(p, n, r),
            DistinctEstimator::Jackknife => jackknife(p, n, r),
            DistinctEstimator::Hybrid => hybrid(p, n, r),
        };
        est.clamp(d, n)
    }
}

fn gee(p: &FrequencyProfile, n: f64, r: f64) -> f64 {
    let f1 = p.f(1) as f64;
    let rest: f64 = (2..=p.max_frequency()).map(|i| p.f(i) as f64).sum();
    (n / r).sqrt() * f1 + rest
}

fn shlosser(p: &FrequencyProfile, n: f64, r: f64) -> f64 {
    let q = r / n;
    let f1 = p.f(1) as f64;
    if f1 == 0.0 {
        return p.distinct_in_sample() as f64;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 1..=p.max_frequency() {
        let fi = p.f(i) as f64;
        if fi == 0.0 {
            continue;
        }
        num += (1.0 - q).powi(i as i32) * fi;
        den += (i as f64) * q * (1.0 - q).powi(i as i32 - 1) * fi;
    }
    if den <= 0.0 {
        return p.distinct_in_sample() as f64;
    }
    p.distinct_in_sample() as f64 + f1 * num / den
}

fn jackknife(p: &FrequencyProfile, n: f64, r: f64) -> f64 {
    // Unsmoothed first-order jackknife (Duj1):
    //   D = d / (1 - (1 - q) * f1 / r),  q = r/n
    let d = p.distinct_in_sample() as f64;
    let f1 = p.f(1) as f64;
    let q = r / n;
    let denom = 1.0 - (1.0 - q) * f1 / r;
    if denom <= 0.0 {
        n
    } else {
        d / denom
    }
}

/// Squared coefficient of variation of class sizes, method-of-moments
/// estimate (Haas et al. eq. for gamma²), floored at 0.
fn gamma_squared(p: &FrequencyProfile, n: f64, r: f64, d_hat: f64) -> f64 {
    let sum_i2: f64 = (1..=p.max_frequency())
        .map(|i| (i as f64) * (i as f64 - 1.0) * p.f(i) as f64)
        .sum();
    let g = (d_hat / n) * (n / r) * (n / r) * sum_i2 / n + d_hat / n - 1.0;
    g.max(0.0)
}

fn hybrid(p: &FrequencyProfile, n: f64, r: f64) -> f64 {
    let duj1 = jackknife(p, n, r);
    let g2 = gamma_squared(p, n, r, duj1);
    // Low skew: jackknife; otherwise Shlosser. The cutoff follows the
    // spirit of Haas et al.'s hybrid estimator.
    if g2 < 1.0 {
        duj1
    } else {
        shlosser(p, n, r)
    }
}

/// Exactly count the distinct value combinations of `cols` in `table`.
pub fn exact_distinct(table: &Table, cols: &[usize]) -> usize {
    let key_cols: Vec<&gbmqo_storage::Column> = cols.iter().map(|&c| table.column(c)).collect();
    let mut enc = KeyEncoder::new();
    let mut seen: FxHashSet<RowKey> = FxHashSet::default();
    for row in 0..table.num_rows() {
        seen.insert(enc.encode(&key_cols, row));
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(vals: Vec<i64>) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        Table::new(schema, vec![Column::from_i64(vals)]).unwrap()
    }

    fn profile(vals: &[i64], sample: &[u32]) -> FrequencyProfile {
        FrequencyProfile::build(&table(vals.to_vec()), &[0], sample)
    }

    #[test]
    fn exact_distinct_counts() {
        let t = table(vec![1, 2, 2, 3, 3, 3]);
        assert_eq!(exact_distinct(&t, &[0]), 3);
        assert_eq!(exact_distinct(&Table::empty(t.schema().clone()), &[0]), 0);
    }

    #[test]
    fn exact_distinct_multi_column() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64(vec![1, 1, 2, 2]),
                Column::from_i64(vec![1, 2, 1, 1]),
            ],
        )
        .unwrap();
        assert_eq!(exact_distinct(&t, &[0]), 2);
        assert_eq!(exact_distinct(&t, &[1]), 2);
        assert_eq!(exact_distinct(&t, &[0, 1]), 3);
    }

    #[test]
    fn full_sample_returns_sample_distinct() {
        let vals = vec![1, 2, 2, 3];
        let p = profile(&vals, &[0, 1, 2, 3]);
        for est in [
            DistinctEstimator::Gee,
            DistinctEstimator::Shlosser,
            DistinctEstimator::Jackknife,
            DistinctEstimator::Hybrid,
        ] {
            assert_eq!(est.estimate(&p, 4), 3.0, "{est:?}");
        }
    }

    #[test]
    fn estimates_are_clamped() {
        let vals: Vec<i64> = (0..100).collect();
        let p = profile(&vals, &(0..10).collect::<Vec<u32>>());
        for est in [
            DistinctEstimator::Gee,
            DistinctEstimator::Shlosser,
            DistinctEstimator::Jackknife,
            DistinctEstimator::Hybrid,
        ] {
            let e = est.estimate(&p, 100);
            assert!((10.0..=100.0).contains(&e), "{est:?} gave {e}");
        }
    }

    #[test]
    fn gee_formula_matches_hand_computation() {
        // sample: 1,1,2 → f1=1, f2=1; n=30, r=3 → sqrt(10)*1 + 1
        let p = profile(&[1, 1, 2], &[0, 1, 2]);
        let e = DistinctEstimator::Gee.estimate(&p, 30);
        assert!((e - (10f64.sqrt() + 1.0)).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn estimators_recover_uniform_distinct_roughly() {
        // 10_000 rows, 100 distinct values uniform; sample 1_000.
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<i64> = (0..10_000).map(|_| rng.gen_range(0..100)).collect();
        let t = table(vals);
        let sample: Vec<u32> = crate::sample::reservoir_sample(10_000, 1_000, &mut rng);
        let p = FrequencyProfile::build(&t, &[0], &sample);
        for est in [
            DistinctEstimator::Jackknife,
            DistinctEstimator::Hybrid,
            DistinctEstimator::Shlosser,
        ] {
            let e = est.estimate(&p, 10_000);
            assert!(
                (80.0..=140.0).contains(&e),
                "{est:?} estimated {e}, true 100"
            );
        }
    }

    #[test]
    fn estimators_handle_skew_without_blowup() {
        // Heavily skewed: one value 9_900 times, 100 singletons.
        let mut vals = vec![0i64; 9_900];
        vals.extend(1..=100);
        let t = table(vals);
        let mut rng = StdRng::seed_from_u64(8);
        let sample = crate::sample::reservoir_sample(10_000, 1_000, &mut rng);
        let p = FrequencyProfile::build(&t, &[0], &sample);
        let e = DistinctEstimator::Hybrid.estimate(&p, 10_000);
        // True 101. Anything within an order of magnitude is fine for a
        // cost model; mainly assert it does not explode toward n.
        assert!(e < 2_500.0, "hybrid estimated {e}, true 101");
    }

    #[test]
    fn zero_sample_estimates_zero() {
        let p = profile(&[1, 2, 3], &[]);
        assert_eq!(DistinctEstimator::Gee.estimate(&p, 3), 0.0);
    }
}
