//! Per-column summary statistics.

use crate::distinct::DistinctEstimator;
use crate::freq::FrequencyProfile;
use crate::histogram::EquiDepthHistogram;
use gbmqo_storage::{Table, Value};

/// Summary statistics for one column, built from a shared row sample —
/// the analog of `CREATE STATISTICS` in the paper's §3.2.2/§6.7.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Estimated number of distinct values in the full table.
    pub distinct: f64,
    /// Fraction of NULLs observed in the sample.
    pub null_fraction: f64,
    /// Smallest non-null sampled value.
    pub min: Option<Value>,
    /// Largest non-null sampled value.
    pub max: Option<Value>,
    /// Average materialized width of one value, bytes.
    pub avg_width: f64,
    /// Equi-depth histogram over the sample.
    pub histogram: EquiDepthHistogram,
}

impl ColumnStats {
    /// Build stats for `col` of `table` from `sample_rows`.
    pub fn build(
        table: &Table,
        col: usize,
        sample_rows: &[u32],
        estimator: DistinctEstimator,
        histogram_buckets: usize,
    ) -> Self {
        let profile = FrequencyProfile::build(table, &[col], sample_rows);
        let distinct = estimator.estimate(&profile, table.num_rows());
        let column = table.column(col);

        let mut nulls = 0usize;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for &r in sample_rows {
            let v = column.value(r as usize);
            if v.is_null() {
                nulls += 1;
                continue;
            }
            if min.as_ref().is_none_or(|m| v < *m) {
                min = Some(v.clone());
            }
            if max.as_ref().is_none_or(|m| v > *m) {
                max = Some(v);
            }
        }
        let null_fraction = if sample_rows.is_empty() {
            0.0
        } else {
            nulls as f64 / sample_rows.len() as f64
        };
        ColumnStats {
            distinct,
            null_fraction,
            min,
            max,
            avg_width: column.avg_value_width(),
            histogram: EquiDepthHistogram::build(table, col, sample_rows, histogram_buckets),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{ColumnBuilder, DataType, Field, Schema, Table};

    fn sample_table() -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let mut b = ColumnBuilder::new(DataType::Int64);
        for v in [
            Value::Int(5),
            Value::Null,
            Value::Int(1),
            Value::Int(5),
            Value::Int(9),
        ] {
            b.push(&v).unwrap();
        }
        Table::new(schema, vec![b.finish()]).unwrap()
    }

    #[test]
    fn stats_capture_min_max_nulls() {
        let t = sample_table();
        let rows: Vec<u32> = (0..5).collect();
        let s = ColumnStats::build(&t, 0, &rows, DistinctEstimator::Gee, 4);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert!((s.null_fraction - 0.2).abs() < 1e-9);
        // full sample ⇒ exact distinct (NULL counts as a value combination
        // in GROUP BY but column distinct tracks non-null + null key)
        assert!(s.distinct >= 3.0);
        assert_eq!(s.avg_width, 8.0);
        assert!(s.histogram.total() > 0);
    }

    #[test]
    fn empty_sample_is_safe() {
        let t = sample_table();
        let s = ColumnStats::build(&t, 0, &[], DistinctEstimator::Gee, 4);
        assert_eq!(s.null_fraction, 0.0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.distinct, 0.0);
    }
}
