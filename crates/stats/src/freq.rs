//! Sample frequency profiles: the `f_i` statistics that distinct-value
//! estimators consume.

use gbmqo_storage::{KeyEncoder, RowKey, Table};
use rustc_hash::FxHashMap;

/// Frequency profile of a sample of rows projected on a set of columns.
///
/// `f[i]` (1-based, exposed through [`FrequencyProfile::f`]) is the number
/// of distinct values that occur exactly `i` times in the sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyProfile {
    counts: Vec<usize>, // counts[i-1] = f_i
    sample_size: usize,
    distinct_in_sample: usize,
}

impl FrequencyProfile {
    /// Build a profile of `sample_rows` of `table`, projected on `cols`.
    pub fn build(table: &Table, cols: &[usize], sample_rows: &[u32]) -> Self {
        let key_cols: Vec<&gbmqo_storage::Column> = cols.iter().map(|&c| table.column(c)).collect();
        let mut enc = KeyEncoder::new();
        let mut per_value: FxHashMap<RowKey, usize> = FxHashMap::default();
        for &row in sample_rows {
            *per_value
                .entry(enc.encode(&key_cols, row as usize))
                .or_insert(0) += 1;
        }
        let mut counts: Vec<usize> = Vec::new();
        for (_, c) in per_value.iter() {
            if *c > counts.len() {
                counts.resize(*c, 0);
            }
            counts[*c - 1] += 1;
        }
        FrequencyProfile {
            counts,
            sample_size: sample_rows.len(),
            distinct_in_sample: per_value.len(),
        }
    }

    /// `f_i`: distinct values occurring exactly `i` times (i ≥ 1).
    pub fn f(&self, i: usize) -> usize {
        if i == 0 || i > self.counts.len() {
            0
        } else {
            self.counts[i - 1]
        }
    }

    /// Highest frequency observed.
    pub fn max_frequency(&self) -> usize {
        self.counts.len()
    }

    /// Sample size `r`.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Distinct values in the sample, `d = Σ f_i`.
    pub fn distinct_in_sample(&self) -> usize {
        self.distinct_in_sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::DataType;
    use gbmqo_storage::{Column, Field, Schema, Table};

    fn table(vals: Vec<i64>) -> Table {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        Table::new(schema, vec![Column::from_i64(vals)]).unwrap()
    }

    #[test]
    fn profile_counts_frequencies() {
        // values: 1,1,1,2,2,3 → f1=1 (3), f2=1 (2), f3=1 (1)
        let t = table(vec![1, 1, 1, 2, 2, 3]);
        let rows: Vec<u32> = (0..6).collect();
        let p = FrequencyProfile::build(&t, &[0], &rows);
        assert_eq!(p.sample_size(), 6);
        assert_eq!(p.distinct_in_sample(), 3);
        assert_eq!(p.f(1), 1);
        assert_eq!(p.f(2), 1);
        assert_eq!(p.f(3), 1);
        assert_eq!(p.f(4), 0);
        assert_eq!(p.f(0), 0);
        assert_eq!(p.max_frequency(), 3);
    }

    #[test]
    fn profile_respects_sample_subset() {
        let t = table(vec![1, 1, 2, 3, 3, 3]);
        let p = FrequencyProfile::build(&t, &[0], &[0, 2, 3]);
        // sampled values: 1,2,3 → all singletons
        assert_eq!(p.distinct_in_sample(), 3);
        assert_eq!(p.f(1), 3);
    }

    #[test]
    fn multi_column_profile() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64(vec![1, 1, 1, 2]),
                Column::from_i64(vec![5, 5, 6, 5]),
            ],
        )
        .unwrap();
        let rows: Vec<u32> = (0..4).collect();
        let p = FrequencyProfile::build(&t, &[0, 1], &rows);
        // pairs: (1,5)x2, (1,6), (2,5)
        assert_eq!(p.distinct_in_sample(), 3);
        assert_eq!(p.f(1), 2);
        assert_eq!(p.f(2), 1);
    }

    #[test]
    fn empty_sample() {
        let t = table(vec![1, 2, 3]);
        let p = FrequencyProfile::build(&t, &[0], &[]);
        assert_eq!(p.sample_size(), 0);
        assert_eq!(p.distinct_in_sample(), 0);
        assert_eq!(p.max_frequency(), 0);
    }
}
