//! Reservoir sampling of row ids.

use rand::Rng;

/// Draw a uniform random sample (without replacement) of `sample_size` row
/// ids from `0..num_rows` using Algorithm R. If `sample_size >= num_rows`
/// the full range is returned (in order).
pub fn reservoir_sample<R: Rng>(num_rows: usize, sample_size: usize, rng: &mut R) -> Vec<u32> {
    if sample_size >= num_rows {
        return (0..num_rows as u32).collect();
    }
    let mut reservoir: Vec<u32> = (0..sample_size as u32).collect();
    for i in sample_size..num_rows {
        let j = rng.gen_range(0..=i);
        if j < sample_size {
            reservoir[j] = i as u32;
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_sample_when_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = reservoir_sample(5, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
        let s = reservoir_sample(5, 5, &mut rng);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn sample_is_without_replacement() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = reservoir_sample(10_000, 500, &mut rng);
        assert_eq!(s.len(), 500);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 500, "sample contains duplicates");
        assert!(sorted.iter().all(|&r| (r as usize) < 10_000));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Each row id should appear with probability k/n; check the mean of
        // sampled ids is near n/2 over repetitions.
        let mut rng = StdRng::seed_from_u64(3);
        let mut total: f64 = 0.0;
        let reps = 50;
        for _ in 0..reps {
            let s = reservoir_sample(1000, 100, &mut rng);
            total += s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
        }
        let mean = total / reps as f64;
        assert!((mean - 499.5).abs() < 40.0, "mean {mean} not near 499.5");
    }

    #[test]
    fn zero_rows_and_zero_sample() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(reservoir_sample(0, 10, &mut rng).is_empty());
        assert!(reservoir_sample(10, 0, &mut rng).is_empty());
    }
}
