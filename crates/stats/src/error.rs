//! Error type for the statistics subsystem.

use std::fmt;

/// Errors produced when building statistics or cardinality sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// A sample specification was unusable (e.g. zero sample size).
    InvalidSample(String),
    /// A column ordinal was out of range for the profiled table.
    ColumnOutOfRange {
        /// The offending ordinal.
        ordinal: usize,
        /// Number of columns the table has.
        num_columns: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidSample(msg) => write!(f, "invalid sample: {msg}"),
            StatsError::ColumnOutOfRange {
                ordinal,
                num_columns,
            } => write!(
                f,
                "column ordinal {ordinal} out of range for a {num_columns}-column table"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(StatsError::InvalidSample("empty".into())
            .to_string()
            .contains("invalid sample"));
        let e = StatsError::ColumnOutOfRange {
            ordinal: 5,
            num_columns: 3,
        };
        assert!(e.to_string().contains("ordinal 5"));
    }
}
