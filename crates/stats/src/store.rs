//! Caching of per-column-set cardinality estimates and accounting for the
//! cost of creating statistics (experiment §6.7 / Figure 12).

use rustc_hash::FxHashMap;
use std::time::Duration;

/// One statistics-creation event: which column set, and how long building
/// the statistic took.
#[derive(Debug, Clone)]
pub struct StatsCreationEvent {
    /// Sorted column ordinals the statistic covers.
    pub cols: Vec<usize>,
    /// Wall time spent building it.
    pub elapsed: Duration,
}

/// Log of statistics created so far.
#[derive(Debug, Clone, Default)]
pub struct StatsCreationLog {
    /// All creation events in order.
    pub events: Vec<StatsCreationEvent>,
}

impl StatsCreationLog {
    /// Total time spent creating statistics.
    pub fn total(&self) -> Duration {
        self.events.iter().map(|e| e.elapsed).sum()
    }

    /// Number of statistics created.
    pub fn count(&self) -> usize {
        self.events.len()
    }
}

/// A cache of column-set → distinct-count estimates for one table.
///
/// The paper amortizes statistics: a statistic is created the first time a
/// Group By over its columns is encountered and reused afterwards. The
/// store mirrors that behaviour and records what each creation cost.
#[derive(Debug, Default)]
pub struct StatsStore {
    cache: FxHashMap<Vec<usize>, f64>,
    log: StatsCreationLog,
}

impl StatsStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the cached estimate for `cols` (sorted internally), or build it
    /// with `build` and record the creation cost.
    pub fn get_or_create(&mut self, cols: &[usize], build: impl FnOnce() -> f64) -> f64 {
        let key = sorted(cols);
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        let start = std::time::Instant::now();
        let v = build();
        let elapsed = start.elapsed();
        self.log.events.push(StatsCreationEvent {
            cols: key.clone(),
            elapsed,
        });
        self.cache.insert(key, v);
        v
    }

    /// Peek without creating.
    pub fn get(&self, cols: &[usize]) -> Option<f64> {
        self.cache.get(&sorted(cols)).copied()
    }

    /// Insert or overwrite an estimate without logging a creation.
    pub fn put(&mut self, cols: &[usize], value: f64) {
        self.cache.insert(sorted(cols), value);
    }

    /// The creation log.
    pub fn creation_log(&self) -> &StatsCreationLog {
        &self.log
    }

    /// Number of cached column sets.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

fn sorted(cols: &[usize]) -> Vec<usize> {
    let mut v = cols.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_caches() {
        let mut s = StatsStore::new();
        let mut builds = 0;
        for _ in 0..3 {
            let v = s.get_or_create(&[2, 1], || {
                builds += 1;
                42.0
            });
            assert_eq!(v, 42.0);
        }
        assert_eq!(builds, 1);
        assert_eq!(s.creation_log().count(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn key_is_order_insensitive() {
        let mut s = StatsStore::new();
        s.get_or_create(&[3, 1], || 7.0);
        assert_eq!(s.get(&[1, 3]), Some(7.0));
        assert_eq!(s.get(&[3, 1, 1]), Some(7.0)); // dedup
        assert_eq!(s.get(&[1]), None);
    }

    #[test]
    fn put_does_not_log() {
        let mut s = StatsStore::new();
        s.put(&[0], 5.0);
        assert_eq!(s.get(&[0]), Some(5.0));
        assert_eq!(s.creation_log().count(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn creation_log_totals() {
        let mut s = StatsStore::new();
        s.get_or_create(&[0], || 1.0);
        s.get_or_create(&[1], || 2.0);
        let log = s.creation_log();
        assert_eq!(log.count(), 2);
        assert!(log.total() >= Duration::ZERO);
        assert_eq!(log.events[0].cols, vec![0]);
    }
}
