//! Caching of per-column-set cardinality estimates and accounting for the
//! cost of creating statistics (experiment §6.7 / Figure 12).

use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::time::Duration;

/// One statistics-creation event: which column set, and how long building
/// the statistic took.
#[derive(Debug, Clone)]
pub struct StatsCreationEvent {
    /// Sorted column ordinals the statistic covers.
    pub cols: Vec<usize>,
    /// Wall time spent building it.
    pub elapsed: Duration,
}

/// Log of statistics created so far.
#[derive(Debug, Clone, Default)]
pub struct StatsCreationLog {
    /// All creation events in order.
    pub events: Vec<StatsCreationEvent>,
}

impl StatsCreationLog {
    /// Total time spent creating statistics.
    pub fn total(&self) -> Duration {
        self.events.iter().map(|e| e.elapsed).sum()
    }

    /// Number of statistics created.
    pub fn count(&self) -> usize {
        self.events.len()
    }
}

/// A cache of column-set → distinct-count estimates for one table.
///
/// The paper amortizes statistics: a statistic is created the first time a
/// Group By over its columns is encountered and reused afterwards. The
/// store mirrors that behaviour and records what each creation cost.
///
/// With [`StatsStore::with_capacity`] the store is bounded: once full, the
/// least-recently-used column set is evicted, and re-creating an evicted
/// statistic re-charges its cost to the creation log (the charge is for
/// *work done*, not for entries alive).
#[derive(Debug, Default)]
pub struct StatsStore {
    cache: FxHashMap<Vec<usize>, f64>,
    log: StatsCreationLog,
    capacity: Option<usize>,
    lru: VecDeque<Vec<usize>>,
    evictions: u64,
}

impl StatsStore {
    /// Create an empty, unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty store that holds at most `capacity` column sets,
    /// evicting the least recently used once full. A capacity of zero
    /// means unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        StatsStore {
            capacity: (capacity > 0).then_some(capacity),
            ..Self::default()
        }
    }

    /// Fetch the cached estimate for `cols` (sorted internally), or build it
    /// with `build` and record the creation cost.
    pub fn get_or_create(&mut self, cols: &[usize], build: impl FnOnce() -> f64) -> f64 {
        let key = sorted(cols);
        if let Some(&v) = self.cache.get(&key) {
            self.touch(&key);
            return v;
        }
        let start = std::time::Instant::now();
        let v = build();
        let elapsed = start.elapsed();
        self.log.events.push(StatsCreationEvent {
            cols: key.clone(),
            elapsed,
        });
        self.insert(key, v);
        v
    }

    /// Peek without creating.
    pub fn get(&self, cols: &[usize]) -> Option<f64> {
        self.cache.get(&sorted(cols)).copied()
    }

    /// Insert or overwrite an estimate without logging a creation.
    pub fn put(&mut self, cols: &[usize], value: f64) {
        self.insert(sorted(cols), value);
    }

    fn insert(&mut self, key: Vec<usize>, value: f64) {
        if self.cache.insert(key.clone(), value).is_some() {
            self.touch(&key);
        } else {
            self.lru.push_back(key);
            if let Some(cap) = self.capacity {
                while self.cache.len() > cap {
                    if let Some(victim) = self.lru.pop_front() {
                        self.cache.remove(&victim);
                        self.evictions += 1;
                    } else {
                        break;
                    }
                }
            }
        }
    }

    fn touch(&mut self, key: &[usize]) {
        if self.capacity.is_none() {
            return; // unbounded stores never evict; skip the bookkeeping
        }
        if let Some(pos) = self.lru.iter().position(|k| k == key) {
            let k = self.lru.remove(pos).unwrap();
            self.lru.push_back(k);
        }
    }

    /// Number of entries evicted so far (always zero for unbounded stores).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The creation log.
    pub fn creation_log(&self) -> &StatsCreationLog {
        &self.log
    }

    /// Number of cached column sets.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

fn sorted(cols: &[usize]) -> Vec<usize> {
    let mut v = cols.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_caches() {
        let mut s = StatsStore::new();
        let mut builds = 0;
        for _ in 0..3 {
            let v = s.get_or_create(&[2, 1], || {
                builds += 1;
                42.0
            });
            assert_eq!(v, 42.0);
        }
        assert_eq!(builds, 1);
        assert_eq!(s.creation_log().count(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn key_is_order_insensitive() {
        let mut s = StatsStore::new();
        s.get_or_create(&[3, 1], || 7.0);
        assert_eq!(s.get(&[1, 3]), Some(7.0));
        assert_eq!(s.get(&[3, 1, 1]), Some(7.0)); // dedup
        assert_eq!(s.get(&[1]), None);
    }

    #[test]
    fn put_does_not_log() {
        let mut s = StatsStore::new();
        s.put(&[0], 5.0);
        assert_eq!(s.get(&[0]), Some(5.0));
        assert_eq!(s.creation_log().count(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn bounded_store_evicts_lru() {
        let mut s = StatsStore::with_capacity(2);
        s.get_or_create(&[0], || 1.0);
        s.get_or_create(&[1], || 2.0);
        // Touch [0] so [1] becomes the LRU victim.
        assert_eq!(s.get_or_create(&[0], || panic!("cached")), 1.0);
        s.get_or_create(&[2], || 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.get(&[0]), Some(1.0));
        assert_eq!(s.get(&[1]), None); // evicted
        assert_eq!(s.get(&[2]), Some(3.0));
    }

    #[test]
    fn recreation_after_eviction_recharges_cost() {
        let mut s = StatsStore::with_capacity(1);
        let mut builds = 0;
        let mut build = |store: &mut StatsStore, cols: &[usize]| {
            store.get_or_create(cols, || {
                builds += 1;
                builds as f64
            })
        };
        build(&mut s, &[0]); // created: 1 event
        build(&mut s, &[1]); // evicts [0]: 2 events
        assert_eq!(s.evictions(), 1);
        // Re-creating the evicted [0] must run the builder again and log a
        // fresh creation event — the cost is re-charged, not reused.
        let v = build(&mut s, &[0]);
        assert_eq!(v, 3.0, "builder must re-run after eviction");
        assert_eq!(builds, 3);
        let log = s.creation_log();
        assert_eq!(log.count(), 3);
        assert_eq!(log.events[0].cols, vec![0]);
        assert_eq!(log.events[2].cols, vec![0]);
        // Both [0] creations carry their own (non-negative) charge.
        assert!(log.total() >= log.events[2].elapsed);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let mut s = StatsStore::with_capacity(0);
        for i in 0..100 {
            s.get_or_create(&[i], || i as f64);
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.evictions(), 0);
    }

    #[test]
    fn creation_log_totals() {
        let mut s = StatsStore::new();
        s.get_or_create(&[0], || 1.0);
        s.get_or_create(&[1], || 2.0);
        let log = s.creation_log();
        assert_eq!(log.count(), 2);
        assert!(log.total() >= Duration::ZERO);
        assert_eq!(log.events[0].cols, vec![0]);
    }
}
