//! A synthetic stand-in for PIR-NREF's `neighboring_seq` relation
//! (78 M rows, 10 columns used in the paper): protein-neighborhood pairs
//! with two high-cardinality id columns and several small categorical
//! attributes.

use crate::spec::{ColumnGen, TableSpec};
use gbmqo_storage::Table;

/// Column names of the neighboring_seq table.
pub const NREF_COLUMNS: [&str; 10] = [
    "seq_id",
    "neighbor_id",
    "organism",
    "source_db",
    "method",
    "score_bucket",
    "length_bucket",
    "identity_bucket",
    "taxon_group",
    "cluster_id",
];

/// Generation spec for a neighboring_seq table of `rows` rows.
pub fn neighboring_seq_spec(rows: usize, seed: u64) -> TableSpec {
    TableSpec::new(
        vec![
            (
                "seq_id".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 6).max(8),
                },
            ),
            (
                "neighbor_id".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 4).max(8),
                },
            ),
            (
                "organism".into(),
                ColumnGen::Text {
                    distinct: 900,
                    avg_len: 14,
                },
            ),
            (
                "source_db".into(),
                ColumnGen::Text {
                    distinct: 6,
                    avg_len: 5,
                },
            ),
            (
                "method".into(),
                ColumnGen::Text {
                    distinct: 3,
                    avg_len: 6,
                },
            ),
            ("score_bucket".into(), ColumnGen::IntCat { distinct: 20 }),
            ("length_bucket".into(), ColumnGen::IntCat { distinct: 30 }),
            ("identity_bucket".into(), ColumnGen::IntCat { distinct: 10 }),
            (
                "taxon_group".into(),
                ColumnGen::Text {
                    distinct: 40,
                    avg_len: 10,
                },
            ),
            (
                "cluster_id".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 50).max(4),
                },
            ),
        ],
        seed,
    )
    // Biological databases are heavily skewed toward model organisms.
    .with_skew(0.8)
}

/// Generate a scaled neighboring_seq table.
pub fn neighboring_seq(rows: usize, seed: u64) -> Table {
    neighboring_seq_spec(rows, seed).generate(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::Value;

    #[test]
    fn shape_matches_paper() {
        let t = neighboring_seq(3000, 1);
        assert_eq!(t.num_columns(), 10);
        for c in NREF_COLUMNS {
            assert!(t.schema().index_of(c).is_ok(), "{c}");
        }
    }

    #[test]
    fn id_columns_are_high_cardinality() {
        let t = neighboring_seq(3000, 2);
        let distinct = |name: &str| {
            let c = t.schema().index_of(name).unwrap();
            let mut v: Vec<Value> = (0..t.num_rows()).map(|r| t.value(r, c)).collect();
            v.sort();
            v.dedup();
            v.len()
        };
        assert!(distinct("neighbor_id") > 300);
        assert!(distinct("method") == 3);
        assert!(distinct("identity_bucket") <= 10);
    }
}
