//! Declarative table generation with controlled cardinalities,
//! correlations and skew.

use crate::zipf::ZipfSampler;
use gbmqo_storage::{ColumnBuilder, DataType, Field, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How to generate one column.
#[derive(Debug, Clone)]
pub enum ColumnGen {
    /// Dense integer key: `row / rows_per_key` — models order keys where a
    /// handful of consecutive rows share a key.
    IntKey {
        /// Rows sharing one key value.
        rows_per_key: usize,
    },
    /// Categorical integer drawn from `0..distinct` with the table's skew.
    IntCat {
        /// Domain size.
        distinct: usize,
    },
    /// Date `base + rank`, rank drawn from `0..distinct` with skew.
    Date {
        /// Epoch-day of the earliest date.
        base: i32,
        /// Number of distinct days.
        distinct: usize,
    },
    /// Text drawn from a pool of `distinct` strings of roughly `avg_len`
    /// bytes, with the table's skew.
    Text {
        /// Pool size.
        distinct: usize,
        /// Approximate string length.
        avg_len: usize,
    },
    /// Nearly-unique text (e.g. TPC-H `l_comment`): every row gets its own
    /// string with probability ~`1 - dup_fraction`.
    TextUnique {
        /// Approximate string length.
        avg_len: usize,
        /// Fraction of rows that reuse the previous row's string.
        dup_fraction: f64,
    },
    /// Float with `distinct` evenly spaced levels, drawn with skew.
    Float {
        /// Number of levels.
        distinct: usize,
        /// Spacing between levels.
        step: f64,
    },
    /// A date correlated with an earlier `Date`/`DateOffset` column:
    /// `value = source_value + uniform(1..=max_offset)`. Models
    /// `l_commitdate`/`l_receiptdate` tracking `l_shipdate`.
    DateOffset {
        /// Ordinal of the source column (must precede this one and
        /// generate dates).
        source: usize,
        /// Maximum added offset in days.
        max_offset: usize,
    },
}

impl ColumnGen {
    fn data_type(&self) -> DataType {
        match self {
            ColumnGen::IntKey { .. } | ColumnGen::IntCat { .. } => DataType::Int64,
            ColumnGen::Date { .. } | ColumnGen::DateOffset { .. } => DataType::Date32,
            ColumnGen::Text { .. } | ColumnGen::TextUnique { .. } => DataType::Utf8,
            ColumnGen::Float { .. } => DataType::Float64,
        }
    }
}

/// A deterministic table generator: named column generators plus a global
/// Zipf skew applied to every categorical domain.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Column names and generators, in schema order.
    pub columns: Vec<(String, ColumnGen)>,
    /// Zipf exponent applied to categorical domains (0 = uniform).
    pub skew: f64,
    /// RNG seed; the same spec + seed + row count reproduces the table.
    pub seed: u64,
}

impl TableSpec {
    /// Create a spec with uniform distributions.
    pub fn new(columns: Vec<(String, ColumnGen)>, seed: u64) -> Self {
        TableSpec {
            columns,
            skew: 0.0,
            seed,
        }
    }

    /// Set the Zipf exponent.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Generate `rows` rows.
    pub fn generate(&self, rows: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let fields: Vec<Field> = self
            .columns
            .iter()
            .map(|(name, g)| Field::not_null(name, g.data_type()))
            .collect();
        let schema = Schema::new(fields).expect("spec column names must be unique");

        // Dates generated so far, for DateOffset correlation.
        let mut date_values: Vec<Option<Vec<i32>>> = vec![None; self.columns.len()];
        let mut builders: Vec<ColumnBuilder> = self
            .columns
            .iter()
            .map(|(_, g)| ColumnBuilder::with_capacity(g.data_type(), rows))
            .collect();

        for (ci, (_, gen)) in self.columns.iter().enumerate() {
            match gen {
                ColumnGen::IntKey { rows_per_key } => {
                    let per = (*rows_per_key).max(1);
                    for row in 0..rows {
                        builders[ci].push_i64((row / per) as i64);
                    }
                }
                ColumnGen::IntCat { distinct } => {
                    let z = ZipfSampler::new((*distinct).max(1), self.skew);
                    for _ in 0..rows {
                        builders[ci].push_i64(z.sample(&mut rng) as i64);
                    }
                }
                ColumnGen::Date { base, distinct } => {
                    let z = ZipfSampler::new((*distinct).max(1), self.skew);
                    let mut vals = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        let d = base + z.sample(&mut rng) as i32;
                        vals.push(d);
                        builders[ci].push_date(d);
                    }
                    date_values[ci] = Some(vals);
                }
                ColumnGen::DateOffset { source, max_offset } => {
                    let src = date_values[*source]
                        .as_ref()
                        .expect("DateOffset source must be an earlier date column")
                        .clone();
                    let mut vals = Vec::with_capacity(rows);
                    for &base in src.iter().take(rows) {
                        let off = rng.gen_range(1..=(*max_offset).max(1)) as i32;
                        let d = base + off;
                        vals.push(d);
                        builders[ci].push_date(d);
                    }
                    date_values[ci] = Some(vals);
                }
                ColumnGen::Text { distinct, avg_len } => {
                    let pool: Vec<String> = (0..(*distinct).max(1))
                        .map(|i| make_string(i, *avg_len))
                        .collect();
                    let z = ZipfSampler::new(pool.len(), self.skew);
                    for _ in 0..rows {
                        builders[ci].push_str(&pool[z.sample(&mut rng)]);
                    }
                }
                ColumnGen::TextUnique {
                    avg_len,
                    dup_fraction,
                } => {
                    let mut prev = make_string(0, *avg_len);
                    for row in 0..rows {
                        if row > 0 && rng.gen_range(0.0..1.0) < *dup_fraction {
                            builders[ci].push_str(&prev);
                        } else {
                            prev = make_string(row, *avg_len);
                            builders[ci].push_str(&prev);
                        }
                    }
                }
                ColumnGen::Float { distinct, step } => {
                    let z = ZipfSampler::new((*distinct).max(1), self.skew);
                    for _ in 0..rows {
                        builders[ci].push_f64(z.sample(&mut rng) as f64 * step);
                    }
                }
            }
        }

        let columns = builders.into_iter().map(ColumnBuilder::finish).collect();
        Table::new(schema, columns).expect("generated table is consistent")
    }
}

fn make_string(i: usize, avg_len: usize) -> String {
    let core = format!("v{i:x}");
    if core.len() >= avg_len {
        core
    } else {
        let mut s = core;
        while s.len() < avg_len {
            s.push(char::from(b'a' + (s.len() % 26) as u8));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::Value;

    fn distinct_of(t: &Table, col: usize) -> usize {
        let mut seen: Vec<Value> = (0..t.num_rows()).map(|r| t.value(r, col)).collect();
        seen.sort();
        seen.dedup();
        seen.len()
    }

    #[test]
    fn cardinalities_respect_spec() {
        let spec = TableSpec::new(
            vec![
                ("k".into(), ColumnGen::IntKey { rows_per_key: 4 }),
                ("c".into(), ColumnGen::IntCat { distinct: 7 }),
                (
                    "d".into(),
                    ColumnGen::Date {
                        base: 1000,
                        distinct: 30,
                    },
                ),
                (
                    "t".into(),
                    ColumnGen::Text {
                        distinct: 5,
                        avg_len: 8,
                    },
                ),
                (
                    "f".into(),
                    ColumnGen::Float {
                        distinct: 3,
                        step: 0.5,
                    },
                ),
            ],
            42,
        );
        let t = spec.generate(2000);
        assert_eq!(t.num_rows(), 2000);
        assert_eq!(distinct_of(&t, 0), 500);
        assert_eq!(distinct_of(&t, 1), 7);
        assert!(distinct_of(&t, 2) <= 30);
        assert_eq!(distinct_of(&t, 3), 5);
        assert_eq!(distinct_of(&t, 4), 3);
    }

    #[test]
    fn date_offset_is_correlated() {
        let spec = TableSpec::new(
            vec![
                (
                    "ship".into(),
                    ColumnGen::Date {
                        base: 0,
                        distinct: 100,
                    },
                ),
                (
                    "receipt".into(),
                    ColumnGen::DateOffset {
                        source: 0,
                        max_offset: 5,
                    },
                ),
            ],
            7,
        );
        let t = spec.generate(500);
        for r in 0..500 {
            let ship = t.value(r, 0).as_date().unwrap();
            let receipt = t.value(r, 1).as_date().unwrap();
            assert!((1..=5).contains(&(receipt - ship)), "row {r}");
        }
        // joint distinct far below product of singles
        let pairs: std::collections::BTreeSet<(i32, i32)> = (0..500)
            .map(|r| {
                (
                    t.value(r, 0).as_date().unwrap(),
                    t.value(r, 1).as_date().unwrap(),
                )
            })
            .collect();
        assert!(pairs.len() <= distinct_of(&t, 0) * 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TableSpec::new(vec![("c".into(), ColumnGen::IntCat { distinct: 10 })], 9);
        let a = spec.generate(100);
        let b = spec.generate(100);
        for r in 0..100 {
            assert_eq!(a.value(r, 0), b.value(r, 0));
        }
    }

    #[test]
    fn skew_concentrates_values() {
        let base = vec![("c".to_string(), ColumnGen::IntCat { distinct: 50 })];
        let uniform = TableSpec::new(base.clone(), 3).generate(5000);
        let skewed = TableSpec::new(base, 3).with_skew(2.0).generate(5000);
        let top_count = |t: &Table| {
            let mut counts = std::collections::BTreeMap::new();
            for r in 0..t.num_rows() {
                *counts
                    .entry(t.value(r, 0).as_int().unwrap())
                    .or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap()
        };
        assert!(top_count(&skewed) > top_count(&uniform) * 3);
    }

    #[test]
    fn text_unique_is_nearly_unique() {
        let spec = TableSpec::new(
            vec![(
                "cm".into(),
                ColumnGen::TextUnique {
                    avg_len: 12,
                    dup_fraction: 0.1,
                },
            )],
            4,
        );
        let t = spec.generate(1000);
        let d = distinct_of(&t, 0);
        assert!(d > 800, "distinct {d}");
    }

    #[test]
    fn strings_have_requested_length() {
        assert_eq!(make_string(1, 10).len(), 10);
        assert!(make_string(0xffff_ffff, 2).len() >= 2);
    }
}
