//! # gbmqo-datagen
//!
//! Synthetic dataset generators standing in for the paper's evaluation
//! data (§6, Table 1):
//!
//! | Paper dataset | Rows (paper) | Here |
//! |---|---|---|
//! | TPC-H `lineitem` 1 G / 10 G | 6 M / 60 M | [`tpch::lineitem`], scaled row count, same 16-column shape, Zipf-skew parameter (§6.8) |
//! | SALES warehouse | 24 M, 15 cols | [`sales::sales`] |
//! | PIR-NREF `neighboring_seq` | 78 M, 10 cols | [`nref::neighboring_seq`] |
//!
//! Column counts, types, per-column distinct-value ratios and cross-column
//! correlations (ship/commit/receipt dates move together; flag columns are
//! tiny; comments are almost unique) are modeled on the originals so that
//! *relative* experiment outcomes carry over to scaled-down row counts.
//!
//! The building blocks — [`zipf::ZipfSampler`] and the declarative
//! [`spec::TableSpec`] generator — are public so tests and benchmarks can
//! assemble ad-hoc tables with controlled cardinality and correlation.

#![warn(missing_docs)]

pub mod nref;
pub mod sales;
pub mod spec;
pub mod star;
pub mod tpch;
pub mod zipf;

pub use nref::{neighboring_seq, NREF_COLUMNS};
pub use sales::{sales, SALES_COLUMNS};
pub use spec::{ColumnGen, TableSpec};
pub use star::{star, StarSchema, STAR_FACT_COLUMNS, STAR_PRODUCT_COLUMNS, STAR_STORE_COLUMNS};
pub use tpch::{lineitem, widened_lineitem, LINEITEM_SC_COLUMNS};
pub use zipf::ZipfSampler;
