//! A scaled synthetic TPC-H `lineitem` with the original's 16-column shape,
//! per-column cardinality ratios and date correlations.
//!
//! The paper's SC workload is "all single column Group By queries except on
//! the floating point columns", i.e. 12 queries ([`LINEITEM_SC_COLUMNS`]).

use crate::spec::{ColumnGen, TableSpec};
use gbmqo_storage::Table;

/// The 12 non-floating-point lineitem columns the paper's SC workloads use.
pub const LINEITEM_SC_COLUMNS: [&str; 12] = [
    "l_orderkey",
    "l_partkey",
    "l_suppkey",
    "l_linenumber",
    "l_returnflag",
    "l_linestatus",
    "l_shipdate",
    "l_commitdate",
    "l_receiptdate",
    "l_shipinstruct",
    "l_shipmode",
    "l_comment",
];

/// Build the generation spec for a lineitem of `rows` rows with Zipf
/// exponent `skew` (0 = TPC-H-like uniform).
///
/// Cardinality ratios follow TPC-H: ~4 lines per order, parts ≈ rows/30,
/// suppliers ≈ rows/120, 7 line numbers, 50 quantities, 11 discounts,
/// 9 taxes, flags {R,A,N}, status {O,F}, ~2500 ship dates with commit and
/// receipt dates trailing them, 4 ship instructions, 7 ship modes, and a
/// nearly unique comment.
pub fn lineitem_spec(rows: usize, skew: f64, seed: u64) -> TableSpec {
    let dates = 2526usize.min(rows.max(8));
    TableSpec::new(
        vec![
            ("l_orderkey".into(), ColumnGen::IntKey { rows_per_key: 4 }),
            (
                "l_partkey".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 30).max(2),
                },
            ),
            (
                "l_suppkey".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 120).max(2),
                },
            ),
            ("l_linenumber".into(), ColumnGen::IntCat { distinct: 7 }),
            (
                "l_quantity".into(),
                ColumnGen::Float {
                    distinct: 50,
                    step: 1.0,
                },
            ),
            (
                "l_extendedprice".into(),
                ColumnGen::Float {
                    distinct: (rows / 10).max(10),
                    step: 0.01,
                },
            ),
            (
                "l_discount".into(),
                ColumnGen::Float {
                    distinct: 11,
                    step: 0.01,
                },
            ),
            (
                "l_tax".into(),
                ColumnGen::Float {
                    distinct: 9,
                    step: 0.01,
                },
            ),
            (
                "l_returnflag".into(),
                ColumnGen::Text {
                    distinct: 3,
                    avg_len: 1,
                },
            ),
            (
                "l_linestatus".into(),
                ColumnGen::Text {
                    distinct: 2,
                    avg_len: 1,
                },
            ),
            (
                "l_shipdate".into(),
                ColumnGen::Date {
                    base: 8036, // 1992-01-02 in days since epoch
                    distinct: dates,
                },
            ),
            (
                "l_commitdate".into(),
                ColumnGen::DateOffset {
                    source: 10,
                    max_offset: 30,
                },
            ),
            (
                // Receipt trails the commit date closely; this keeps the
                // (commitdate, receiptdate) joint distinct count far below
                // the row count, which is what makes the paper's §1 example
                // merge those two columns.
                "l_receiptdate".into(),
                ColumnGen::DateOffset {
                    source: 11,
                    max_offset: 7,
                },
            ),
            (
                "l_shipinstruct".into(),
                ColumnGen::Text {
                    distinct: 4,
                    avg_len: 12,
                },
            ),
            (
                "l_shipmode".into(),
                ColumnGen::Text {
                    distinct: 7,
                    avg_len: 5,
                },
            ),
            (
                "l_comment".into(),
                ColumnGen::TextUnique {
                    avg_len: 27,
                    dup_fraction: 0.02,
                },
            ),
        ],
        seed,
    )
    .with_skew(skew)
}

/// Generate a scaled lineitem table.
pub fn lineitem(rows: usize, skew: f64, seed: u64) -> Table {
    lineitem_spec(rows, skew, seed).generate(rows)
}

/// The §6.4 scaling workload: lineitem's 12 non-float columns repeated
/// until the table has `num_columns` columns (column `i` repeats SC column
/// `i % 12` with a fresh random stream), so "we widen it by repeating all
/// 12 columns".
pub fn widened_lineitem(rows: usize, num_columns: usize, seed: u64) -> Table {
    let base = lineitem_spec(rows, 0.0, seed);
    let sc: Vec<(String, ColumnGen)> = base
        .columns
        .iter()
        .filter(|(n, _)| LINEITEM_SC_COLUMNS.contains(&n.as_str()))
        .cloned()
        .collect();
    assert_eq!(sc.len(), 12);
    let mut columns: Vec<(String, ColumnGen)> = Vec::with_capacity(num_columns);
    // Date-offset sources must point at the copy of l_shipdate in the same
    // repetition block.
    for i in 0..num_columns {
        let (name, mut gen) = sc[i % 12].clone();
        if let ColumnGen::DateOffset { source, .. } = &mut gen {
            // Within each repetition block, l_commitdate (SC index 7)
            // chains off l_shipdate (6) and l_receiptdate (8) off
            // l_commitdate (7).
            let block_start = (i / 12) * 12;
            *source = block_start + if i % 12 == 7 { 6 } else { 7 };
            debug_assert!(*source < i, "date sources precede their offsets");
        }
        columns.push((format!("{name}_{}", i / 12), gen));
    }
    TableSpec::new(columns, seed).generate(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::Value;

    fn distinct_of(t: &Table, name: &str) -> usize {
        let c = t.schema().index_of(name).unwrap();
        let mut v: Vec<Value> = (0..t.num_rows()).map(|r| t.value(r, c)).collect();
        v.sort();
        v.dedup();
        v.len()
    }

    #[test]
    fn lineitem_shape() {
        let t = lineitem(3000, 0.0, 1);
        assert_eq!(t.num_columns(), 16);
        assert_eq!(t.num_rows(), 3000);
        for name in LINEITEM_SC_COLUMNS {
            assert!(t.schema().index_of(name).is_ok(), "{name}");
        }
        assert_eq!(distinct_of(&t, "l_returnflag"), 3);
        assert_eq!(distinct_of(&t, "l_linestatus"), 2);
        assert_eq!(distinct_of(&t, "l_linenumber"), 7);
        assert!(distinct_of(&t, "l_comment") > 2500);
        assert_eq!(distinct_of(&t, "l_orderkey"), 750);
    }

    #[test]
    fn dates_are_correlated() {
        let t = lineitem(1000, 0.0, 2);
        let ship = t.schema().index_of("l_shipdate").unwrap();
        let receipt = t.schema().index_of("l_receiptdate").unwrap();
        for r in 0..1000 {
            let s = t.value(r, ship).as_date().unwrap();
            let rc = t.value(r, receipt).as_date().unwrap();
            assert!(rc > s && rc - s <= 37);
        }
    }

    #[test]
    fn skew_reduces_effective_distincts() {
        let flat = lineitem(5000, 0.0, 3);
        let skewed = lineitem(5000, 2.5, 3);
        assert!(
            distinct_of(&skewed, "l_partkey") < distinct_of(&flat, "l_partkey"),
            "skew should concentrate part keys"
        );
    }

    #[test]
    fn widened_table_repeats_columns() {
        let t = widened_lineitem(500, 24, 4);
        assert_eq!(t.num_columns(), 24);
        // two copies of each SC column, suffixed _0/_1
        assert!(t.schema().index_of("l_shipdate_0").is_ok());
        assert!(t.schema().index_of("l_shipdate_1").is_ok());
        assert_eq!(distinct_of(&t, "l_returnflag_0"), 3);
        assert_eq!(distinct_of(&t, "l_returnflag_1"), 3);
    }

    #[test]
    fn widened_partial_block() {
        let t = widened_lineitem(200, 15, 5);
        assert_eq!(t.num_columns(), 15);
    }
}
