//! A synthetic stand-in for the paper's proprietary SALES warehouse
//! (24 M rows, 15 columns used): a retail fact table with hierarchical,
//! strongly correlated dimension columns — the structure that makes
//! merged Group By nodes profitable.

use crate::spec::{ColumnGen, TableSpec};
use gbmqo_storage::Table;

/// Column names of the sales table.
pub const SALES_COLUMNS: [&str; 15] = [
    "store_id",
    "region",
    "city",
    "product_id",
    "category",
    "subcategory",
    "brand",
    "customer_id",
    "gender",
    "age_group",
    "payment_type",
    "promo_code",
    "sale_date",
    "ship_date",
    "channel",
];

/// Generation spec for a sales table of `rows` rows.
pub fn sales_spec(rows: usize, seed: u64) -> TableSpec {
    TableSpec::new(
        vec![
            (
                "store_id".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 500).max(4),
                },
            ),
            (
                "region".into(),
                ColumnGen::Text {
                    distinct: 8,
                    avg_len: 6,
                },
            ),
            (
                "city".into(),
                ColumnGen::Text {
                    distinct: 120,
                    avg_len: 9,
                },
            ),
            (
                "product_id".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 40).max(8),
                },
            ),
            (
                "category".into(),
                ColumnGen::Text {
                    distinct: 12,
                    avg_len: 8,
                },
            ),
            (
                "subcategory".into(),
                ColumnGen::Text {
                    distinct: 80,
                    avg_len: 10,
                },
            ),
            (
                "brand".into(),
                ColumnGen::Text {
                    distinct: 200,
                    avg_len: 7,
                },
            ),
            (
                "customer_id".into(),
                ColumnGen::IntCat {
                    distinct: (rows / 8).max(16),
                },
            ),
            (
                "gender".into(),
                ColumnGen::Text {
                    distinct: 3,
                    avg_len: 1,
                },
            ),
            ("age_group".into(), ColumnGen::IntCat { distinct: 7 }),
            (
                "payment_type".into(),
                ColumnGen::Text {
                    distinct: 5,
                    avg_len: 6,
                },
            ),
            ("promo_code".into(), ColumnGen::IntCat { distinct: 40 }),
            (
                "sale_date".into(),
                ColumnGen::Date {
                    base: 11000,
                    distinct: 730,
                },
            ),
            (
                "ship_date".into(),
                ColumnGen::DateOffset {
                    source: 12,
                    max_offset: 7,
                },
            ),
            (
                "channel".into(),
                ColumnGen::Text {
                    distinct: 4,
                    avg_len: 6,
                },
            ),
        ],
        seed,
    )
    // Retail data is naturally skewed toward popular products/stores.
    .with_skew(0.5)
}

/// Generate a scaled SALES table.
pub fn sales(rows: usize, seed: u64) -> Table {
    sales_spec(rows, seed).generate(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = sales(2000, 1);
        assert_eq!(t.num_columns(), 15);
        assert_eq!(t.num_rows(), 2000);
        for c in SALES_COLUMNS {
            assert!(t.schema().index_of(c).is_ok(), "{c}");
        }
    }

    #[test]
    fn ship_tracks_sale_date() {
        let t = sales(500, 2);
        let sale = t.schema().index_of("sale_date").unwrap();
        let ship = t.schema().index_of("ship_date").unwrap();
        for r in 0..500 {
            let d = t.value(r, ship).as_date().unwrap() - t.value(r, sale).as_date().unwrap();
            assert!((1..=7).contains(&d));
        }
    }
}
