//! A TPC-H-style star schema: a sales fact table with foreign keys into
//! two keyed dimensions (`product`, `store`). This is the shape the
//! paper's §5 join-pushdown optimization targets — grouping columns on
//! the fact side let Group By nodes run below the join — and the shape
//! the SQL front end's star-join lowering expects: every dimension key
//! is dense and unique, every fact foreign key lands inside its
//! dimension's key domain.

use crate::spec::{ColumnGen, TableSpec};
use gbmqo_storage::Table;

/// Column names of the star fact table.
pub const STAR_FACT_COLUMNS: [&str; 7] = [
    "prod_key",
    "store_key",
    "qty",
    "channel",
    "promo",
    "price",
    "sale_date",
];

/// Column names of the `product` dimension.
pub const STAR_PRODUCT_COLUMNS: [&str; 3] = ["prod_key", "brand", "category"];

/// Column names of the `store` dimension.
pub const STAR_STORE_COLUMNS: [&str; 3] = ["store_key", "city", "region"];

/// A generated star schema: one fact table plus two dimensions.
#[derive(Debug, Clone)]
pub struct StarSchema {
    /// Fact table `sales(prod_key, store_key, qty, channel, promo,
    /// price, sale_date)` — foreign keys into the dimensions plus
    /// low-cardinality degenerate dimensions (`qty`, `channel`,
    /// `promo`), the natural CUBE targets.
    pub sales: Table,
    /// Dimension `product(prod_key, brand, category)` with a dense
    /// unique `prod_key`.
    pub product: Table,
    /// Dimension `store(store_key, city, region)` with a dense unique
    /// `store_key`.
    pub store: Table,
}

impl StarSchema {
    /// The schema as `(name, table)` pairs ready to register in a
    /// catalog or server.
    pub fn tables(&self) -> Vec<(&'static str, &Table)> {
        vec![
            ("sales", &self.sales),
            ("product", &self.product),
            ("store", &self.store),
        ]
    }
}

/// Number of product-dimension rows for a fact table of `fact_rows`.
pub fn star_products(fact_rows: usize) -> usize {
    (fact_rows / 25).max(8)
}

/// Number of store-dimension rows for a fact table of `fact_rows`.
pub fn star_stores(fact_rows: usize) -> usize {
    (fact_rows / 200).max(4)
}

/// Generate a star schema with `fact_rows` fact rows. Dimension sizes
/// scale with the fact ([`star_products`], [`star_stores`]); fact
/// foreign keys are Zipf-skewed toward popular products and stores, as
/// retail data is.
pub fn star(fact_rows: usize, seed: u64) -> StarSchema {
    let products = star_products(fact_rows);
    let stores = star_stores(fact_rows);
    let sales = TableSpec::new(
        vec![
            ("prod_key".into(), ColumnGen::IntCat { distinct: products }),
            ("store_key".into(), ColumnGen::IntCat { distinct: stores }),
            ("qty".into(), ColumnGen::IntCat { distinct: 20 }),
            (
                "channel".into(),
                ColumnGen::Text {
                    distinct: 4,
                    avg_len: 6,
                },
            ),
            ("promo".into(), ColumnGen::IntCat { distinct: 6 }),
            (
                "price".into(),
                ColumnGen::Float {
                    distinct: 500,
                    step: 0.25,
                },
            ),
            (
                "sale_date".into(),
                ColumnGen::Date {
                    base: 11000,
                    distinct: 365,
                },
            ),
        ],
        seed,
    )
    .with_skew(0.5)
    .generate(fact_rows);

    // Dimensions: IntKey { rows_per_key: 1 } is the dense unique key
    // 0..n that star-join lowering validates against.
    let product = TableSpec::new(
        vec![
            ("prod_key".into(), ColumnGen::IntKey { rows_per_key: 1 }),
            (
                "brand".into(),
                ColumnGen::Text {
                    distinct: (products / 4).max(2),
                    avg_len: 7,
                },
            ),
            (
                "category".into(),
                ColumnGen::Text {
                    distinct: 12,
                    avg_len: 8,
                },
            ),
        ],
        seed ^ 0x9e37_79b9,
    )
    .generate(products);

    let store = TableSpec::new(
        vec![
            ("store_key".into(), ColumnGen::IntKey { rows_per_key: 1 }),
            (
                "city".into(),
                ColumnGen::Text {
                    distinct: (stores / 2).max(2),
                    avg_len: 9,
                },
            ),
            (
                "region".into(),
                ColumnGen::Text {
                    distinct: 8,
                    avg_len: 6,
                },
            ),
        ],
        seed ^ 0x7f4a_7c15,
    )
    .generate(stores);

    StarSchema {
        sales,
        product,
        store,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_schema() {
        let s = star(2000, 1);
        assert_eq!(s.sales.num_rows(), 2000);
        assert_eq!(s.product.num_rows(), star_products(2000));
        assert_eq!(s.store.num_rows(), star_stores(2000));
        for c in STAR_FACT_COLUMNS {
            assert!(s.sales.schema().index_of(c).is_ok(), "{c}");
        }
        for c in STAR_PRODUCT_COLUMNS {
            assert!(s.product.schema().index_of(c).is_ok(), "{c}");
        }
        for c in STAR_STORE_COLUMNS {
            assert!(s.store.schema().index_of(c).is_ok(), "{c}");
        }
    }

    #[test]
    fn dimension_keys_are_dense_and_unique() {
        let s = star(1000, 3);
        for (dim, key) in [(&s.product, "prod_key"), (&s.store, "store_key")] {
            let ki = dim.schema().index_of(key).unwrap();
            for r in 0..dim.num_rows() {
                assert_eq!(dim.value(r, ki).as_int().unwrap(), r as i64);
            }
        }
    }

    #[test]
    fn fact_keys_land_in_dimension_domains() {
        let s = star(1500, 7);
        for (col, n) in [
            ("prod_key", s.product.num_rows()),
            ("store_key", s.store.num_rows()),
        ] {
            let ci = s.sales.schema().index_of(col).unwrap();
            for r in 0..s.sales.num_rows() {
                let k = s.sales.value(r, ci).as_int().unwrap();
                assert!((0..n as i64).contains(&k), "{col} row {r}: {k}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = star(300, 11);
        let b = star(300, 11);
        for r in 0..300 {
            assert_eq!(a.sales.value(r, 0), b.sales.value(r, 0));
        }
        assert_eq!(a.product.num_rows(), b.product.num_rows());
    }
}
