//! Zipfian sampling over a finite domain.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
///
/// `s = 0` is uniform; the paper's §6.8 experiment sweeps
/// `s ∈ {0, 0.5, 1, 1.5, 2, 2.5, 3}`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "domain must be non-empty");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // First index whose cdf ≥ u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(s: f64, n: usize, draws: usize) -> Vec<usize> {
        let z = ZipfSampler::new(n, s);
        let mut rng = StdRng::seed_from_u64(11);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_s_zero() {
        let h = histogram(0.0, 10, 50_000);
        for &c in &h {
            assert!((4_000..=6_000).contains(&c), "uniform bucket {c}");
        }
    }

    #[test]
    fn skewed_when_s_large() {
        let h = histogram(2.0, 10, 50_000);
        assert!(h[0] > h[1] && h[1] > h[2], "{h:?}");
        assert!(
            h[0] as f64 / 50_000.0 > 0.5,
            "rank 0 should dominate at s=2: {h:?}"
        );
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = ZipfSampler::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.domain(), 3);
    }

    #[test]
    fn single_value_domain() {
        let z = ZipfSampler::new(1, 3.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
