//! `gbmqo-matcache`: a cross-request cache of materialized group-by
//! results the optimizer plans from.
//!
//! The paper's central identity — a Group By on a superset of columns
//! answers any Group By on a subset by re-aggregation (§5.2) — is
//! exploited *within* one plan by SubPlanMerge. This crate exploits it
//! *across* requests: aggregates materialized while answering one
//! workload are retained (under a byte budget) and offered to the
//! planner as virtual roots for later workloads, so a query on `{a}`
//! can be computed from a cached `{a,b}` instead of the base table.
//! Roy et al. and Kathuria & Sudarshan frame the same
//! benefit-vs-storage tradeoff for multi-query optimization; the
//! eviction policy here mirrors the advisor's per-node benefit math:
//! an entry's benefit is the estimated rows of base-table scanning it
//! saves, refreshed on every hit and decayed as the cache churns, and
//! eviction removes the lowest benefit-per-byte entry first.
//!
//! Keying is `(table name, column set, aggregate signature)`, and every
//! entry records the table *version* (the [`gbmqo_storage::Catalog`]'s
//! monotonic contents counter) it was computed at, together with the
//! aggregate specs needed to merge more rows into it. Entries are
//! **version-interval-valid**, not snapshot-valid: a lookup at the
//! current version serves only entries computed at that version, but an
//! entry left behind by an append is *not* purged — it is surfaced
//! through [`MatCache::lookup_stale`] so the session can aggregate just
//! the appended row range and [`MatCache::refresh`] the entry forward
//! (the paper's §7 aggregate-union identity: a group-by over a union of
//! disjoint partitions is the merge of per-partition aggregates). Only
//! when a delta chain is unavailable or uneconomic does the caller fall
//! back to [`MatCache::drop_stale`] — the old invalidate-everything
//! behaviour, now the exception instead of the rule.

#![warn(missing_docs)]

use gbmqo_exec::AggSpec;
use gbmqo_storage::Table;
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Per-request cache policy, carried on server `Query` frames and the
/// Session's workload entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheControl {
    /// Consult the cache for covering aggregates and admit new results.
    #[default]
    Default,
    /// Neither consult nor populate the cache (cold execution).
    Bypass,
    /// Recompute from base, then admit the fresh results (overwriting
    /// same-key entries). Use after out-of-band data changes or to
    /// deliberately warm the cache.
    Refresh,
}

impl CacheControl {
    /// Whether lookups may serve cached aggregates.
    pub fn allows_lookup(self) -> bool {
        self == CacheControl::Default
    }

    /// Whether freshly computed aggregates may be admitted.
    pub fn allows_admit(self) -> bool {
        self != CacheControl::Bypass
    }
}

/// A cache hit: a materialized aggregate whose column set covers the
/// requested one.
#[derive(Debug, Clone)]
pub struct CachedAggregate {
    /// Base-table column names of the cached aggregate, sorted.
    pub cols: Vec<String>,
    /// The materialized result (group columns + aggregate outputs).
    pub table: Arc<Table>,
    /// Row count of the cached aggregate.
    pub rows: usize,
    /// True when the cached column set equals the requested set (the
    /// answer verbatim, modulo column order), not a strict superset.
    pub exact: bool,
}

/// Counters exposed through `ExecMetrics` / the server `Stats` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no covering entry.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Admissions rejected (no benefit, oversized, or outscored).
    pub rejected: u64,
    /// Estimated base-table rows whose scan was avoided by hits.
    pub rows_saved: u64,
    /// Bytes currently held.
    pub bytes: u64,
    /// Entries currently held.
    pub entries: u64,
    /// Stale entries brought current by a delta merge.
    pub refreshes: u64,
    /// Stale entries dropped because a delta merge was unavailable or
    /// uneconomic.
    pub stale_drops: u64,
}

/// A stale cache entry eligible for delta refresh: the aggregate as of
/// an older table version, plus everything needed to merge the appended
/// rows into it.
#[derive(Debug, Clone)]
pub struct StaleAggregate {
    /// Base-table column names of the cached aggregate, sorted.
    pub cols: Vec<String>,
    /// The materialized result at `version`.
    pub table: Arc<Table>,
    /// Row count of the cached aggregate.
    pub rows: usize,
    /// Table version the aggregate was computed at.
    pub version: u64,
    /// Aggregate signature the entry was cached under.
    pub agg_sig: u64,
    /// The workload's original aggregate specs (the merge specs: their
    /// [`AggSpec::reaggregate`] forms combine partial aggregates
    /// losslessly for COUNT/SUM/MIN/MAX under append-only ingest).
    pub specs: Vec<AggSpec>,
}

/// One cached aggregate for a table.
#[derive(Debug)]
struct Entry {
    /// Sorted base column names.
    cols: Vec<String>,
    agg_sig: u64,
    table: Arc<Table>,
    rows: usize,
    bytes: usize,
    /// Table version the payload reflects. Entries behind the table's
    /// current version are stale-but-refreshable, not garbage.
    version: u64,
    /// Original aggregate specs, kept so a delta aggregate over the
    /// appended rows can be merged into the payload.
    specs: Vec<AggSpec>,
    /// Estimated base rows saved per serve; refreshed on hits, decayed
    /// on admissions, so entries that stop earning fade out.
    benefit: f64,
}

impl Entry {
    /// Benefit per byte — the eviction order.
    fn density(&self) -> f64 {
        self.benefit / self.bytes.max(1) as f64
    }
}

/// A bounded, benefit-weighted cache of materialized group-by results.
///
/// A budget of zero disables the cache entirely: every lookup misses
/// without recording a miss, every admission is rejected silently.
#[derive(Debug)]
pub struct MatCache {
    budget_bytes: usize,
    total_bytes: usize,
    slots: FxHashMap<String, Vec<Entry>>,
    stats: MatCacheStats,
}

/// Fraction of an entry's benefit that survives each admission round.
const DECAY: f64 = 0.95;

impl MatCache {
    /// Create a cache holding at most `budget_bytes` of materialized
    /// aggregates. Zero disables the cache.
    pub fn new(budget_bytes: usize) -> Self {
        MatCache {
            budget_bytes,
            total_bytes: 0,
            slots: FxHashMap::default(),
            stats: MatCacheStats::default(),
        }
    }

    /// Whether the cache can ever hold anything.
    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Current counters.
    pub fn stats(&self) -> MatCacheStats {
        let mut s = self.stats;
        s.bytes = self.total_bytes as u64;
        s.entries = self.slots.values().map(|s| s.len() as u64).sum();
        s
    }

    /// Find the cheapest cached aggregate of `table` (at contents
    /// `version`, under aggregate signature `agg_sig`) whose column set
    /// covers `want_cols`. "Cheapest" is fewest rows — the paper's cost
    /// model charges re-aggregation by input cardinality. Entries
    /// cached under an older version are skipped, never served — but
    /// they stay resident as refresh candidates (see
    /// [`MatCache::lookup_stale`]).
    pub fn lookup_covering(
        &mut self,
        table: &str,
        version: u64,
        want_cols: &[String],
        agg_sig: u64,
        base_rows: usize,
    ) -> Option<CachedAggregate> {
        if !self.enabled() {
            return None;
        }
        let Some(slot) = self.slots.get_mut(table) else {
            self.stats.misses += 1;
            return None;
        };
        let mut want = want_cols.to_vec();
        want.sort_unstable();
        let Some(hit) = slot
            .iter_mut()
            .filter(|e| e.version == version && e.agg_sig == agg_sig && covers(&e.cols, &want))
            .min_by_key(|e| e.rows)
        else {
            self.stats.misses += 1;
            return None;
        };
        let saved = base_rows.saturating_sub(hit.rows) as u64;
        self.stats.hits += 1;
        self.stats.rows_saved += saved;
        hit.benefit += saved as f64;
        Some(CachedAggregate {
            cols: hit.cols.clone(),
            table: Arc::clone(&hit.table),
            rows: hit.rows,
            exact: hit.cols == want,
        })
    }

    /// Find the best *stale* covering aggregate of `table`: one cached
    /// at a version older than `version` (the table's current one)
    /// whose column set covers `want_cols`. The caller decides whether
    /// to bring it current via a delta merge ([`MatCache::refresh`]) or
    /// drop it ([`MatCache::drop_stale`]). The most recent qualifying
    /// version wins (shortest delta chain), fewest rows breaking ties.
    /// Does not touch hit/miss counters — the fresh lookup already
    /// recorded the miss.
    pub fn lookup_stale(
        &mut self,
        table: &str,
        version: u64,
        want_cols: &[String],
        agg_sig: u64,
    ) -> Option<StaleAggregate> {
        if !self.enabled() {
            return None;
        }
        let slot = self.slots.get(table)?;
        let mut want = want_cols.to_vec();
        want.sort_unstable();
        let hit = slot
            .iter()
            .filter(|e| e.version < version && e.agg_sig == agg_sig && covers(&e.cols, &want))
            .max_by(|a, b| a.version.cmp(&b.version).then(b.rows.cmp(&a.rows)))?;
        Some(StaleAggregate {
            cols: hit.cols.clone(),
            table: Arc::clone(&hit.table),
            rows: hit.rows,
            version: hit.version,
            agg_sig: hit.agg_sig,
            specs: hit.specs.clone(),
        })
    }

    /// Every stale entry of `table` (cached at a version older than
    /// `version`), regardless of column set or aggregate signature.
    /// The eager refresh policy walks this list right after an append.
    pub fn stale_entries(&self, table: &str, version: u64) -> Vec<StaleAggregate> {
        let Some(slot) = self.slots.get(table) else {
            return Vec::new();
        };
        slot.iter()
            .filter(|e| e.version < version)
            .map(|e| StaleAggregate {
                cols: e.cols.clone(),
                table: Arc::clone(&e.table),
                rows: e.rows,
                version: e.version,
                agg_sig: e.agg_sig,
                specs: e.specs.clone(),
            })
            .collect()
    }

    /// Replace the payload of the stale entry `(cols, agg_sig)` cached
    /// at `from_version` with `result` computed at `to_version` — the
    /// commit step of a delta refresh. Benefit carries over (the entry
    /// keeps its earned standing; it answered this request too). If the
    /// refreshed payload grew past the budget, lower-density *other*
    /// entries are evicted. Returns false if no such entry exists (it
    /// was evicted in the meantime) or the cache is disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn refresh(
        &mut self,
        table: &str,
        cols: &[String],
        agg_sig: u64,
        from_version: u64,
        to_version: u64,
        result: Arc<Table>,
        base_rows: usize,
    ) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut cols = cols.to_vec();
        cols.sort_unstable();
        let Some(slot) = self.slots.get_mut(table) else {
            return false;
        };
        let Some(idx) = slot
            .iter()
            .position(|e| e.version == from_version && e.agg_sig == agg_sig && e.cols == cols)
        else {
            return false;
        };
        let rows = result.num_rows();
        let bytes = result.byte_size();
        {
            let e = &mut slot[idx];
            self.total_bytes = self.total_bytes - e.bytes + bytes;
            e.table = result;
            e.rows = rows;
            e.bytes = bytes;
            e.version = to_version;
            e.benefit = e.benefit.max(base_rows.saturating_sub(rows) as f64);
        }
        self.stats.refreshes += 1;
        self.evict_over_budget(Some((table, &cols, agg_sig, to_version)));
        true
    }

    /// Drop every entry of `table` cached at a version other than
    /// `version` — the invalidation fallback for deltas that cannot (or
    /// should not) be merged. Returns how many entries were dropped.
    pub fn drop_stale(&mut self, table: &str, version: u64) -> usize {
        let Some(slot) = self.slots.get_mut(table) else {
            return 0;
        };
        let before = slot.len();
        let mut freed = 0usize;
        slot.retain(|e| {
            if e.version == version {
                true
            } else {
                freed += e.bytes;
                false
            }
        });
        let dropped = before - slot.len();
        if slot.is_empty() {
            self.slots.remove(table);
        }
        self.total_bytes -= freed;
        self.stats.stale_drops += dropped as u64;
        dropped
    }

    /// Evict lowest-density entries until the cache fits its budget,
    /// never touching `keep` (the entry just refreshed).
    fn evict_over_budget(&mut self, keep: Option<(&str, &[String], u64, u64)>) {
        while self.total_bytes > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .flat_map(|(t, s)| s.iter().enumerate().map(move |(i, e)| (t, i, e)))
                .filter(|(t, _, e)| {
                    keep.is_none_or(|(kt, kc, ks, kv)| {
                        !(*t == kt && e.cols == kc && e.agg_sig == ks && e.version == kv)
                    })
                })
                .min_by(|a, b| a.2.density().total_cmp(&b.2.density()));
            let Some((vt, vi, _)) = victim else { break };
            let (vt, vi) = (vt.clone(), vi);
            let removed = self.slots.get_mut(&vt).expect("victim slot").remove(vi);
            self.total_bytes -= removed.bytes;
            self.stats.evictions += 1;
            if self.slots[&vt].is_empty() {
                self.slots.remove(&vt);
            }
        }
    }

    /// Offer a freshly materialized aggregate of `table` (at contents
    /// `version`) on `cols` for admission, carrying the workload's
    /// aggregate `specs` so the entry can later be delta-refreshed.
    /// Returns whether it was kept. Rejects aggregates no smaller than
    /// the base table (no re-aggregation benefit) and aggregates that
    /// cannot fit the budget without evicting entries of higher benefit
    /// density.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        table: &str,
        version: u64,
        cols: &[String],
        agg_sig: u64,
        specs: &[AggSpec],
        result: Arc<Table>,
        base_rows: usize,
    ) -> bool {
        if !self.enabled() {
            return false;
        }
        let rows = result.num_rows();
        let bytes = result.byte_size();
        if rows >= base_rows || bytes > self.budget_bytes {
            self.stats.rejected += 1;
            return false;
        }
        // Each admission round ages everything a little, so benefit
        // reflects recent traffic rather than one ancient hot streak.
        for slot in self.slots.values_mut() {
            for e in slot.iter_mut() {
                e.benefit *= DECAY;
            }
        }
        let mut cols = cols.to_vec();
        cols.sort_unstable();
        let benefit = base_rows.saturating_sub(rows) as f64;

        let slot = self.slots.entry(table.to_string()).or_default();
        if let Some(e) = slot
            .iter_mut()
            .find(|e| e.agg_sig == agg_sig && e.cols == cols)
        {
            // Same key: one entry per (cols, sig) — the cache keeps the
            // newest version of each aggregate, never two generations.
            if version < e.version {
                // A late admission from an older snapshot must not roll
                // a fresher payload backwards.
                self.stats.rejected += 1;
                return false;
            }
            self.total_bytes = self.total_bytes - e.bytes + bytes;
            e.table = result;
            e.rows = rows;
            e.bytes = bytes;
            e.version = version;
            e.specs = specs.to_vec();
            e.benefit = e.benefit.max(benefit);
            return true;
        }
        let density = benefit / bytes.max(1) as f64;
        while self.total_bytes + bytes > self.budget_bytes {
            let victim = self
                .slots
                .iter()
                .flat_map(|(t, s)| s.iter().enumerate().map(move |(i, e)| (t, i, e)))
                .min_by(|a, b| a.2.density().total_cmp(&b.2.density()));
            let Some((vt, vi, ve)) = victim else { break };
            if ve.density() >= density {
                // Everything resident earns more per byte than the
                // candidate would; keep the incumbents.
                self.stats.rejected += 1;
                return false;
            }
            let (vt, vi) = (vt.clone(), vi);
            let removed = self.slots.get_mut(&vt).expect("victim slot").remove(vi);
            self.total_bytes -= removed.bytes;
            self.stats.evictions += 1;
            if self.slots[&vt].is_empty() {
                self.slots.remove(&vt);
            }
        }
        self.total_bytes += bytes;
        self.stats.insertions += 1;
        self.slots
            .entry(table.to_string())
            .or_default()
            .push(Entry {
                cols,
                agg_sig,
                table: result,
                rows,
                bytes,
                version,
                specs: specs.to_vec(),
                benefit,
            });
        true
    }

    /// Drop every cached aggregate of `table` (any version). Called
    /// when the table is replaced or mutated out of band.
    pub fn invalidate_table(&mut self, table: &str) {
        if let Some(slot) = self.slots.remove(table) {
            let freed: usize = slot.iter().map(|e| e.bytes).sum();
            self.total_bytes -= freed;
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.total_bytes = 0;
    }
}

/// `sup` ⊇ `sub`, both sorted.
fn covers(sup: &[String], sub: &[String]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|c| it.any(|s| s == c))
}

/// A stable signature of a workload's aggregate list, used so cached
/// results are only reused by workloads computing the same aggregates.
pub fn agg_signature(aggs: &[AggSpec]) -> u64 {
    let mut h = FxHasher::default();
    for a in aggs {
        format!("{a:?}").hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema};

    fn agg_table(cols: &[&str], rows: i64) -> Arc<Table> {
        let mut fields: Vec<Field> = cols
            .iter()
            .map(|c| Field::new(*c, DataType::Int64))
            .collect();
        fields.push(Field::not_null("cnt", DataType::Int64));
        let data = (0..=cols.len())
            .map(|_| Column::from_i64((0..rows).collect()))
            .collect();
        Arc::new(Table::new(Schema::new(fields).unwrap(), data).unwrap())
    }

    fn cols(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn specs() -> Vec<AggSpec> {
        vec![AggSpec::count()]
    }

    const SIG: u64 = 7;
    const BASE: usize = 1_000_000;

    #[test]
    fn lookup_prefers_the_smallest_covering_superset() {
        let mut mc = MatCache::new(1 << 20);
        assert!(mc.admit(
            "r",
            1,
            &cols(&["a", "b", "c"]),
            SIG,
            &specs(),
            agg_table(&["a", "b", "c"], 500),
            BASE
        ));
        assert!(mc.admit(
            "r",
            1,
            &cols(&["a", "b"]),
            SIG,
            &specs(),
            agg_table(&["a", "b"], 100),
            BASE
        ));

        let hit = mc
            .lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
            .unwrap();
        assert_eq!(hit.cols, cols(&["a", "b"]));
        assert_eq!(hit.rows, 100);
        assert!(!hit.exact);

        let exact = mc
            .lookup_covering("r", 1, &cols(&["b", "a"]), SIG, BASE)
            .unwrap();
        assert!(exact.exact, "set equality ignores order");

        assert!(mc
            .lookup_covering("r", 1, &cols(&["z"]), SIG, BASE)
            .is_none());
        assert!(mc
            .lookup_covering("r", 1, &cols(&["a"]), SIG + 1, BASE)
            .is_none());
        let s = mc.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 2, 2));
        assert!(s.rows_saved >= 2 * (BASE as u64 - 100));
    }

    #[test]
    fn stale_entries_survive_misses_and_refresh_forward() {
        let mut mc = MatCache::new(1 << 20);
        mc.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 10),
            BASE,
        );
        // A lookup at a newer version misses — but the entry survives.
        assert!(mc
            .lookup_covering("r", 2, &cols(&["a"]), SIG, BASE)
            .is_none());
        assert_eq!(mc.stats().entries, 1);

        // The surviving entry is surfaced as a refresh candidate, with
        // its merge specs intact.
        let stale = mc.lookup_stale("r", 2, &cols(&["a"]), SIG).unwrap();
        assert_eq!(stale.version, 1);
        assert_eq!(stale.rows, 10);
        assert_eq!(stale.specs, specs());
        // Entries at the current version are not "stale".
        assert!(mc.lookup_stale("r", 1, &cols(&["a"]), SIG).is_none());

        // Committing a delta merge brings it current; it serves again.
        assert!(mc.refresh("r", &cols(&["a"]), SIG, 1, 2, agg_table(&["a"], 12), BASE));
        let hit = mc
            .lookup_covering("r", 2, &cols(&["a"]), SIG, BASE)
            .unwrap();
        assert_eq!(hit.rows, 12);
        assert_eq!(mc.stats().refreshes, 1);
        // Refreshing an entry that no longer exists at that version fails.
        assert!(!mc.refresh("r", &cols(&["a"]), SIG, 1, 3, agg_table(&["a"], 12), BASE));
    }

    #[test]
    fn lookup_stale_prefers_the_most_recent_version() {
        let mut mc = MatCache::new(1 << 20);
        mc.admit(
            "r",
            1,
            &cols(&["a", "b"]),
            SIG,
            &specs(),
            agg_table(&["a", "b"], 50),
            BASE,
        );
        mc.admit(
            "r",
            3,
            &cols(&["a", "c"]),
            SIG,
            &specs(),
            agg_table(&["a", "c"], 90),
            BASE,
        );
        // Both cover {a}; the version-3 entry needs the shortest delta
        // chain even though it has more rows.
        let stale = mc.lookup_stale("r", 5, &cols(&["a"]), SIG).unwrap();
        assert_eq!(stale.version, 3);
        assert_eq!(stale.cols, cols(&["a", "c"]));
    }

    #[test]
    fn drop_stale_removes_only_old_versions() {
        let mut mc = MatCache::new(1 << 20);
        mc.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 10),
            BASE,
        );
        mc.admit(
            "r",
            4,
            &cols(&["b"]),
            SIG,
            &specs(),
            agg_table(&["b"], 10),
            BASE,
        );
        assert_eq!(mc.drop_stale("r", 4), 1);
        assert!(mc
            .lookup_covering("r", 4, &cols(&["b"]), SIG, BASE)
            .is_some());
        assert!(mc.lookup_stale("r", 4, &cols(&["a"]), SIG).is_none());
        assert_eq!(mc.stats().stale_drops, 1);
        assert_eq!(mc.stats().entries, 1);
    }

    #[test]
    fn same_key_admission_is_version_guarded() {
        let mut mc = MatCache::new(1 << 20);
        assert!(mc.admit(
            "r",
            3,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 10),
            BASE
        ));
        // A same-key admit from an older snapshot must not roll the
        // payload backwards.
        assert!(!mc.admit(
            "r",
            2,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 9),
            BASE
        ));
        // A newer-version admit overwrites in place.
        assert!(mc.admit(
            "r",
            5,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 11),
            BASE
        ));
        assert_eq!(mc.stats().entries, 1);
        let hit = mc
            .lookup_covering("r", 5, &cols(&["a"]), SIG, BASE)
            .unwrap();
        assert_eq!(hit.rows, 11);
    }

    #[test]
    fn invalidate_table_frees_bytes() {
        let mut mc = MatCache::new(1 << 20);
        mc.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 10),
            BASE,
        );
        mc.admit(
            "s",
            1,
            &cols(&["x"]),
            SIG,
            &specs(),
            agg_table(&["x"], 10),
            BASE,
        );
        let before = mc.stats().bytes;
        mc.invalidate_table("r");
        assert!(mc.stats().bytes < before);
        assert!(mc
            .lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
            .is_none());
        assert!(mc
            .lookup_covering("s", 1, &cols(&["x"]), SIG, BASE)
            .is_some());
    }

    #[test]
    fn budget_is_enforced_by_density_eviction() {
        let small = agg_table(&["a"], 64);
        let unit = small.byte_size();
        // Room for exactly two entries.
        let mut mc = MatCache::new(2 * unit);
        assert!(mc.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            Arc::clone(&small),
            BASE
        ));
        assert!(mc.admit(
            "r",
            1,
            &cols(&["b"]),
            SIG,
            &specs(),
            agg_table(&["b"], 64),
            BASE
        ));
        assert!(mc.stats().bytes <= 2 * unit as u64);

        // Make {a} clearly the most valuable resident.
        for _ in 0..5 {
            mc.lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
                .unwrap();
        }
        // A third entry must evict the colder {b}, not {a}.
        assert!(mc.admit(
            "r",
            1,
            &cols(&["c"]),
            SIG,
            &specs(),
            agg_table(&["c"], 64),
            BASE
        ));
        assert!(mc.stats().bytes <= 2 * unit as u64);
        assert_eq!(mc.stats().evictions, 1);
        assert!(mc
            .lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
            .is_some());
        assert!(mc
            .lookup_covering("r", 1, &cols(&["b"]), SIG, BASE)
            .is_none());
    }

    #[test]
    fn admission_rejects_no_benefit_oversized_and_outscored() {
        let mut mc = MatCache::new(1 << 20);
        // As many rows as the base table: re-aggregation saves nothing.
        assert!(!mc.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 100),
            100
        ));
        // Larger than the whole budget.
        let mut tiny = MatCache::new(8);
        assert!(!tiny.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 100),
            BASE
        ));
        // Disabled cache: no lookups, no admissions, no counters.
        let mut off = MatCache::new(0);
        assert!(!off.enabled());
        assert!(!off.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 10),
            BASE
        ));
        assert!(off
            .lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
            .is_none());
        assert_eq!(off.stats(), MatCacheStats::default());

        // An incumbent with far higher benefit density is not evicted
        // for a low-benefit candidate.
        let small = agg_table(&["a"], 64);
        let mut mc = MatCache::new(small.byte_size());
        assert!(mc.admit("r", 1, &cols(&["a"]), SIG, &specs(), small, BASE));
        for _ in 0..10 {
            mc.lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
                .unwrap();
        }
        // Nearly as many rows as base: minuscule benefit.
        assert!(!mc.admit(
            "r",
            1,
            &cols(&["b"]),
            SIG,
            &specs(),
            agg_table(&["b"], 64),
            65
        ));
        assert!(mc
            .lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
            .is_some());
    }

    #[test]
    fn same_key_admission_refreshes_in_place() {
        let mut mc = MatCache::new(1 << 20);
        assert!(mc.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 50),
            BASE
        ));
        assert!(mc.admit(
            "r",
            1,
            &cols(&["a"]),
            SIG,
            &specs(),
            agg_table(&["a"], 40),
            BASE
        ));
        assert_eq!(mc.stats().entries, 1);
        let hit = mc
            .lookup_covering("r", 1, &cols(&["a"]), SIG, BASE)
            .unwrap();
        assert_eq!(hit.rows, 40);
    }

    #[test]
    fn cache_control_policies() {
        assert!(CacheControl::Default.allows_lookup());
        assert!(CacheControl::Default.allows_admit());
        assert!(!CacheControl::Bypass.allows_lookup());
        assert!(!CacheControl::Bypass.allows_admit());
        assert!(!CacheControl::Refresh.allows_lookup());
        assert!(CacheControl::Refresh.allows_admit());
    }

    #[test]
    fn agg_signature_distinguishes_specs() {
        let count = vec![AggSpec::count()];
        let sum = vec![AggSpec::sum("x", "sx")];
        assert_eq!(agg_signature(&count), agg_signature(&[AggSpec::count()]));
        assert_ne!(agg_signature(&count), agg_signature(&sum));
    }
}
