//! # gbmqo-feedback
//!
//! The adaptive statistics and plan-feedback subsystem: closing the loop
//! the paper's cost model (§3.2.2) leaves open. Static sample-based
//! estimates are never corrected by what execution actually observed;
//! this crate records per-plan-node observations and overlays them — and
//! online-maintained distinct sketches — on top of any existing
//! [`CardinalitySource`], so both cost models benefit with no API change.
//!
//! The loop has three parts:
//!
//! * **Observe** — executors record [`NodeObservation`]s (column set,
//!   input rows → output groups, measured cost) into a bounded,
//!   decay-weighted [`FeedbackStore`].
//! * **Correct** — [`AdaptiveCardinalitySource`] answers `distinct()`
//!   preferring (1) a true observation, (2) an online sketch estimate
//!   kept fresh from delta rows, (3) the wrapped static estimate.
//! * **Re-optimize** — the session compares a cached plan's cost under
//!   corrected estimates against its recorded cost and invalidates the
//!   cache entry when the shift exceeds a threshold (see `gbmqo-core`).
//!
//! Feedback changes *plans*, never *answers*: the overlay only alters
//! cardinality estimates consumed by the optimizer.

#![warn(missing_docs)]

use gbmqo_stats::{CardinalitySource, StatsCreationLog, TableSketches};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// One per-plan-node execution observation.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObservation {
    /// Base-table catalog entry the plan ran over.
    pub table: String,
    /// Base-table column ordinals the node grouped by (any order).
    pub cols: Vec<usize>,
    /// Rows the node consumed.
    pub input_rows: u64,
    /// Groups the node produced — the *true* distinct count of `cols`
    /// within the node's input (for whole-table inputs, within `R`).
    pub output_groups: u64,
    /// Measured wall time of the node in nanoseconds (0 if not timed).
    pub elapsed_ns: u64,
    /// Table version the observation was taken at.
    pub table_version: u64,
}

/// Decay-weighted state for one (table, column-set) key.
#[derive(Debug, Clone)]
struct FeedbackEntry {
    groups: f64,
    input_rows: f64,
    cost_ns: f64,
    hits: u64,
    last_version: u64,
}

/// Tuning knobs for the [`FeedbackStore`].
#[derive(Debug, Clone, Copy)]
pub struct FeedbackConfig {
    /// Maximum distinct (table, column-set) keys retained; least recently
    /// *updated* keys are evicted beyond this. Zero means unbounded.
    pub capacity: usize,
    /// EWMA weight of the newest observation in `[0, 1]`:
    /// `new = decay·observed + (1 − decay)·old`. 1.0 keeps only the
    /// latest observation.
    pub decay: f64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            capacity: 1024,
            decay: 0.5,
        }
    }
}

/// A bounded, decay-weighted store of observed Group By cardinalities.
///
/// Keys are (table entry, sorted column ordinals). Each `record` blends
/// the new observation into the existing entry with EWMA weight
/// [`FeedbackConfig::decay`], so drifting data walks estimates toward
/// recent truth without letting one anomalous run dominate.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    config: FeedbackConfig,
    entries: FxHashMap<(String, Vec<usize>), FeedbackEntry>,
    lru: VecDeque<(String, Vec<usize>)>,
    observations: u64,
    evictions: u64,
    generation: u64,
}

impl FeedbackStore {
    /// Create a store with default config (1024 entries, decay 0.5).
    pub fn new() -> Self {
        Self::with_config(FeedbackConfig::default())
    }

    /// Create a store with explicit config.
    pub fn with_config(config: FeedbackConfig) -> Self {
        FeedbackStore {
            config: FeedbackConfig {
                capacity: config.capacity,
                decay: config.decay.clamp(0.0, 1.0),
            },
            ..Self::default()
        }
    }

    /// Record one observation, blending it into any existing entry.
    /// Observations with zero input rows are ignored (nothing ran).
    pub fn record(&mut self, obs: &NodeObservation) {
        if obs.input_rows == 0 {
            return;
        }
        self.observations += 1;
        self.generation += 1;
        let key = (obs.table.clone(), sorted(&obs.cols));
        let decay = self.config.decay;
        match self.entries.get_mut(&key) {
            Some(e) => {
                // An observation at a newer table version supersedes the
                // blend: the old groups count describes a smaller table.
                if obs.table_version > e.last_version {
                    e.groups = obs.output_groups as f64;
                    e.input_rows = obs.input_rows as f64;
                    e.cost_ns = obs.elapsed_ns as f64;
                    e.last_version = obs.table_version;
                } else {
                    e.groups = decay * obs.output_groups as f64 + (1.0 - decay) * e.groups;
                    e.input_rows = decay * obs.input_rows as f64 + (1.0 - decay) * e.input_rows;
                    e.cost_ns = decay * obs.elapsed_ns as f64 + (1.0 - decay) * e.cost_ns;
                }
                e.hits += 1;
                self.touch(&key);
            }
            None => {
                self.entries.insert(
                    key.clone(),
                    FeedbackEntry {
                        groups: obs.output_groups as f64,
                        input_rows: obs.input_rows as f64,
                        cost_ns: obs.elapsed_ns as f64,
                        hits: 1,
                        last_version: obs.table_version,
                    },
                );
                self.lru.push_back(key);
                if self.config.capacity > 0 {
                    while self.entries.len() > self.config.capacity {
                        match self.lru.pop_front() {
                            Some(victim) => {
                                self.entries.remove(&victim);
                                self.evictions += 1;
                            }
                            None => break,
                        }
                    }
                }
            }
        }
    }

    fn touch(&mut self, key: &(String, Vec<usize>)) {
        if self.config.capacity == 0 {
            return;
        }
        if let Some(pos) = self.lru.iter().position(|k| k == key) {
            let k = self.lru.remove(pos).unwrap();
            self.lru.push_back(k);
        }
    }

    /// Decay-weighted observed group count for (table, cols), if any.
    pub fn observed_groups(&self, table: &str, cols: &[usize]) -> Option<f64> {
        self.lookup(table, cols).map(|e| e.groups)
    }

    /// Decay-weighted observed node cost in nanoseconds, if any.
    pub fn observed_cost_ns(&self, table: &str, cols: &[usize]) -> Option<f64> {
        self.lookup(table, cols).map(|e| e.cost_ns)
    }

    fn lookup(&self, table: &str, cols: &[usize]) -> Option<&FeedbackEntry> {
        self.entries.get(&(table.to_string(), sorted(cols)))
    }

    /// Total observations recorded (including blends into existing keys).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Entries evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of live (table, column-set) keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no observations are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotone counter bumped by every `record`; cheap staleness probe
    /// for cached plans ("has anything been learned since I was costed?").
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drop every fact recorded for `table`. For wholesale replacement
    /// (re-registration): old observations describe data that no longer
    /// exists, and unlike appends there is no version ordering to let
    /// `record` supersede them naturally before the next plan.
    pub fn forget_table(&mut self, table: &str) {
        self.entries.retain(|(t, _), _| t != table);
        self.lru.retain(|(t, _)| t != table);
        self.generation += 1;
    }
}

fn sorted(cols: &[usize]) -> Vec<usize> {
    let mut v = cols.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// The q-error of an estimate against an observation:
/// `max(est/obs, obs/est)`, with both clamped to ≥ 1 so empty results
/// do not divide by zero. Always ≥ 1; 1 means exact.
pub fn q_error(estimated: f64, observed: f64) -> f64 {
    let est = estimated.max(1.0);
    let obs = observed.max(1.0);
    (est / obs).max(obs / est)
}

/// A [`CardinalitySource`] that overlays feedback on a static source.
///
/// Answer preference for `distinct(cols)`:
/// 1. a decay-weighted *observation* of exactly this column set,
/// 2. an online *sketch* estimate (fresh across appends without
///    re-sampling) — per-column sketches directly for singles, and as a
///    product-of-singles cap for joint sets,
/// 3. the wrapped static estimate.
///
/// Everything else (row widths, base rows, creation log) delegates to the
/// wrapped source, so the existing cost models work unchanged.
#[derive(Debug)]
pub struct AdaptiveCardinalitySource<'f, S> {
    inner: S,
    table: &'f str,
    feedback: &'f FeedbackStore,
    sketches: Option<&'f TableSketches>,
}

impl<'f, S: CardinalitySource> AdaptiveCardinalitySource<'f, S> {
    /// Wrap `inner`, consulting `feedback` (and optionally `sketches`)
    /// for the base-table entry named `table`.
    pub fn new(
        inner: S,
        table: &'f str,
        feedback: &'f FeedbackStore,
        sketches: Option<&'f TableSketches>,
    ) -> Self {
        AdaptiveCardinalitySource {
            inner,
            table,
            feedback,
            sketches,
        }
    }

    /// Unwrap the static source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CardinalitySource> CardinalitySource for AdaptiveCardinalitySource<'_, S> {
    fn base_rows(&self) -> usize {
        self.inner.base_rows()
    }

    fn distinct(&mut self, cols: &[usize]) -> f64 {
        if cols.is_empty() {
            return 1.0;
        }
        let rows = self.inner.base_rows() as f64;
        if let Some(obs) = self.feedback.observed_groups(self.table, cols) {
            return obs.clamp(1.0, rows.max(1.0));
        }
        if let Some(sk) = self.sketches {
            if cols.len() == 1 {
                if let Some(est) = sk.column_estimate(cols[0]) {
                    return est.clamp(1.0, rows.max(1.0));
                }
            } else if let Some(cap) = sk.joint_estimate(cols) {
                // Joint sets: the sketch product caps the static joint
                // estimate (sampling overshoots wide sets), and keeps it
                // fresh when the static sample predates recent appends.
                return self.inner.distinct(cols).min(cap).clamp(1.0, rows.max(1.0));
            }
        }
        self.inner.distinct(cols)
    }

    fn row_width(&self, cols: &[usize]) -> f64 {
        self.inner.row_width(cols)
    }

    fn full_row_width(&self) -> f64 {
        self.inner.full_row_width()
    }

    fn creation_log(&self) -> Option<&StatsCreationLog> {
        self.inner.creation_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_stats::ExactSource;
    use gbmqo_storage::{Column, DataType, Field, Schema, Table};

    fn obs(table: &str, cols: &[usize], rows: u64, groups: u64, version: u64) -> NodeObservation {
        NodeObservation {
            table: table.into(),
            cols: cols.to_vec(),
            input_rows: rows,
            output_groups: groups,
            elapsed_ns: 1_000,
            table_version: version,
        }
    }

    #[test]
    fn record_and_blend() {
        let mut fs = FeedbackStore::with_config(FeedbackConfig {
            capacity: 8,
            decay: 0.5,
        });
        fs.record(&obs("r", &[1, 0], 100, 40, 1));
        assert_eq!(fs.observed_groups("r", &[0, 1]), Some(40.0));
        fs.record(&obs("r", &[0, 1], 100, 80, 1));
        assert_eq!(fs.observed_groups("r", &[1, 0]), Some(60.0)); // EWMA blend
        assert_eq!(fs.observations(), 2);
        assert!(fs.generation() >= 2);
        assert_eq!(fs.observed_groups("r", &[0]), None);
        assert_eq!(fs.observed_groups("other", &[0, 1]), None);
    }

    #[test]
    fn newer_version_supersedes_blend() {
        let mut fs = FeedbackStore::new();
        fs.record(&obs("r", &[0], 100, 10, 1));
        fs.record(&obs("r", &[0], 200, 90, 2)); // table grew: reset, no blend
        assert_eq!(fs.observed_groups("r", &[0]), Some(90.0));
    }

    #[test]
    fn zero_input_rows_ignored() {
        let mut fs = FeedbackStore::new();
        fs.record(&obs("r", &[0], 0, 0, 1));
        assert!(fs.is_empty());
        assert_eq!(fs.observations(), 0);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_updated() {
        let mut fs = FeedbackStore::with_config(FeedbackConfig {
            capacity: 2,
            decay: 1.0,
        });
        fs.record(&obs("r", &[0], 10, 1, 1));
        fs.record(&obs("r", &[1], 10, 2, 1));
        fs.record(&obs("r", &[0], 10, 3, 1)); // refresh [0]; [1] is now LRU
        fs.record(&obs("r", &[2], 10, 4, 1));
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.evictions(), 1);
        assert_eq!(fs.observed_groups("r", &[1]), None);
        assert_eq!(fs.observed_groups("r", &[0]), Some(3.0));
        assert_eq!(fs.observed_groups("r", &[2]), Some(4.0));
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(200.0, 100.0), 2.0);
        assert_eq!(q_error(50.0, 100.0), 2.0);
        assert_eq!(q_error(0.0, 0.0), 1.0); // clamped, no NaN
    }

    fn three_col_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_i64((0..1000).map(|i| i % 10).collect()),
                Column::from_i64((0..1000).map(|i| i % 20).collect()),
                Column::from_i64((0..1000).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn adaptive_source_prefers_observation_then_sketch_then_inner() {
        let t = three_col_table();
        let mut fs = FeedbackStore::new();
        fs.record(&obs("r", &[0], 1000, 7, 1)); // lie on purpose: truth is 10
        let sketches = TableSketches::build(&t);

        let mut src =
            AdaptiveCardinalitySource::new(ExactSource::new(&t), "r", &fs, Some(&sketches));
        // Observation wins for [0] even though the inner source is exact.
        assert_eq!(src.distinct(&[0]), 7.0);
        // No observation for [1]: the sketch answers (close to truth 20).
        let d1 = src.distinct(&[1]);
        assert!((15.0..=25.0).contains(&d1), "sketch estimate {d1}");
        // Empty set is always 1.
        assert_eq!(src.distinct(&[]), 1.0);
        // Widths and base rows delegate.
        assert_eq!(src.base_rows(), 1000);
        assert_eq!(src.row_width(&[0]), 16.0);
    }

    #[test]
    fn adaptive_without_sketches_falls_back_to_inner() {
        let t = three_col_table();
        let fs = FeedbackStore::new();
        let mut src = AdaptiveCardinalitySource::new(ExactSource::new(&t), "r", &fs, None);
        assert_eq!(src.distinct(&[0]), 10.0);
        assert_eq!(src.distinct(&[1]), 20.0);
    }

    #[test]
    fn observation_clamped_to_base_rows() {
        let t = three_col_table();
        let mut fs = FeedbackStore::new();
        fs.record(&obs("r", &[2], 1000, 5_000_000, 1)); // bogus: more groups than rows
        let mut src = AdaptiveCardinalitySource::new(ExactSource::new(&t), "r", &fs, None);
        assert_eq!(src.distinct(&[2]), 1000.0);
    }
}
