//! Hash inner join.
//!
//! Needed for §5.1.1's transformation of a GROUPING SETS query over
//! `Join(R, S)`: pushed-down Group Bys over `R` are joined back with `S`
//! on the join attribute.

use crate::error::{ExecError, Result};
use crate::metrics::ExecMetrics;
use gbmqo_storage::{Column, Field, KeyEncoder, RowKey, Schema, Table};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// Inner equi-join of `left` and `right` on the given key columns.
///
/// NULL keys never join (SQL semantics). Output columns are all of `left`'s
/// followed by all of `right`'s; a right column whose name collides with a
/// left column is prefixed with `right_`.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(ExecError::Invalid(
            "join requires equally many (≥1) key columns on both sides".to_string(),
        ));
    }
    let start = Instant::now();

    // Build side: right.
    let right_cols: Vec<&Column> = right_keys.iter().map(|&c| right.column(c)).collect();
    let mut enc = KeyEncoder::new();
    let mut build: FxHashMap<RowKey, Vec<u32>> = FxHashMap::default();
    for row in 0..right.num_rows() {
        if right_cols.iter().any(|c| c.is_null(row)) {
            continue;
        }
        build
            .entry(enc.encode(&right_cols, row))
            .or_default()
            .push(row as u32);
    }

    // Probe side: left.
    let left_cols: Vec<&Column> = left_keys.iter().map(|&c| left.column(c)).collect();
    let mut left_rows: Vec<u32> = Vec::new();
    let mut right_rows: Vec<u32> = Vec::new();
    for row in 0..left.num_rows() {
        if left_cols.iter().any(|c| c.is_null(row)) {
            continue;
        }
        if let Some(matches) = build.get(&enc.encode(&left_cols, row)) {
            for &r in matches {
                left_rows.push(row as u32);
                right_rows.push(r);
            }
        }
    }

    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    let mut columns: Vec<Column> = left
        .columns()
        .iter()
        .map(|c| c.gather(&left_rows))
        .collect();
    for (i, f) in right.schema().fields().iter().enumerate() {
        let name = if left.schema().index_of(&f.name).is_ok() {
            format!("right_{}", f.name)
        } else {
            f.name.clone()
        };
        fields.push(Field {
            name,
            data_type: f.data_type,
            nullable: f.nullable,
        });
        columns.push(right.column(i).gather(&right_rows));
    }

    let out = Table::new(Schema::new(fields)?, columns)?;
    metrics.rows_scanned += (left.num_rows() + right.num_rows()) as u64;
    metrics.rows_output += out.num_rows() as u64;
    metrics.add_elapsed(start.elapsed());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{DataType, TableBuilder, Value};

    fn t(rows: &[(Value, Value)], names: (&str, &str)) -> Table {
        let schema = Schema::new(vec![
            Field::new(names.0, DataType::Int64),
            Field::new(names.1, DataType::Utf8),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for (a, b) in rows {
            tb.push_row(&[a.clone(), b.clone()]).unwrap();
        }
        tb.finish().unwrap()
    }

    #[test]
    fn inner_join_matches_keys() {
        let left = t(
            &[
                (Value::Int(1), Value::str("l1")),
                (Value::Int(2), Value::str("l2")),
                (Value::Int(3), Value::str("l3")),
            ],
            ("k", "lv"),
        );
        let right = t(
            &[
                (Value::Int(2), Value::str("r2")),
                (Value::Int(2), Value::str("r2b")),
                (Value::Int(3), Value::str("r3")),
                (Value::Int(9), Value::str("r9")),
            ],
            ("k", "rv"),
        );
        let mut m = ExecMetrics::new();
        let out = hash_join(&left, &right, &[0], &[0], &mut m).unwrap();
        assert_eq!(out.num_rows(), 3); // 2×2 matches + 3×1
                                       // name collision handled
        assert!(out.schema().index_of("right_k").is_ok());
        assert!(out.schema().index_of("rv").is_ok());
        let mut pairs: Vec<(i64, String)> = (0..out.num_rows())
            .map(|r| {
                (
                    out.value(r, 0).as_int().unwrap(),
                    out.value(r, 3).as_str().unwrap().to_string(),
                )
            })
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (2, "r2".to_string()),
                (2, "r2b".to_string()),
                (3, "r3".to_string())
            ]
        );
    }

    #[test]
    fn null_keys_do_not_join() {
        let left = t(&[(Value::Null, Value::str("l"))], ("k", "lv"));
        let right = t(&[(Value::Null, Value::str("r"))], ("k", "rv"));
        let mut m = ExecMetrics::new();
        let out = hash_join(&left, &right, &[0], &[0], &mut m).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn key_arity_checked() {
        let left = t(&[(Value::Int(1), Value::str("l"))], ("k", "lv"));
        let right = t(&[(Value::Int(1), Value::str("r"))], ("k", "rv"));
        let mut m = ExecMetrics::new();
        assert!(hash_join(&left, &right, &[0], &[], &mut m).is_err());
        assert!(hash_join(&left, &right, &[], &[], &mut m).is_err());
    }
}
