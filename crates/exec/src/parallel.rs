//! Parallel hash aggregation by key partitioning.
//!
//! The partitioned-cube line of work the paper cites (\[16\]:
//! Partitioned-Cube, Memory-Cube) splits the input by grouping key so
//! that partitions can be aggregated independently. This module applies
//! the same idea across threads: every worker scans the input and owns
//! the rows whose key hashes into its partition, so group sets are
//! disjoint across workers and the final result is a simple
//! concatenation — no merge phase.

use crate::agg::{Accumulator, AggSpec};
use crate::error::Result;
use crate::metrics::ExecMetrics;
use gbmqo_storage::{Column, ColumnBuilder, Field, KeyEncoder, RowKey, Schema, Table};
use rustc_hash::FxHashMap;
use std::hash::BuildHasher;
use std::time::Instant;

/// Concatenate result tables with identical schemas.
fn concat(parts: Vec<Table>) -> Result<Table> {
    let schema = parts
        .first()
        .map(|t| t.schema().clone())
        .expect("at least one partition");
    let total: usize = parts.iter().map(Table::num_rows).sum();
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type, total))
        .collect();
    for part in &parts {
        for row in 0..part.num_rows() {
            for (c, b) in builders.iter_mut().enumerate() {
                b.push(&part.value(row, c))?;
            }
        }
    }
    let columns: Vec<Column> = builders.into_iter().map(ColumnBuilder::finish).collect();
    Ok(Table::new(schema, columns)?)
}

/// Hash-partitioned parallel Group By: semantically identical to
/// [`crate::hash_group_by`] (up to row order), computed by `threads`
/// workers that each own a disjoint key partition.
pub fn parallel_hash_group_by(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    threads: usize,
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    let threads = threads.max(1);
    if threads == 1 || input.num_rows() < 2 * threads {
        return crate::group_by::hash_group_by(input, group_cols, aggs, metrics);
    }
    let start = Instant::now();
    let hasher = rustc_hash::FxBuildHasher;

    let partials: Vec<Result<Table>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let hasher = &hasher;
                scope.spawn(move || -> Result<Table> {
                    let key_cols: Vec<&Column> =
                        group_cols.iter().map(|&c| input.column(c)).collect();
                    let mut enc = KeyEncoder::new();
                    let mut groups: FxHashMap<RowKey, u32> = FxHashMap::default();
                    let mut representatives: Vec<u32> = Vec::new();
                    let mut accumulators: Vec<Accumulator> = aggs
                        .iter()
                        .map(|a| Accumulator::build(a, input))
                        .collect::<Result<_>>()?;
                    for row in 0..input.num_rows() {
                        let key = enc.encode(&key_cols, row);

                        if (hasher.hash_one(&key) as usize) % threads != tid {
                            continue;
                        }
                        let next_gid = representatives.len() as u32;
                        let gid = *groups.entry(key).or_insert_with(|| {
                            representatives.push(row as u32);
                            next_gid
                        }) as usize;
                        for acc in &mut accumulators {
                            acc.ensure_group(gid);
                            acc.update(input, gid, row);
                        }
                    }
                    // materialize this partition's slice
                    let num_groups = representatives.len();
                    let mut fields: Vec<Field> = Vec::new();
                    let mut columns: Vec<Column> = Vec::new();
                    for &c in group_cols {
                        fields.push(input.schema().field(c).clone());
                        columns.push(input.column(c).gather(&representatives));
                    }
                    for (acc, spec) in accumulators.into_iter().zip(aggs) {
                        let (field, col) = acc.finish(spec, input, num_groups);
                        fields.push(field);
                        columns.push(col);
                    }
                    Ok(Table::new(Schema::new(fields)?, columns)?)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut parts = Vec::with_capacity(threads);
    for p in partials {
        parts.push(p?);
    }
    let result = concat(parts)?;
    metrics.rows_scanned += input.num_rows() as u64;
    metrics.rows_output += result.num_rows() as u64;
    metrics.add_elapsed(start.elapsed());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_by::hash_group_by;
    use gbmqo_storage::{DataType, Value};

    fn table(rows: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("v", DataType::Int64),
        ])
        .unwrap();
        let mut tb = gbmqo_storage::TableBuilder::new(schema);
        for i in 0..rows as i64 {
            tb.push_row(&[
                Value::Int(i % 97),
                Value::str(if i % 3 == 0 { "x" } else { "y" }),
                Value::Int(i),
            ])
            .unwrap();
        }
        tb.finish().unwrap()
    }

    fn norm(t: &Table) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = (0..t.num_rows())
            .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn parallel_matches_sequential() {
        let t = table(5_000);
        let aggs = [
            AggSpec::count(),
            AggSpec::min("v", "mn"),
            AggSpec::max("v", "mx"),
        ];
        let mut m = ExecMetrics::new();
        let seq = hash_group_by(&t, &[0, 1], &aggs, &mut m).unwrap();
        for threads in [2, 3, 8] {
            let par = parallel_hash_group_by(&t, &[0, 1], &aggs, threads, &mut m).unwrap();
            assert_eq!(norm(&par), norm(&seq), "{threads} threads");
        }
    }

    #[test]
    fn single_thread_and_tiny_inputs_fall_back() {
        let t = table(4);
        let mut m = ExecMetrics::new();
        let par = parallel_hash_group_by(&t, &[1], &[AggSpec::count()], 8, &mut m).unwrap();
        let seq = hash_group_by(&t, &[1], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(norm(&par), norm(&seq));
    }

    #[test]
    fn partitions_are_disjoint() {
        // Every group appears exactly once in the parallel result.
        let t = table(3_000);
        let mut m = ExecMetrics::new();
        let par = parallel_hash_group_by(&t, &[0], &[AggSpec::count()], 4, &mut m).unwrap();
        let mut keys: Vec<Value> = (0..par.num_rows()).map(|r| par.value(r, 0)).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate groups across partitions");
        assert_eq!(before, 97);
    }
}
