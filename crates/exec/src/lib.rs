//! # gbmqo-exec
//!
//! The relational execution engine underneath the GB-MQO optimizer — the
//! role Microsoft SQL Server's executor plays in the SIGMOD 2005 paper.
//!
//! Operators:
//!
//! * [`group_by`] / [`hash_group_by`] / [`stream_group_by`] — hash
//!   aggregation and sort-order (index) streaming aggregation with
//!   COUNT(\*), SUM(cnt) re-aggregation, SUM/MIN/MAX (§7.2),
//! * [`radix_group_by`] — the radix-partitioned, morsel-driven parallel
//!   kernel with packed `u64`/`u128` key codes (default for large
//!   inputs; see [`GroupByStrategy`]),
//! * [`rollup`] and [`cube`] — §7.1's alternative plan nodes, computed by
//!   lattice descent (each level re-aggregated from the previous),
//! * [`filter`], [`join`], [`union_all`] — the relational plumbing for
//!   §5.1.1's GROUPING SETS over selections and joins with `Grp-Tag`,
//! * [`engine::Engine`] — runs named Group By queries against a
//!   [`gbmqo_storage::Catalog`], materializing `SELECT … INTO` temp tables
//!   and collecting [`metrics::ExecMetrics`].

#![warn(missing_docs)]

pub mod agg;
pub mod cancel;
pub mod cube;
mod driver;
pub mod engine;
pub mod error;
pub mod filter;
pub mod group_by;
pub mod join;
pub mod metrics;
pub mod parallel;
pub mod radix;
pub mod rollup;
pub mod rowstore;
pub mod shared;
pub mod sort_agg;
pub mod union_all;

pub use agg::{AggFunc, AggSpec};
pub use cancel::CancelToken;
pub use cube::cube;
pub use engine::{Engine, GroupByQuery};
pub use error::{ExecError, Result};
pub use filter::{filter, Predicate};
pub use group_by::{group_by, hash_group_by, stream_group_by};
pub use join::hash_join;
pub use metrics::ExecMetrics;
pub use parallel::parallel_hash_group_by;
pub use radix::{group_by_with_strategy, radix_group_by, GroupByStrategy};
pub use rollup::rollup;
pub use rowstore::full_scan_tax;
pub use shared::shared_scan_group_by;
pub use sort_agg::sort_group_by;
pub use union_all::union_all_tagged;
