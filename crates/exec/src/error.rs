//! Error type for the execution engine.

use gbmqo_storage::StorageError;
use std::fmt;

/// Errors produced by operators and the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A storage-layer error.
    Storage(StorageError),
    /// An operator was given inconsistent inputs.
    Invalid(String),
    /// The query was cancelled cooperatively (see [`crate::cancel`]);
    /// `timed_out` is true when a deadline trip caused it rather than
    /// an explicit cancel.
    Cancelled {
        /// Whether a deadline (rather than an explicit cancel) tripped.
        timed_out: bool,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            ExecError::Cancelled { timed_out: true } => write!(f, "query deadline exceeded"),
            ExecError::Cancelled { timed_out: false } => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            ExecError::Invalid(_) | ExecError::Cancelled { .. } => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ExecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ExecError = StorageError::TableNotFound("t".into()).into();
        assert!(e.to_string().contains("table not found"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ExecError::Invalid("nope".into());
        assert_eq!(e.to_string(), "invalid operation: nope");
        assert!(std::error::Error::source(&e).is_none());
        let e = ExecError::Cancelled { timed_out: true };
        assert_eq!(e.to_string(), "query deadline exceeded");
        let e = ExecError::Cancelled { timed_out: false };
        assert_eq!(e.to_string(), "query cancelled");
    }
}
