//! CUBE: all 2^k Group Bys over k columns, computed by lattice descent.
//!
//! §7.1 of the paper considers replacing a merged node `(v1 ∪ v2)` with a
//! CUBE query. We compute the full cube the classic way (cf. the partial
//! cube literature the paper cites \[2, 14, 16\]): the finest Group By is
//! computed from the input, and every coarser one is re-aggregated from a
//! smallest already-computed parent one column larger.

use crate::agg::AggSpec;
use crate::error::{ExecError, Result};
use crate::group_by::hash_group_by;
use crate::metrics::ExecMetrics;
use gbmqo_storage::Table;
use rustc_hash::FxHashMap;

/// Maximum cube dimensionality (2^k results are materialized).
pub const MAX_CUBE_COLS: usize = 16;

/// Compute `CUBE(cols)` over `input`.
///
/// Returns one `(mask, table)` pair per subset of `cols`, where bit `i` of
/// `mask` selects `cols[i]`; sorted by descending popcount then ascending
/// mask. The full-set table is computed from `input`; every other subset is
/// re-aggregated from a minimum-cardinality parent.
pub fn cube(
    input: &Table,
    cols: &[usize],
    aggs: &[AggSpec],
    metrics: &mut ExecMetrics,
) -> Result<Vec<(u32, Table)>> {
    let k = cols.len();
    if k > MAX_CUBE_COLS {
        return Err(ExecError::Invalid(format!(
            "cube over {k} columns exceeds the {MAX_CUBE_COLS}-column limit"
        )));
    }
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    let mut results: FxHashMap<u32, Table> = FxHashMap::default();

    let finest = hash_group_by(input, cols, aggs, metrics)?;
    results.insert(full, finest);

    let reaggs: Vec<AggSpec> = aggs.iter().map(AggSpec::reaggregate).collect();

    // Visit subsets by decreasing popcount so every parent exists.
    let mut masks: Vec<u32> = (0..=full).collect();
    masks.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
    for &mask in &masks {
        if mask == full {
            continue;
        }
        // Candidate parents: mask with one extra bit set.
        let mut best: Option<(u32, usize)> = None;
        for bit in 0..k {
            let parent = mask | (1u32 << bit);
            if parent == mask {
                continue;
            }
            if let Some(pt) = results.get(&parent) {
                let rows = pt.num_rows();
                if best.is_none_or(|(_, r)| rows < r) {
                    best = Some((parent, rows));
                }
            }
        }
        let (parent_mask, _) = best.expect("a parent always exists in descent order");
        let parent = &results[&parent_mask];
        // Columns of `mask` within the parent: group columns were laid out
        // in the order of set bits of `parent_mask` over `cols`.
        let parent_positions: Vec<usize> = (0..k).filter(|b| parent_mask >> b & 1 == 1).collect();
        let keep: Vec<usize> = parent_positions
            .iter()
            .enumerate()
            .filter(|(_, &b)| mask >> b & 1 == 1)
            .map(|(i, _)| i)
            .collect();
        let table = hash_group_by(parent, &keep, &reaggs, metrics)?;
        results.insert(mask, table);
    }

    let mut out: Vec<(u32, Table)> = results.into_iter().collect();
    out.sort_by_key(|(m, _)| (std::cmp::Reverse(m.count_ones()), *m));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn input() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Int64),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for (a, b, c) in [(1, 1, 1), (1, 2, 1), (2, 1, 2), (1, 1, 2), (2, 2, 2)] {
            tb.push_row(&[Value::Int(a), Value::Int(b), Value::Int(c)])
                .unwrap();
        }
        tb.finish().unwrap()
    }

    fn norm(t: &Table) -> Vec<(Vec<Value>, i64)> {
        let n = t.num_columns();
        let mut v: Vec<(Vec<Value>, i64)> = (0..t.num_rows())
            .map(|r| {
                (
                    (0..n - 1).map(|c| t.value(r, c)).collect(),
                    t.value(r, n - 1).as_int().unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn cube_has_all_subsets() {
        let t = input();
        let mut m = ExecMetrics::new();
        let c = cube(&t, &[0, 1, 2], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(c.len(), 8);
        let masks: Vec<u32> = c.iter().map(|(m, _)| *m).collect();
        let mut sorted = masks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        // first entry is the full set
        assert_eq!(c[0].0, 0b111);
    }

    #[test]
    fn cube_subsets_match_direct_group_bys() {
        let t = input();
        let mut m = ExecMetrics::new();
        let c = cube(&t, &[0, 1, 2], &[AggSpec::count()], &mut m).unwrap();
        for (mask, table) in &c {
            let cols: Vec<usize> = (0..3).filter(|b| mask >> b & 1 == 1).collect();
            let direct = hash_group_by(&t, &cols, &[AggSpec::count()], &mut m).unwrap();
            assert_eq!(norm(table), norm(&direct), "mask {mask:b}");
        }
    }

    #[test]
    fn cube_apex_is_grand_total() {
        let t = input();
        let mut m = ExecMetrics::new();
        let c = cube(&t, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        let apex = &c.iter().find(|(m, _)| *m == 0).unwrap().1;
        assert_eq!(apex.num_rows(), 1);
        assert_eq!(apex.value(0, 0), Value::Int(5));
    }

    #[test]
    fn oversized_cube_rejected() {
        let t = input();
        let mut m = ExecMetrics::new();
        let cols: Vec<usize> = (0..MAX_CUBE_COLS + 1).map(|i| i % 3).collect();
        assert!(cube(&t, &cols, &[AggSpec::count()], &mut m).is_err());
    }
}
