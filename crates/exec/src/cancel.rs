//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that a coordinator
//! (the server's deadline enforcement, or any caller that wants to
//! abort a query) shares with the execution engine. Kernels poll it at
//! morsel boundaries — the radix scatter loop, per-partition
//! aggregation, and the batch driver's per-query starts — so a stuck or
//! over-deadline request stops within one morsel's worth of work
//! instead of running to completion.
//!
//! Two trip conditions fold into one flag:
//!
//! * an explicit [`CancelToken::cancel`] call, and
//! * an optional wall-clock deadline fixed at construction.
//!
//! Polling is a relaxed atomic load plus (when a deadline is set) an
//! `Instant` comparison — cheap enough for a per-morsel check, far too
//! expensive for a per-row one, which is exactly why checks sit at
//! morsel granularity.

use crate::error::{ExecError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation flag with an optional deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that also trips once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A token that also trips at the absolute instant `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// The deadline this token trips at, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Trip the token: every holder observes cancellation from now on.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token been tripped (explicitly or by its deadline)?
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch, so later polls skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// `Err(ExecError::Cancelled { .. })` once tripped, `Ok(())` before.
    ///
    /// `timed_out` distinguishes a deadline trip from an explicit
    /// cancel: it is true iff a deadline was set and has passed (an
    /// explicit `cancel()` racing the deadline reports as a timeout —
    /// the caller asked for both, and the deadline is the stronger
    /// contract).
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            let timed_out = matches!(self.inner.deadline, Some(d) if Instant::now() >= d);
            Err(ExecError::Cancelled { timed_out })
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Poll helper for `Option<&CancelToken>` threading: `None` never trips.
pub(crate) fn tripped(cancel: Option<&CancelToken>) -> bool {
    cancel.is_some_and(|c| c.is_cancelled())
}

/// Check helper for `Option<&CancelToken>`: `None` is always `Ok`.
pub(crate) fn check(cancel: Option<&CancelToken>) -> Result<()> {
    match cancel {
        Some(c) => c.check(),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        u.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(ExecError::Cancelled { timed_out: false }));
    }

    #[test]
    fn deadline_trips_by_itself() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(ExecError::Cancelled { timed_out: true }));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn option_helpers() {
        assert!(!tripped(None));
        assert!(check(None).is_ok());
        let t = CancelToken::new();
        t.cancel();
        assert!(tripped(Some(&t)));
        assert!(check(Some(&t)).is_err());
    }
}
