//! Disk-based row-store emulation.
//!
//! The paper's experiments run on a 2005 disk-based row store, where
//! *every* Group By query reads the full width of its input table from
//! disk at ~50–500 MB/s — which is precisely why sharing scans across
//! queries pays off so handsomely there. Our engine is an in-memory
//! columnar engine (a Group By touches only its grouping columns at RAM
//! speed), so the same plans win by smaller factors.
//!
//! This module provides an opt-in emulation of that environment
//! (`DESIGN.md` documents it as a substitution): when enabled via
//! [`crate::engine::Engine::set_io_ns_per_byte`], every un-indexed scan
//! first touches all input bytes once ([`full_scan_tax`], exercising the
//! real memory path) and then waits out a simulated transfer time of
//! `bytes × ns_per_byte` ([`simulated_io_wait`]); materializing a temp
//! table likewise pays write I/O. The optimizer cost model has a matching
//! `io_ns_per_byte` constant, so predicted and executed costs agree. The
//! library default is off (honest columnar behaviour).

use gbmqo_storage::column::ColumnData;
use gbmqo_storage::Table;

/// Read every byte of every column payload of `table`, returning a
/// checksum that the caller should [`std::hint::black_box`] so the
/// traversal cannot be optimized away. The pass runs in 8-byte words, so
/// its cost is proportional to the table's *byte* size — matching how the
/// row-store cost model prices scans per byte.
pub fn full_scan_tax(table: &Table) -> u64 {
    #[inline]
    fn sum_words<T>(values: &[T]) -> u64 {
        // Safety-free reinterpretation: sum aligned u64 words, then fold
        // in the unaligned prefix/suffix bytes.
        let bytes = unsafe {
            std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), std::mem::size_of_val(values))
        };
        let (head, words, tail) = unsafe { bytes.align_to::<u64>() };
        let mut acc: u64 = 0;
        for &w in words {
            acc = acc.wrapping_add(w);
        }
        for &b in head.iter().chain(tail) {
            acc = acc.wrapping_add(u64::from(b));
        }
        acc
    }
    let mut acc: u64 = 0;
    for col in table.columns() {
        acc = acc.wrapping_add(match col.data() {
            ColumnData::Int64(v) => sum_words(v),
            ColumnData::Float64(v) => sum_words(v),
            ColumnData::Utf8 { codes, .. } => sum_words(codes),
            ColumnData::Date32(v) => sum_words(v),
        });
    }
    acc
}

/// Busy-wait for `bytes × ns_per_byte` nanoseconds, simulating a
/// sequential disk transfer of `bytes` at `1/ns_per_byte` GB/s.
pub fn simulated_io_wait(bytes: u64, ns_per_byte: f64) {
    if ns_per_byte <= 0.0 || bytes == 0 {
        return;
    }
    let target = std::time::Duration::from_nanos((bytes as f64 * ns_per_byte) as u64);
    let start = std::time::Instant::now();
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, Schema};

    #[test]
    fn tax_touches_all_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("d", DataType::Date32),
            Field::new("f", DataType::Float64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2]),
                Column::from_strs(&["x", "y"]),
                Column::from_dates(vec![3, 4]),
                Column::from_f64(vec![0.5, 1.5]),
            ],
        )
        .unwrap();
        let a = full_scan_tax(&t);
        // deterministic and value-sensitive
        assert_eq!(a, full_scan_tax(&t));
        let t2 = t.gather(&[0, 0]);
        assert_ne!(full_scan_tax(&t2), a);
    }

    #[test]
    fn io_wait_times_are_proportional() {
        let start = std::time::Instant::now();
        simulated_io_wait(1_000_000, 2.0); // 2 ms
        let t = start.elapsed();
        assert!(t >= std::time::Duration::from_millis(2), "{t:?}");
        assert!(t < std::time::Duration::from_millis(50), "{t:?}");
        // disabled modes return instantly
        simulated_io_wait(0, 2.0);
        simulated_io_wait(1_000_000, 0.0);
    }

    #[test]
    fn empty_table_tax_is_zero() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int64)]).unwrap();
        let t = Table::empty(schema);
        assert_eq!(full_scan_tax(&t), 0);
    }
}
