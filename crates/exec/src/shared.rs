//! Shared-scan multi-aggregation.
//!
//! The partial-cube literature the paper builds on (PipeHash/PipeSort
//! \[2\], and the shared scans of \[8, 15, 16, 21\]) executes *several*
//! Group Bys in a single pass over their common input: one scan feeds one
//! hash table per grouping. The paper notes these physical operators are
//! orthogonal to its logical optimization and "can be leveraged by our
//! solution as well" — this module is that operator. The plan executor
//! uses it when a breadth-first schedule computes all children of a node
//! back-to-back from the same materialized parent.

use crate::agg::{Accumulator, AggSpec};
use crate::error::Result;
use crate::metrics::ExecMetrics;
use crate::radix::MORSEL_ROWS;
use gbmqo_storage::packed::KeyCode;
use gbmqo_storage::{Column, Field, KeyEncoder, PackedKeySpec, RowKey, Schema, Table};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// How one grouping's keys are resolved to dense gids during the scan:
/// packed integer codes when every group column is fixed-width (the
/// same fast path as the radix kernel), byte `RowKey`s otherwise.
enum Keyer {
    Packed64 {
        spec: PackedKeySpec,
        codes: Vec<u64>,
        map: FxHashMap<u64, u32>,
    },
    Packed128 {
        spec: PackedKeySpec,
        codes: Vec<u128>,
        map: FxHashMap<u128, u32>,
    },
    Rows {
        map: FxHashMap<RowKey, u32>,
    },
}

struct GroupingState<'t> {
    key_cols: Vec<&'t Column>,
    keyer: Keyer,
    representatives: Vec<u32>,
    accumulators: Vec<Accumulator>,
    /// Per-morsel gid vector, reused across morsels.
    gids: Vec<u32>,
}

/// Map a morsel's packed codes to gids, registering new groups.
fn probe_packed<K: KeyCode>(
    map: &mut FxHashMap<K, u32>,
    codes: &[K],
    morsel_start: usize,
    representatives: &mut Vec<u32>,
    gids: &mut Vec<u32>,
) {
    for (i, &code) in codes.iter().enumerate() {
        let gid = match map.get(&code) {
            Some(&g) => g,
            None => {
                let g = representatives.len() as u32;
                map.insert(code, g);
                representatives.push((morsel_start + i) as u32);
                g
            }
        };
        gids.push(gid);
    }
}

/// Compute several Group Bys over `input` in one shared scan.
///
/// `groupings` lists the grouping-column ordinals of each output; all
/// outputs compute the same `aggs`. Returns one table per grouping, in
/// order — each identical to what [`crate::hash_group_by`] would produce.
///
/// The scan is morsel-batched: for each block of rows, every grouping
/// state encodes the block's keys (packed codes where possible),
/// resolves the block's gid vector, and feeds its accumulators one
/// columnar [`Accumulator::update_batch`] call — the same vectorized
/// shape as the radix kernel, amortized across all groupings.
pub fn shared_scan_group_by(
    input: &Table,
    groupings: &[Vec<usize>],
    aggs: &[AggSpec],
    metrics: &mut ExecMetrics,
) -> Result<Vec<Table>> {
    let start = Instant::now();
    let n = input.num_rows();
    let mut states: Vec<GroupingState<'_>> = groupings
        .iter()
        .map(|cols| {
            let key_cols: Vec<&Column> = cols.iter().map(|&c| input.column(c)).collect();
            let keyer = match PackedKeySpec::build(&key_cols) {
                Some(spec) if spec.fits_u64() => {
                    metrics.packed_key_rows += n as u64;
                    Keyer::Packed64 {
                        spec,
                        codes: Vec::new(),
                        map: FxHashMap::default(),
                    }
                }
                Some(spec) => {
                    metrics.packed_key_rows += n as u64;
                    Keyer::Packed128 {
                        spec,
                        codes: Vec::new(),
                        map: FxHashMap::default(),
                    }
                }
                None => {
                    metrics.fallback_key_rows += n as u64;
                    Keyer::Rows {
                        map: FxHashMap::default(),
                    }
                }
            };
            Ok(GroupingState {
                key_cols,
                keyer,
                representatives: Vec::new(),
                accumulators: aggs
                    .iter()
                    .map(|a| Accumulator::build(a, input))
                    .collect::<Result<_>>()?,
                gids: Vec::new(),
            })
        })
        .collect::<Result<_>>()?;

    let mut enc = KeyEncoder::new();
    let mut rows_buf: Vec<u32> = Vec::with_capacity(MORSEL_ROWS.min(n.max(1)));
    let mut pos = 0;
    while pos < n {
        let len = MORSEL_ROWS.min(n - pos);
        rows_buf.clear();
        rows_buf.extend((pos..pos + len).map(|r| r as u32));
        for state in &mut states {
            let GroupingState {
                key_cols,
                keyer,
                representatives,
                accumulators,
                gids,
            } = state;
            gids.clear();
            match keyer {
                Keyer::Packed64 { spec, codes, map } => {
                    codes.clear();
                    codes.resize(len, 0);
                    spec.encode_into(key_cols, pos, codes);
                    probe_packed(map, codes, pos, representatives, gids);
                }
                Keyer::Packed128 { spec, codes, map } => {
                    codes.clear();
                    codes.resize(len, 0);
                    spec.encode_into(key_cols, pos, codes);
                    probe_packed(map, codes, pos, representatives, gids);
                }
                Keyer::Rows { map } => {
                    for row in pos..pos + len {
                        let key = enc.encode(key_cols, row);
                        let gid = match map.get(&key) {
                            Some(&g) => g,
                            None => {
                                let g = representatives.len() as u32;
                                map.insert(key, g);
                                representatives.push(row as u32);
                                g
                            }
                        };
                        gids.push(gid);
                    }
                }
            }
            for acc in accumulators.iter_mut() {
                acc.resize_groups(representatives.len());
                acc.update_batch(input, &rows_buf, gids);
            }
        }
        pos += len;
    }

    let mut outputs = Vec::with_capacity(groupings.len());
    for (state, cols) in states.into_iter().zip(groupings) {
        let num_groups = state.representatives.len();
        let mut fields: Vec<Field> = Vec::with_capacity(cols.len() + aggs.len());
        let mut columns: Vec<Column> = Vec::with_capacity(cols.len() + aggs.len());
        for &c in cols {
            fields.push(input.schema().field(c).clone());
            columns.push(input.column(c).gather(&state.representatives));
        }
        for (acc, spec) in state.accumulators.into_iter().zip(aggs) {
            let (field, col) = acc.finish(spec, input, num_groups);
            fields.push(field);
            columns.push(col);
        }
        let out = Table::new(Schema::new(fields)?, columns)?;
        metrics.rows_output += out.num_rows() as u64;
        outputs.push(out);
    }
    // One shared scan of the input, not one per grouping.
    metrics.rows_scanned += input.num_rows() as u64;
    metrics.add_elapsed(start.elapsed());
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_by::hash_group_by;
    use gbmqo_storage::{DataType, Value};

    fn input() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("c", DataType::Utf8),
        ])
        .unwrap();
        let mut tb = gbmqo_storage::TableBuilder::new(schema);
        for i in 0..200i64 {
            tb.push_row(&[
                Value::Int(i % 4),
                Value::Int(i % 7),
                Value::str(if i % 2 == 0 { "x" } else { "y" }),
            ])
            .unwrap();
        }
        tb.finish().unwrap()
    }

    fn norm(t: &Table) -> Vec<(Vec<Value>, i64)> {
        let n = t.num_columns();
        let mut v: Vec<(Vec<Value>, i64)> = (0..t.num_rows())
            .map(|r| {
                (
                    (0..n - 1).map(|c| t.value(r, c)).collect(),
                    t.value(r, n - 1).as_int().unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn shared_scan_matches_individual_group_bys() {
        let t = input();
        let mut m = ExecMetrics::new();
        let groupings = vec![vec![0], vec![1], vec![2], vec![0, 2]];
        let shared = shared_scan_group_by(&t, &groupings, &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(shared.len(), 4);
        for (cols, out) in groupings.iter().zip(&shared) {
            let direct = hash_group_by(&t, cols, &[AggSpec::count()], &mut m).unwrap();
            assert_eq!(norm(out), norm(&direct), "grouping {cols:?}");
        }
    }

    #[test]
    fn shared_scan_counts_one_scan() {
        let t = input();
        let mut m = ExecMetrics::new();
        let _ = shared_scan_group_by(&t, &[vec![0], vec![1]], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(m.rows_scanned, 200, "one shared scan, not two");
    }

    #[test]
    fn empty_groupings_and_inputs() {
        let t = input();
        let mut m = ExecMetrics::new();
        let none = shared_scan_group_by(&t, &[], &[AggSpec::count()], &mut m).unwrap();
        assert!(none.is_empty());
        let empty = Table::empty(t.schema().clone());
        let r = shared_scan_group_by(&empty, &[vec![0]], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(r[0].num_rows(), 0);
    }

    #[test]
    fn shared_scan_with_extended_aggregates() {
        let t = input();
        let mut m = ExecMetrics::new();
        let aggs = [
            AggSpec::count(),
            AggSpec::min("b", "min_b"),
            AggSpec::max("b", "max_b"),
        ];
        let shared = shared_scan_group_by(&t, &[vec![0]], &aggs, &mut m).unwrap();
        let direct = hash_group_by(&t, &[0], &aggs, &mut m).unwrap();
        let all = |t: &Table| {
            let mut v: Vec<Vec<Value>> = (0..t.num_rows())
                .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
                .collect();
            v.sort();
            v
        };
        assert_eq!(all(&shared[0]), all(&direct));
    }
}
