//! Row filters (selections).
//!
//! §5.1.1 pushes selections below GROUPING SETS; this operator provides
//! the selection node for those plans and for filtering tagged union-all
//! outputs by `Grp-Tag`.

use crate::error::Result;
use crate::metrics::ExecMetrics;
use gbmqo_storage::{Table, Value};
use std::time::Instant;

/// A simple predicate over one column, with conjunction.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col = value` (NULL never matches, like SQL `=`).
    Eq(String, Value),
    /// `col <= value`.
    Le(String, Value),
    /// `col >= value`.
    Ge(String, Value),
    /// `col IS NULL`.
    IsNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// `a AND b`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    fn matches(&self, table: &Table, row: usize) -> Result<bool> {
        Ok(match self {
            Predicate::Eq(col, v) => {
                let cv = table.column_by_name(col)?.value(row);
                !cv.is_null() && !v.is_null() && cv == *v
            }
            Predicate::Le(col, v) => {
                let cv = table.column_by_name(col)?.value(row);
                !cv.is_null() && !v.is_null() && cv <= *v
            }
            Predicate::Ge(col, v) => {
                let cv = table.column_by_name(col)?.value(row);
                !cv.is_null() && !v.is_null() && cv >= *v
            }
            Predicate::IsNull(col) => table.column_by_name(col)?.value(row).is_null(),
            Predicate::And(a, b) => a.matches(table, row)? && b.matches(table, row)?,
        })
    }
}

/// Filter `input` by `predicate`, producing a new table.
pub fn filter(input: &Table, predicate: &Predicate, metrics: &mut ExecMetrics) -> Result<Table> {
    let start = Instant::now();
    let mut keep: Vec<u32> = Vec::new();
    for row in 0..input.num_rows() {
        if predicate.matches(input, row)? {
            keep.push(row as u32);
        }
    }
    let out = input.gather(&keep);
    metrics.rows_scanned += input.num_rows() as u64;
    metrics.rows_output += out.num_rows() as u64;
    metrics.add_elapsed(start.elapsed());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{DataType, Field, Schema, TableBuilder};

    fn input() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("tag", DataType::Utf8),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for (x, t) in [
            (Value::Int(1), Value::str("a")),
            (Value::Int(2), Value::str("b")),
            (Value::Null, Value::str("a")),
            (Value::Int(4), Value::str("a")),
        ] {
            tb.push_row(&[x, t]).unwrap();
        }
        tb.finish().unwrap()
    }

    #[test]
    fn eq_filter_selects_matching_rows() {
        let t = input();
        let mut m = ExecMetrics::new();
        let out = filter(&t, &Predicate::Eq("tag".into(), Value::str("a")), &mut m).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(m.rows_scanned, 4);
        assert_eq!(m.rows_output, 3);
    }

    #[test]
    fn range_filters_ignore_nulls() {
        let t = input();
        let mut m = ExecMetrics::new();
        let out = filter(&t, &Predicate::Ge("x".into(), Value::Int(2)), &mut m).unwrap();
        assert_eq!(out.num_rows(), 2); // 2 and 4; NULL excluded
        let out = filter(&t, &Predicate::Le("x".into(), Value::Int(1)), &mut m).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn is_null_and_conjunction() {
        let t = input();
        let mut m = ExecMetrics::new();
        let out = filter(&t, &Predicate::IsNull("x".into()), &mut m).unwrap();
        assert_eq!(out.num_rows(), 1);
        let p = Predicate::Eq("tag".into(), Value::str("a"))
            .and(Predicate::Ge("x".into(), Value::Int(2)));
        let out = filter(&t, &p, &mut m).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), Value::Int(4));
    }

    #[test]
    fn missing_column_errors() {
        let t = input();
        let mut m = ExecMetrics::new();
        assert!(filter(&t, &Predicate::IsNull("nope".into()), &mut m).is_err());
    }
}
