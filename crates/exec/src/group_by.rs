//! Group By operators: hash aggregation and sort-order streaming
//! aggregation.
//!
//! Both produce the same logical result: one row per distinct combination
//! of the group columns (NULL is a value; empty input ⇒ empty output),
//! group columns first, aggregate outputs after.

use crate::agg::{Accumulator, AggSpec};
use crate::error::Result;
use crate::metrics::ExecMetrics;
use gbmqo_storage::{Column, Field, KeyEncoder, RowKey, Schema, Table};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// Assemble a group-by result: group columns gathered from the
/// representative row of each group, aggregate columns finished from
/// their accumulators. Shared by every group-by kernel in this crate.
pub(crate) fn output_table(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    representatives: Vec<u32>,
    accumulators: Vec<Accumulator>,
) -> Result<Table> {
    let num_groups = representatives.len();
    let mut fields: Vec<Field> = Vec::with_capacity(group_cols.len() + aggs.len());
    let mut columns: Vec<Column> = Vec::with_capacity(group_cols.len() + aggs.len());
    for &c in group_cols {
        fields.push(input.schema().field(c).clone());
        columns.push(input.column(c).gather(&representatives));
    }
    for (acc, spec) in accumulators.into_iter().zip(aggs) {
        let (field, col) = acc.finish(spec, input, num_groups);
        fields.push(field);
        columns.push(col);
    }
    Ok(Table::new(Schema::new(fields)?, columns)?)
}

/// Hash-based Group By over `input` on the columns at `group_cols`.
pub fn hash_group_by(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    let start = Instant::now();
    let key_cols: Vec<&Column> = group_cols.iter().map(|&c| input.column(c)).collect();
    let mut enc = KeyEncoder::new();
    let mut groups: FxHashMap<RowKey, u32> = FxHashMap::default();
    let mut representatives: Vec<u32> = Vec::new();
    let mut accumulators: Vec<Accumulator> = aggs
        .iter()
        .map(|a| Accumulator::build(a, input))
        .collect::<Result<_>>()?;

    for row in 0..input.num_rows() {
        let key = enc.encode(&key_cols, row);
        let next_gid = representatives.len() as u32;
        let gid = *groups.entry(key).or_insert_with(|| {
            representatives.push(row as u32);
            next_gid
        }) as usize;
        for acc in &mut accumulators {
            acc.ensure_group(gid);
            acc.update(input, gid, row);
        }
    }

    let result = output_table(input, group_cols, aggs, representatives, accumulators)?;
    record(metrics, input, group_cols, &result, start);
    Ok(result)
}

/// Streaming Group By over rows visited in `order`, which must sort (or at
/// least cluster) `input` by `group_cols` — e.g. an index permutation.
/// Runs without a hash table; this is what makes indexed single-column
/// Group By queries cheap in the §6.9 physical-design experiment.
pub fn stream_group_by(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    order: &[u32],
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    let start = Instant::now();
    if order.len() != input.num_rows() {
        return Err(crate::error::ExecError::Invalid(format!(
            "order has {} entries for {} input rows",
            order.len(),
            input.num_rows()
        )));
    }
    let key_cols: Vec<&Column> = group_cols.iter().map(|&c| input.column(c)).collect();
    let mut representatives: Vec<u32> = Vec::new();
    let mut accumulators: Vec<Accumulator> = aggs
        .iter()
        .map(|a| Accumulator::build(a, input))
        .collect::<Result<_>>()?;

    let mut prev: Option<u32> = None;
    for &row in order {
        let row_usize = row as usize;
        let new_group = match prev {
            None => true,
            Some(p) => !key_cols.iter().all(|c| c.rows_equal(p as usize, row_usize)),
        };
        if new_group {
            representatives.push(row);
        }
        let gid = representatives.len() - 1;
        for acc in &mut accumulators {
            acc.ensure_group(gid);
            acc.update(input, gid, row_usize);
        }
        prev = Some(row);
    }

    let result = output_table(input, group_cols, aggs, representatives, accumulators)?;
    record(metrics, input, group_cols, &result, start);
    Ok(result)
}

/// Group By dispatcher: streams when a clustering `order` is supplied,
/// hashes otherwise.
pub fn group_by(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    order: Option<&[u32]>,
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    match order {
        Some(order) => stream_group_by(input, group_cols, aggs, order, metrics),
        None => hash_group_by(input, group_cols, aggs, metrics),
    }
}

/// Record the standard scan/output counters for one group-by execution.
pub(crate) fn record(
    metrics: &mut ExecMetrics,
    input: &Table,
    group_cols: &[usize],
    result: &Table,
    start: Instant,
) {
    metrics.rows_scanned += input.num_rows() as u64;
    metrics.rows_output += result.num_rows() as u64;
    metrics.bytes_scanned += (input.num_rows() as f64 * input.avg_row_width(group_cols)) as u64;
    metrics.add_elapsed(start.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::DataType;
    use gbmqo_storage::{sort_permutation, TableBuilder, Value};

    fn input() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Utf8),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for (a, b) in [
            (Value::str("x"), Value::Int(1)),
            (Value::str("y"), Value::Int(2)),
            (Value::str("x"), Value::Int(1)),
            (Value::Null, Value::Int(3)),
            (Value::str("x"), Value::Int(9)),
            (Value::Null, Value::Int(4)),
        ] {
            tb.push_row(&[a, b]).unwrap();
        }
        tb.finish().unwrap()
    }

    fn counts_by_key(t: &Table) -> Vec<(Value, i64)> {
        let mut v: Vec<(Value, i64)> = (0..t.num_rows())
            .map(|r| (t.value(r, 0), t.value(r, 1).as_int().unwrap()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn hash_group_by_counts() {
        let t = input();
        let mut m = ExecMetrics::new();
        let r = hash_group_by(&t, &[0], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(
            counts_by_key(&r),
            vec![(Value::Null, 2), (Value::str("x"), 3), (Value::str("y"), 1)]
        );
        assert_eq!(m.rows_scanned, 6);
        assert_eq!(m.rows_output, 3);
        assert!(m.elapsed_nanos > 0);
    }

    #[test]
    fn stream_group_by_matches_hash() {
        let t = input();
        let mut m = ExecMetrics::new();
        let hashed = hash_group_by(&t, &[0], &[AggSpec::count()], &mut m).unwrap();
        let order = sort_permutation(&t, &[0]);
        let streamed = stream_group_by(&t, &[0], &[AggSpec::count()], &order, &mut m).unwrap();
        assert_eq!(counts_by_key(&hashed), counts_by_key(&streamed));
    }

    #[test]
    fn multi_column_grouping() {
        let t = input();
        let mut m = ExecMetrics::new();
        let r = hash_group_by(&t, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        // distinct (a,b) pairs: (x,1) x2, (y,2), (NULL,3), (x,9), (NULL,4)
        assert_eq!(r.num_rows(), 5);
        let total: i64 = (0..r.num_rows())
            .map(|i| r.value(i, 2).as_int().unwrap())
            .sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn empty_group_cols_single_group() {
        let t = input();
        let mut m = ExecMetrics::new();
        let r = hash_group_by(&t, &[], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 0), Value::Int(6));
    }

    #[test]
    fn empty_input_empty_output() {
        let t = Table::empty(input().schema().clone());
        let mut m = ExecMetrics::new();
        let r = hash_group_by(&t, &[0], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(r.num_rows(), 0);
        let r = hash_group_by(&t, &[], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(r.num_rows(), 0);
    }

    #[test]
    fn reaggregation_from_intermediate_equals_direct() {
        let t = input();
        let mut m = ExecMetrics::new();
        // direct: group by b
        let direct = hash_group_by(&t, &[1], &[AggSpec::count()], &mut m).unwrap();
        // two-step: group by (a,b) then re-aggregate on b with SUM(cnt)
        let ab = hash_group_by(&t, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        let b_col = ab.schema().index_of("b").unwrap();
        let two_step = hash_group_by(&ab, &[b_col], &[AggSpec::sum_count()], &mut m).unwrap();
        let norm = |t: &Table| {
            let mut v: Vec<(Value, i64)> = (0..t.num_rows())
                .map(|r| {
                    (
                        t.value(r, 0),
                        t.value(r, t.num_columns() - 1).as_int().unwrap(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&direct), norm(&two_step));
    }

    #[test]
    fn stream_rejects_wrong_length_order() {
        let t = input();
        let mut m = ExecMetrics::new();
        let err = stream_group_by(&t, &[0], &[AggSpec::count()], &[0, 1], &mut m);
        assert!(err.is_err());
    }

    #[test]
    fn dispatcher_picks_stream_with_order() {
        let t = input();
        let mut m = ExecMetrics::new();
        let order = sort_permutation(&t, &[1]);
        let a = group_by(&t, &[1], &[AggSpec::count()], Some(&order), &mut m).unwrap();
        let b = group_by(&t, &[1], &[AggSpec::count()], None, &mut m).unwrap();
        assert_eq!(counts_by_key(&a), counts_by_key(&b));
    }

    #[test]
    fn extended_aggregates_through_group_by() {
        let t = input();
        let mut m = ExecMetrics::new();
        let r = hash_group_by(
            &t,
            &[0],
            &[
                AggSpec::count(),
                AggSpec::sum("b", "sum_b"),
                AggSpec::min("b", "min_b"),
                AggSpec::max("b", "max_b"),
            ],
            &mut m,
        )
        .unwrap();
        let row_x = (0..r.num_rows())
            .find(|&i| r.value(i, 0) == Value::str("x"))
            .unwrap();
        assert_eq!(r.value(row_x, 1), Value::Int(3)); // cnt
        assert_eq!(r.value(row_x, 2), Value::Int(11)); // sum 1+1+9
        assert_eq!(r.value(row_x, 3), Value::Int(1));
        assert_eq!(r.value(row_x, 4), Value::Int(9));
    }
}
