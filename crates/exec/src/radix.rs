//! Radix-partitioned, morsel-driven parallel group-by kernel.
//!
//! The partitioned-aggregation design (Partitioned-Cube \[16\] and the
//! modern radix-partitioning literature) applied to the hot loop of
//! every GB-MQO plan edge. Two passes over the input:
//!
//! 1. **Partition** — the input is split into contiguous per-worker
//!    chunks, processed in cache-sized morsels. Each row's group key is
//!    encoded (packed `u64`/`u128` code when
//!    [`PackedKeySpec`] applies, byte [`RowKey`] otherwise), hashed, and
//!    the `(key, row id)` pair is scattered into one of `2^k` disjoint
//!    partitions by the hash's top bits.
//! 2. **Aggregate** — each partition is aggregated independently (worker
//!    threads own disjoint partition sets): a private hash table maps
//!    key → dense gid, producing the partition's gid vector, and every
//!    accumulator then folds the whole partition in one tight columnar
//!    loop ([`Accumulator::update_batch`]) — no per-row dispatch.
//!
//! Because rows are routed by key hash, partitions hold disjoint group
//! sets; the final result is pure concatenation in partition order
//! ([`Accumulator::merge_disjoint`]) — there is no merge/re-aggregation
//! phase. `k` is chosen from the optimizer's cardinality estimate for
//! the grouping (the same number `gbmqo-cost` prices plan edges with)
//! so each partition's hash table stays cache-resident.

use crate::agg::{Accumulator, AggSpec};
use crate::cancel::CancelToken;
use crate::error::Result;
use crate::group_by::{hash_group_by, output_table, record, stream_group_by};
use crate::metrics::ExecMetrics;
use crate::parallel::parallel_hash_group_by;
use gbmqo_storage::packed::KeyCode;
use gbmqo_storage::{Column, KeyEncoder, PackedKeySpec, RowKey, Table};
use rustc_hash::{FxBuildHasher, FxHashMap};
use std::hash::{BuildHasher, Hash};
use std::time::Instant;

/// Which group-by kernel the engine uses for un-indexed groupings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GroupByStrategy {
    /// Pick per query: radix for large inputs, scalar otherwise.
    #[default]
    Auto,
    /// Always the scalar row-at-a-time kernel (hash-partitioned across
    /// threads when more than one is available).
    Scalar,
    /// Always the radix-partitioned kernel.
    Radix,
}

/// Inputs below this many rows take the scalar kernel under
/// [`GroupByStrategy::Auto`]: partitioning overhead only pays for
/// itself once the input outgrows the cache.
pub const RADIX_MIN_ROWS: usize = 8 * 1024;

/// Rows per morsel (key-code buffer reuse + cache locality); shared
/// with the shared-scan operator's batched loop.
pub(crate) const MORSEL_ROWS: usize = 16 * 1024;

/// Groups one partition's hash table should stay around for it to
/// remain cache-resident; drives partition-count selection.
const GROUPS_PER_PARTITION: u64 = 4 * 1024;

/// Hard cap on partition count (scatter state is per-worker × per-partition).
const MAX_PARTITIONS: usize = 512;

/// Pick the radix partition count `2^k` for an input of `rows` rows.
///
/// `estimated_groups` is the optimizer's cardinality estimate for this
/// grouping when one is available (plan executors thread it through
/// from `gbmqo-cost`); otherwise a rows-based guess stands in. The
/// count is at least `threads` (so pass 2 can use every worker), scales
/// with estimated groups so per-partition tables stay ~cache-sized, and
/// is capped both by `rows` (tiny inputs don't want 512 vecs) and
/// [`MAX_PARTITIONS`].
pub(crate) fn partition_count(threads: usize, rows: usize, estimated_groups: Option<u64>) -> usize {
    if rows == 0 {
        return 1;
    }
    let est = estimated_groups
        .filter(|&g| g > 0)
        .unwrap_or(rows as u64 / 16)
        .max(1);
    let by_groups = (est / GROUPS_PER_PARTITION).max(1) as usize;
    let by_rows = (rows / 4096).max(1);
    by_groups
        .max(threads)
        .min(by_rows)
        .min(MAX_PARTITIONS)
        .next_power_of_two()
}

/// Run `workers` copies of `f` (worker id as argument) on scoped
/// threads, or inline when only one worker is asked for.
fn scoped_map<T, F>(workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers).map(|w| scope.spawn(move || f(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("radix worker panicked"))
            .collect()
    })
}

/// Per-worker scatter output of pass 1: one `(key, row)` vector per
/// partition. Ordered worker-major so pass 2 can replay rows in a
/// deterministic order regardless of thread scheduling.
type Scatter<K> = Vec<Vec<(K, u32)>>;

/// What pass 2 produces for one partition.
type PartitionAgg = (Vec<u32>, Vec<Accumulator>, u64);

/// Pass 1 for packed keys: encode morsels into `K` codes and scatter.
///
/// Cancellation is polled once per morsel; a tripped token makes every
/// worker bail out early (the partial scatter is discarded by the
/// caller's [`crate::cancel::check`]).
fn scatter_packed<K: KeyCode>(
    spec: &PackedKeySpec,
    key_cols: &[&Column],
    rows: usize,
    workers: usize,
    partitions: usize,
    cancel: Option<&CancelToken>,
) -> Vec<Scatter<K>> {
    let chunk = rows.div_ceil(workers);
    scoped_map(workers, |w| {
        let lo = (w * chunk).min(rows);
        let hi = ((w + 1) * chunk).min(rows);
        let mut parts: Scatter<K> = (0..partitions)
            .map(|_| Vec::with_capacity((hi - lo) / partitions + 8))
            .collect();
        let mut codes: Vec<K> = Vec::new();
        let shift = 64 - partitions.trailing_zeros();
        let mut pos = lo;
        while pos < hi {
            if crate::cancel::tripped(cancel) {
                break;
            }
            let len = MORSEL_ROWS.min(hi - pos);
            codes.clear();
            codes.resize(len, K::default());
            spec.encode_into(key_cols, pos, &mut codes);
            if partitions == 1 {
                parts[0].extend(
                    codes
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| (c, (pos + i) as u32)),
                );
            } else {
                for (i, &c) in codes.iter().enumerate() {
                    let j = (c.partition_hash() >> shift) as usize;
                    parts[j].push((c, (pos + i) as u32));
                }
            }
            pos += len;
        }
        parts
    })
}

/// Pass 1 for the `RowKey` fallback: byte-encode each row and scatter.
fn scatter_rowkey(
    key_cols: &[&Column],
    rows: usize,
    workers: usize,
    partitions: usize,
    cancel: Option<&CancelToken>,
) -> Vec<Scatter<RowKey>> {
    let chunk = rows.div_ceil(workers);
    let hasher = FxBuildHasher;
    scoped_map(workers, |w| {
        let lo = (w * chunk).min(rows);
        let hi = ((w + 1) * chunk).min(rows);
        let mut parts: Scatter<RowKey> = (0..partitions)
            .map(|_| Vec::with_capacity((hi - lo) / partitions + 8))
            .collect();
        let mut enc = KeyEncoder::new();
        let shift = 64 - partitions.trailing_zeros();
        for row in lo..hi {
            // Morsel-granular poll (per-row would cost more than it saves).
            if row % MORSEL_ROWS == 0 && crate::cancel::tripped(cancel) {
                break;
            }
            let key = enc.encode(key_cols, row);
            let j = if partitions == 1 {
                0
            } else {
                (hasher.hash_one(&key) >> shift) as usize
            };
            parts[j].push((key, row as u32));
        }
        parts
    })
}

/// Pass 2 for one partition: build its key → gid table, compute the
/// (row, gid) vectors, and fold every accumulator over them in one
/// columnar sweep. `scatters[w][partition]` are replayed in worker
/// order, keeping group numbering deterministic.
fn aggregate_partition<K: Eq + Hash + Clone>(
    input: &Table,
    aggs: &[AggSpec],
    scatters: &[Scatter<K>],
    partition: usize,
) -> Result<PartitionAgg> {
    let total: usize = scatters.iter().map(|s| s[partition].len()).sum();
    let mut map: FxHashMap<K, u32> = FxHashMap::default();
    let mut representatives: Vec<u32> = Vec::new();
    let mut rows: Vec<u32> = Vec::with_capacity(total);
    let mut gids: Vec<u32> = Vec::with_capacity(total);
    let mut resizes = 0u64;
    let mut last_cap = map.capacity();
    for scatter in scatters {
        for (key, row) in &scatter[partition] {
            let gid = match map.get(key) {
                Some(&g) => g,
                None => {
                    let g = representatives.len() as u32;
                    map.insert(key.clone(), g);
                    representatives.push(*row);
                    if map.capacity() != last_cap {
                        resizes += 1;
                        last_cap = map.capacity();
                    }
                    g
                }
            };
            rows.push(*row);
            gids.push(gid);
        }
    }
    let mut accumulators: Vec<Accumulator> = aggs
        .iter()
        .map(|a| Accumulator::build(a, input))
        .collect::<Result<_>>()?;
    for acc in &mut accumulators {
        acc.resize_groups(representatives.len());
        acc.update_batch(input, &rows, &gids);
    }
    Ok((representatives, accumulators, resizes))
}

/// Pass 2 over all partitions (strided across `threads` workers), then
/// concatenate the per-partition results in partition order.
fn aggregate_all<K: Eq + Hash + Clone + Send + Sync>(
    input: &Table,
    aggs: &[AggSpec],
    scatters: &[Scatter<K>],
    partitions: usize,
    threads: usize,
    cancel: Option<&CancelToken>,
) -> Result<(Vec<u32>, Vec<Accumulator>, u64)> {
    let workers = threads.min(partitions).max(1);
    let per_worker: Vec<Vec<(usize, Result<PartitionAgg>)>> = scoped_map(workers, |w| {
        let mut out = Vec::new();
        let mut j = w;
        while j < partitions {
            // Cancellation boundary between partitions: a tripped token
            // surfaces as a per-partition error and stops this worker.
            if let Err(e) = crate::cancel::check(cancel) {
                out.push((j, Err(e)));
                break;
            }
            out.push((j, aggregate_partition(input, aggs, scatters, j)));
            j += workers;
        }
        out
    });

    let mut slots: Vec<Option<PartitionAgg>> = (0..partitions).map(|_| None).collect();
    let mut first_err: Option<(usize, crate::error::ExecError)> = None;
    for worker_out in per_worker {
        for (j, r) in worker_out {
            match r {
                Ok(agg) => slots[j] = Some(agg),
                // Keep the earliest partition's error for determinism.
                Err(e) => match first_err {
                    Some((i, _)) if i < j => {}
                    _ => first_err = Some((j, e)),
                },
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }

    let mut representatives: Vec<u32> = Vec::new();
    let mut accumulators: Option<Vec<Accumulator>> = None;
    let mut resizes = 0u64;
    for slot in slots {
        let (reps, accs, rz) = slot.expect("no error, so every partition aggregated");
        representatives.extend(reps);
        resizes += rz;
        match &mut accumulators {
            None => accumulators = Some(accs),
            Some(base) => {
                for (b, a) in base.iter_mut().zip(accs) {
                    b.merge_disjoint(a);
                }
            }
        }
    }
    Ok((
        representatives,
        accumulators.expect("at least one partition"),
        resizes,
    ))
}

/// Radix-partitioned parallel Group By: semantically identical to
/// [`hash_group_by`] up to row order.
///
/// `threads` bounds the workers used by *both* passes, so a plan
/// executor running several edges at once can hand each edge a slice of
/// one shared thread budget. `estimated_groups` (the optimizer's
/// cardinality estimate for this grouping, if known) sizes the
/// partition fan-out; `None` falls back to a rows-based guess.
pub fn radix_group_by(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    threads: usize,
    estimated_groups: Option<u64>,
    cancel: Option<&CancelToken>,
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    let rows = input.num_rows();
    if rows == 0 || group_cols.is_empty() {
        // Nothing to partition (and the empty grouping is one group).
        return hash_group_by(input, group_cols, aggs, metrics);
    }
    crate::cancel::check(cancel)?;
    let start = Instant::now();
    let threads = threads.max(1).min(rows);
    let partitions = partition_count(threads, rows, estimated_groups);
    let pass1_workers = if rows >= 2 * MORSEL_ROWS { threads } else { 1 };
    let key_cols: Vec<&Column> = group_cols.iter().map(|&c| input.column(c)).collect();

    let (representatives, accumulators, resizes) = match PackedKeySpec::build(&key_cols) {
        Some(spec) if spec.fits_u64() => {
            metrics.packed_key_rows += rows as u64;
            let scatters =
                scatter_packed::<u64>(&spec, &key_cols, rows, pass1_workers, partitions, cancel);
            crate::cancel::check(cancel)?;
            aggregate_all(input, aggs, &scatters, partitions, threads, cancel)?
        }
        Some(spec) => {
            metrics.packed_key_rows += rows as u64;
            let scatters =
                scatter_packed::<u128>(&spec, &key_cols, rows, pass1_workers, partitions, cancel);
            crate::cancel::check(cancel)?;
            aggregate_all(input, aggs, &scatters, partitions, threads, cancel)?
        }
        None => {
            metrics.fallback_key_rows += rows as u64;
            let scatters = scatter_rowkey(&key_cols, rows, pass1_workers, partitions, cancel);
            crate::cancel::check(cancel)?;
            aggregate_all(input, aggs, &scatters, partitions, threads, cancel)?
        }
    };
    metrics.radix_partitions += partitions as u64;
    metrics.hash_resizes += resizes;

    let result = output_table(input, group_cols, aggs, representatives, accumulators)?;
    record(metrics, input, group_cols, &result, start);
    Ok(result)
}

/// Group-by kernel dispatcher used by the engine and the batch driver.
///
/// An index-provided clustering `order` always streams (cheapest by
/// far). Otherwise `strategy` picks the kernel: `Auto` takes the radix
/// kernel once the input reaches [`RADIX_MIN_ROWS`] rows, `Radix`
/// forces it, and `Scalar` keeps the row-at-a-time kernel
/// (hash-partitioned across `threads` when several are available —
/// exactly the pre-radix behavior).
#[allow(clippy::too_many_arguments)]
pub fn group_by_with_strategy(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    order: Option<&[u32]>,
    strategy: GroupByStrategy,
    threads: usize,
    estimated_groups: Option<u64>,
    cancel: Option<&CancelToken>,
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    // Scalar paths have no internal poll points; a pre-flight check
    // still bounds over-deadline work to one query.
    crate::cancel::check(cancel)?;
    if let Some(order) = order {
        return stream_group_by(input, group_cols, aggs, order, metrics);
    }
    match strategy {
        GroupByStrategy::Scalar => {
            if threads > 1 {
                parallel_hash_group_by(input, group_cols, aggs, threads, metrics)
            } else {
                hash_group_by(input, group_cols, aggs, metrics)
            }
        }
        GroupByStrategy::Radix => radix_group_by(
            input,
            group_cols,
            aggs,
            threads,
            estimated_groups,
            cancel,
            metrics,
        ),
        GroupByStrategy::Auto => {
            if input.num_rows() >= RADIX_MIN_ROWS {
                radix_group_by(
                    input,
                    group_cols,
                    aggs,
                    threads,
                    estimated_groups,
                    cancel,
                    metrics,
                )
            } else {
                hash_group_by(input, group_cols, aggs, metrics)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn table(rows: usize, cardinality: i64) -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("v", DataType::Int64),
            Field::new("f", DataType::Float64),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for i in 0..rows as i64 {
            let row = [
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % cardinality)
                },
                Value::str(if i % 3 == 0 { "x" } else { "y" }),
                Value::Int(i),
                Value::Float((i % 5) as f64),
            ];
            tb.push_row(&row).unwrap();
        }
        tb.finish().unwrap()
    }

    fn norm(t: &Table) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = (0..t.num_rows())
            .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
            .collect();
        v.sort();
        v
    }

    fn aggs() -> Vec<AggSpec> {
        vec![
            AggSpec::count(),
            AggSpec::sum("v", "sv"),
            AggSpec::min("v", "mn"),
            AggSpec::max("s", "mx"),
        ]
    }

    #[test]
    fn radix_matches_hash_across_threads_and_partitions() {
        let t = table(10_000, 97);
        let mut m = ExecMetrics::new();
        let expected = hash_group_by(&t, &[0, 1], &aggs(), &mut m).unwrap();
        for threads in [1, 2, 4] {
            for est in [None, Some(4), Some(1_000_000)] {
                let got = radix_group_by(&t, &[0, 1], &aggs(), threads, est, None, &mut m).unwrap();
                assert_eq!(norm(&got), norm(&expected), "threads={threads} est={est:?}");
            }
        }
        assert!(m.packed_key_rows > 0);
        assert!(m.radix_partitions > 0);
    }

    #[test]
    fn float_group_key_takes_fallback_and_matches() {
        let t = table(5_000, 41);
        let mut m = ExecMetrics::new();
        let expected = hash_group_by(&t, &[3, 1], &[AggSpec::count()], &mut m).unwrap();
        let got = radix_group_by(&t, &[3, 1], &[AggSpec::count()], 4, None, None, &mut m).unwrap();
        assert_eq!(norm(&got), norm(&expected));
        assert_eq!(m.packed_key_rows, 0);
        assert_eq!(m.fallback_key_rows, 5_000);
    }

    #[test]
    fn empty_input_and_empty_grouping() {
        let t = table(0, 1);
        let mut m = ExecMetrics::new();
        let r = radix_group_by(&t, &[0], &[AggSpec::count()], 4, None, None, &mut m).unwrap();
        assert_eq!(r.num_rows(), 0);

        let t = table(100, 7);
        let r = radix_group_by(&t, &[], &[AggSpec::count()], 4, None, None, &mut m).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 0), Value::Int(100));
    }

    #[test]
    fn groups_are_not_duplicated_across_partitions() {
        let t = table(20_000, 256);
        let mut m = ExecMetrics::new();
        let r = radix_group_by(&t, &[0], &[AggSpec::count()], 4, Some(256), None, &mut m).unwrap();
        let mut keys: Vec<Value> = (0..r.num_rows()).map(|i| r.value(i, 0)).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), before, "a group appeared in two partitions");
    }

    #[test]
    fn partition_count_policy() {
        // at least `threads`, power of two
        assert!(partition_count(4, 1 << 20, Some(256)) >= 4);
        assert!(partition_count(3, 1 << 20, Some(1 << 20)).is_power_of_two());
        // scales with estimated groups, capped
        assert!(partition_count(1, 10_000_000, Some(10_000_000)) <= MAX_PARTITIONS);
        // tiny input stays small even with many threads
        assert!(partition_count(16, 4_000, None) <= 16);
        assert_eq!(partition_count(1, 0, None), 1);
    }

    #[test]
    fn strategy_dispatch_is_equivalent() {
        let t = table(9_000, 50);
        let mut m = ExecMetrics::new();
        let base = hash_group_by(&t, &[0], &aggs(), &mut m).unwrap();
        for strategy in [
            GroupByStrategy::Auto,
            GroupByStrategy::Scalar,
            GroupByStrategy::Radix,
        ] {
            let r =
                group_by_with_strategy(&t, &[0], &aggs(), None, strategy, 2, None, None, &mut m)
                    .unwrap();
            assert_eq!(norm(&r), norm(&base), "{strategy:?}");
        }
    }

    #[test]
    fn auto_small_input_stays_scalar() {
        let t = table(500, 7);
        let mut m = ExecMetrics::new();
        let _ = group_by_with_strategy(
            &t,
            &[0],
            &[AggSpec::count()],
            None,
            GroupByStrategy::Auto,
            4,
            None,
            None,
            &mut m,
        )
        .unwrap();
        assert_eq!(m.radix_partitions, 0, "small input should not radix");
    }

    #[test]
    fn tripped_token_aborts_radix_kernel() {
        let t = table(50_000, 997);
        let mut m = ExecMetrics::new();
        let token = CancelToken::new();
        token.cancel();
        let err = radix_group_by(&t, &[0, 1], &aggs(), 4, None, Some(&token), &mut m).unwrap_err();
        assert_eq!(err, crate::error::ExecError::Cancelled { timed_out: false });

        // An expired deadline reports as a timeout.
        let token = CancelToken::with_deadline(std::time::Duration::from_millis(0));
        std::thread::sleep(std::time::Duration::from_millis(1));
        let err = radix_group_by(&t, &[0, 1], &aggs(), 4, None, Some(&token), &mut m).unwrap_err();
        assert_eq!(err, crate::error::ExecError::Cancelled { timed_out: true });

        // An untripped token changes nothing.
        let token = CancelToken::new();
        let ok = radix_group_by(&t, &[0], &[AggSpec::count()], 4, None, Some(&token), &mut m);
        assert!(ok.is_ok());
    }
}
