//! Aggregate functions and their accumulators.
//!
//! The paper's core problem uses only `COUNT(*)`, re-aggregated as
//! `SUM(cnt)` when a Group By is computed from a materialized intermediate
//! (§5.2). §7.2 extends to `MIN`/`MAX`/`SUM`; all four are implemented,
//! and each re-aggregates correctly from intermediates (`SUM` of sums,
//! `MIN` of mins, `MAX` of maxes).

use crate::error::{ExecError, Result};
use gbmqo_storage::column::ColumnData;
use gbmqo_storage::{Column, ColumnBuilder, DataType, Field, Table};

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows, no input column.
    Count,
    /// `SUM(col)` — also used as `SUM(cnt)` for count re-aggregation.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

/// An aggregate specification: function, input column (by name), output
/// column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column name; `None` only for `Count`.
    pub input: Option<String>,
    /// Output column name.
    pub output: String,
}

impl AggSpec {
    /// `COUNT(*) AS cnt` — the workhorse of the paper.
    pub fn count() -> Self {
        AggSpec {
            func: AggFunc::Count,
            input: None,
            output: "cnt".to_string(),
        }
    }

    /// `SUM(cnt) AS cnt` — count re-aggregation from an intermediate.
    pub fn sum_count() -> Self {
        AggSpec {
            func: AggFunc::Sum,
            input: Some("cnt".to_string()),
            output: "cnt".to_string(),
        }
    }

    /// `SUM(input) AS output`.
    pub fn sum(input: &str, output: &str) -> Self {
        AggSpec {
            func: AggFunc::Sum,
            input: Some(input.to_string()),
            output: output.to_string(),
        }
    }

    /// `MIN(input) AS output`.
    pub fn min(input: &str, output: &str) -> Self {
        AggSpec {
            func: AggFunc::Min,
            input: Some(input.to_string()),
            output: output.to_string(),
        }
    }

    /// `MAX(input) AS output`.
    pub fn max(input: &str, output: &str) -> Self {
        AggSpec {
            func: AggFunc::Max,
            input: Some(input.to_string()),
            output: output.to_string(),
        }
    }

    /// The re-aggregation spec to use when this aggregate's output is
    /// computed from an intermediate that already holds it:
    /// COUNT → SUM(out), SUM → SUM(out), MIN → MIN(out), MAX → MAX(out).
    pub fn reaggregate(&self) -> AggSpec {
        let func = match self.func {
            AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
            AggFunc::Min => AggFunc::Min,
            AggFunc::Max => AggFunc::Max,
        };
        AggSpec {
            func,
            input: Some(self.output.clone()),
            output: self.output.clone(),
        }
    }
}

/// A running accumulator over group slots.
#[derive(Debug)]
pub(crate) enum Accumulator {
    Count {
        counts: Vec<i64>,
    },
    SumInt {
        col: usize,
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    SumFloat {
        col: usize,
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    /// MIN/MAX track the row id of the current best value; output gathers.
    Extreme {
        col: usize,
        is_min: bool,
        best_rows: Vec<Option<u32>>,
    },
}

impl Accumulator {
    /// Resolve a spec against the input table.
    pub(crate) fn build(spec: &AggSpec, input: &Table) -> Result<Self> {
        match spec.func {
            AggFunc::Count => Ok(Accumulator::Count { counts: Vec::new() }),
            AggFunc::Sum => {
                let name = spec.input.as_deref().ok_or_else(|| {
                    ExecError::Invalid("SUM requires an input column".to_string())
                })?;
                let col = input.schema().index_of(name)?;
                match input.column(col).data_type() {
                    DataType::Int64 => Ok(Accumulator::SumInt {
                        col,
                        sums: Vec::new(),
                        seen: Vec::new(),
                    }),
                    DataType::Float64 => Ok(Accumulator::SumFloat {
                        col,
                        sums: Vec::new(),
                        seen: Vec::new(),
                    }),
                    other => Err(ExecError::Invalid(format!(
                        "SUM over non-numeric column {name} ({other:?})"
                    ))),
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let name = spec.input.as_deref().ok_or_else(|| {
                    ExecError::Invalid("MIN/MAX requires an input column".to_string())
                })?;
                let col = input.schema().index_of(name)?;
                Ok(Accumulator::Extreme {
                    col,
                    is_min: spec.func == AggFunc::Min,
                    best_rows: Vec::new(),
                })
            }
        }
    }

    /// Ensure group slot `gid` exists.
    #[inline]
    pub(crate) fn ensure_group(&mut self, gid: usize) {
        match self {
            Accumulator::Count { counts } => {
                if counts.len() <= gid {
                    counts.resize(gid + 1, 0);
                }
            }
            Accumulator::SumInt { sums, seen, .. } => {
                if sums.len() <= gid {
                    sums.resize(gid + 1, 0);
                    seen.resize(gid + 1, false);
                }
            }
            Accumulator::SumFloat { sums, seen, .. } => {
                if sums.len() <= gid {
                    sums.resize(gid + 1, 0.0);
                    seen.resize(gid + 1, false);
                }
            }
            Accumulator::Extreme { best_rows, .. } => {
                if best_rows.len() <= gid {
                    best_rows.resize(gid + 1, None);
                }
            }
        }
    }

    /// Fold row `row` of `input` into group `gid`.
    #[inline]
    pub(crate) fn update(&mut self, input: &Table, gid: usize, row: usize) {
        match self {
            Accumulator::Count { counts } => counts[gid] += 1,
            Accumulator::SumInt { col, sums, seen } => {
                let c = input.column(*col);
                if !c.is_null(row) {
                    if let ColumnData::Int64(v) = c.data() {
                        // saturate instead of wrapping/panicking on overflow
                        sums[gid] = sums[gid].saturating_add(v[row]);
                        seen[gid] = true;
                    }
                }
            }
            Accumulator::SumFloat { col, sums, seen } => {
                let c = input.column(*col);
                if !c.is_null(row) {
                    if let ColumnData::Float64(v) = c.data() {
                        sums[gid] += v[row];
                        seen[gid] = true;
                    }
                }
            }
            Accumulator::Extreme {
                col,
                is_min,
                best_rows,
            } => {
                let c = input.column(*col);
                if c.is_null(row) {
                    return; // SQL MIN/MAX ignore NULLs
                }
                match best_rows[gid] {
                    None => best_rows[gid] = Some(row as u32),
                    Some(best) => {
                        let ord = c.cmp_rows(row, best as usize);
                        let better = if *is_min {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if better {
                            best_rows[gid] = Some(row as u32);
                        }
                    }
                }
            }
        }
    }

    /// Resize every group slot vector to exactly `n` groups, creating
    /// empty slots as needed. Batch kernels size the accumulator once
    /// per morsel/partition instead of calling [`Self::ensure_group`]
    /// per row.
    pub(crate) fn resize_groups(&mut self, n: usize) {
        match self {
            Accumulator::Count { counts } => counts.resize(n, 0),
            Accumulator::SumInt { sums, seen, .. } => {
                sums.resize(n, 0);
                seen.resize(n, false);
            }
            Accumulator::SumFloat { sums, seen, .. } => {
                sums.resize(n, 0.0);
                seen.resize(n, false);
            }
            Accumulator::Extreme { best_rows, .. } => best_rows.resize(n, None),
        }
    }

    /// Fold a whole morsel at once: row `rows[i]` of `input` goes to
    /// group `gids[i]`. Semantically `update` in a loop, but the
    /// aggregate kind and input column are resolved **once** and the
    /// inner loops run over typed slices — this is the vectorized path
    /// the radix kernel uses. Callers must have sized the group slots
    /// (e.g. via [`Self::resize_groups`]) to cover every gid.
    pub(crate) fn update_batch(&mut self, input: &Table, rows: &[u32], gids: &[u32]) {
        debug_assert_eq!(rows.len(), gids.len());
        match self {
            Accumulator::Count { counts } => {
                for &gid in gids {
                    counts[gid as usize] += 1;
                }
            }
            Accumulator::SumInt { col, sums, seen } => {
                let c = input.column(*col);
                if let ColumnData::Int64(v) = c.data() {
                    match c.validity() {
                        None => {
                            for (&row, &gid) in rows.iter().zip(gids.iter()) {
                                let g = gid as usize;
                                sums[g] = sums[g].saturating_add(v[row as usize]);
                                seen[g] = true;
                            }
                        }
                        Some(valid) => {
                            for (&row, &gid) in rows.iter().zip(gids.iter()) {
                                if valid.get(row as usize) {
                                    let g = gid as usize;
                                    sums[g] = sums[g].saturating_add(v[row as usize]);
                                    seen[g] = true;
                                }
                            }
                        }
                    }
                }
            }
            Accumulator::SumFloat { col, sums, seen } => {
                let c = input.column(*col);
                if let ColumnData::Float64(v) = c.data() {
                    match c.validity() {
                        None => {
                            for (&row, &gid) in rows.iter().zip(gids.iter()) {
                                let g = gid as usize;
                                sums[g] += v[row as usize];
                                seen[g] = true;
                            }
                        }
                        Some(valid) => {
                            for (&row, &gid) in rows.iter().zip(gids.iter()) {
                                if valid.get(row as usize) {
                                    let g = gid as usize;
                                    sums[g] += v[row as usize];
                                    seen[g] = true;
                                }
                            }
                        }
                    }
                }
            }
            Accumulator::Extreme {
                col,
                is_min,
                best_rows,
            } => {
                let c = input.column(*col);
                let valid = c.validity();
                let is_min = *is_min;
                // `lt(a, b)` = "a orders strictly before b"; MIN replaces
                // when the candidate is less, MAX when the incumbent is.
                macro_rules! extreme_scan {
                    ($vals:expr, $lt:expr) => {{
                        let vals = $vals;
                        let lt = $lt;
                        for (&row, &gid) in rows.iter().zip(gids.iter()) {
                            let r = row as usize;
                            if valid.is_some_and(|b| !b.get(r)) {
                                continue; // SQL MIN/MAX ignore NULLs
                            }
                            let slot = &mut best_rows[gid as usize];
                            match *slot {
                                None => *slot = Some(row),
                                Some(best) => {
                                    let b = best as usize;
                                    let replace = if is_min {
                                        lt(r, b, vals)
                                    } else {
                                        lt(b, r, vals)
                                    };
                                    if replace {
                                        *slot = Some(row);
                                    }
                                }
                            }
                        }
                    }};
                }
                match c.data() {
                    ColumnData::Int64(v) => {
                        extreme_scan!(v.as_slice(), |i: usize, j: usize, v: &[i64]| v[i] < v[j])
                    }
                    ColumnData::Date32(v) => {
                        extreme_scan!(v.as_slice(), |i: usize, j: usize, v: &[i32]| v[i] < v[j])
                    }
                    ColumnData::Float64(v) => {
                        extreme_scan!(v.as_slice(), |i: usize, j: usize, v: &[f64]| v[i]
                            .total_cmp(&v[j])
                            == std::cmp::Ordering::Less)
                    }
                    ColumnData::Utf8 { codes, dict } => {
                        extreme_scan!(codes.as_slice(), |i: usize, j: usize, v: &[u32]| {
                            v[i] != v[j] && dict.get(v[i]) < dict.get(v[j])
                        })
                    }
                }
            }
        }
    }

    /// Append `other`'s group slots after this accumulator's own.
    ///
    /// Valid only when the two accumulators hold **disjoint** group sets
    /// (e.g. different radix partitions of the same input): merging is
    /// then pure concatenation, gid `g` of `other` becoming
    /// `self.len + g`. Both sides must be exactly sized (see
    /// [`Self::resize_groups`]).
    pub(crate) fn merge_disjoint(&mut self, other: Accumulator) {
        match (self, other) {
            (Accumulator::Count { counts }, Accumulator::Count { counts: o }) => counts.extend(o),
            (
                Accumulator::SumInt { sums, seen, .. },
                Accumulator::SumInt {
                    sums: os,
                    seen: osn,
                    ..
                },
            ) => {
                sums.extend(os);
                seen.extend(osn);
            }
            (
                Accumulator::SumFloat { sums, seen, .. },
                Accumulator::SumFloat {
                    sums: os,
                    seen: osn,
                    ..
                },
            ) => {
                sums.extend(os);
                seen.extend(osn);
            }
            (Accumulator::Extreme { best_rows, .. }, Accumulator::Extreme { best_rows: o, .. }) => {
                best_rows.extend(o)
            }
            _ => unreachable!("merge_disjoint across different accumulator kinds"),
        }
    }

    /// Produce the output column (and its field) for `num_groups` groups.
    pub(crate) fn finish(
        self,
        spec: &AggSpec,
        input: &Table,
        num_groups: usize,
    ) -> (Field, Column) {
        match self {
            Accumulator::Count { mut counts } => {
                counts.resize(num_groups, 0);
                (
                    Field::not_null(&spec.output, DataType::Int64),
                    Column::from_i64(counts),
                )
            }
            Accumulator::SumInt {
                mut sums, mut seen, ..
            } => {
                sums.resize(num_groups, 0);
                seen.resize(num_groups, false);
                if seen.iter().all(|&s| s) {
                    (
                        Field::not_null(&spec.output, DataType::Int64),
                        Column::from_i64(sums),
                    )
                } else {
                    let mut b = ColumnBuilder::new(DataType::Int64);
                    for (s, ok) in sums.into_iter().zip(seen) {
                        if ok {
                            b.push_i64(s);
                        } else {
                            b.push_null();
                        }
                    }
                    (Field::new(&spec.output, DataType::Int64), b.finish())
                }
            }
            Accumulator::SumFloat {
                mut sums, mut seen, ..
            } => {
                sums.resize(num_groups, 0.0);
                seen.resize(num_groups, false);
                let mut b = ColumnBuilder::new(DataType::Float64);
                for (s, ok) in sums.into_iter().zip(seen) {
                    if ok {
                        b.push_f64(s);
                    } else {
                        b.push_null();
                    }
                }
                (Field::new(&spec.output, DataType::Float64), b.finish())
            }
            Accumulator::Extreme {
                col, mut best_rows, ..
            } => {
                best_rows.resize(num_groups, None);
                let c = input.column(col);
                let dt = c.data_type();
                let mut b = ColumnBuilder::new(dt);
                for best in best_rows {
                    match best {
                        Some(r) => {
                            let v = c.value(r as usize);
                            b.push(&v).expect("same column type");
                        }
                        None => b.push_null(),
                    }
                }
                (Field::new(&spec.output, dt), b.finish())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Schema, Value};

    fn input() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("x", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        let mut tb = gbmqo_storage::TableBuilder::new(schema);
        for (k, x, f, s) in [
            (1i64, 10i64, 1.5f64, "b"),
            (1, 20, 2.5, "a"),
            (2, 5, 0.5, "z"),
        ] {
            tb.push_row(&[Value::Int(k), Value::Int(x), Value::Float(f), Value::str(s)])
                .unwrap();
        }
        tb.finish().unwrap()
    }

    fn run(spec: AggSpec, t: &Table, groups: &[(usize, &[usize])]) -> Column {
        let mut acc = Accumulator::build(&spec, t).unwrap();
        for (gid, rows) in groups {
            acc.ensure_group(*gid);
            for &r in *rows {
                acc.update(t, *gid, r);
            }
        }
        let n = groups.len();
        acc.finish(&spec, t, n).1
    }

    #[test]
    fn count_counts() {
        let t = input();
        let c = run(AggSpec::count(), &t, &[(0, &[0, 1]), (1, &[2])]);
        assert_eq!(c.value(0), Value::Int(2));
        assert_eq!(c.value(1), Value::Int(1));
    }

    #[test]
    fn sum_int_and_float() {
        let t = input();
        let c = run(AggSpec::sum("x", "sx"), &t, &[(0, &[0, 1]), (1, &[2])]);
        assert_eq!(c.value(0), Value::Int(30));
        assert_eq!(c.value(1), Value::Int(5));
        let c = run(AggSpec::sum("f", "sf"), &t, &[(0, &[0, 1]), (1, &[2])]);
        assert_eq!(c.value(0), Value::Float(4.0));
        assert_eq!(c.value(1), Value::Float(0.5));
    }

    #[test]
    fn min_max_including_strings() {
        let t = input();
        let c = run(AggSpec::min("s", "m"), &t, &[(0, &[0, 1]), (1, &[2])]);
        assert_eq!(c.value(0), Value::str("a"));
        assert_eq!(c.value(1), Value::str("z"));
        let c = run(AggSpec::max("x", "m"), &t, &[(0, &[0, 1]), (1, &[2])]);
        assert_eq!(c.value(0), Value::Int(20));
    }

    #[test]
    fn sum_over_strings_rejected() {
        let t = input();
        assert!(Accumulator::build(&AggSpec::sum("s", "bad"), &t).is_err());
        assert!(Accumulator::build(&AggSpec::sum("missing", "bad"), &t).is_err());
    }

    #[test]
    fn null_handling() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let mut tb = gbmqo_storage::TableBuilder::new(schema);
        tb.push_row(&[Value::Null]).unwrap();
        tb.push_row(&[Value::Int(3)]).unwrap();
        let t = tb.finish().unwrap();
        // group 0: only NULL → SUM is NULL, MIN is NULL; group 1: 3
        let c = run(AggSpec::sum("x", "s"), &t, &[(0, &[0]), (1, &[1])]);
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Int(3));
        let c = run(AggSpec::min("x", "m"), &t, &[(0, &[0]), (1, &[1])]);
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Int(3));
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let mut tb = gbmqo_storage::TableBuilder::new(schema);
        tb.push_row(&[Value::Int(i64::MAX)]).unwrap();
        tb.push_row(&[Value::Int(i64::MAX)]).unwrap();
        let t = tb.finish().unwrap();
        let c = run(AggSpec::sum("x", "s"), &t, &[(0, &[0, 1])]);
        assert_eq!(c.value(0), Value::Int(i64::MAX));
    }

    #[test]
    fn reaggregation_specs() {
        assert_eq!(AggSpec::count().reaggregate(), AggSpec::sum_count());
        assert_eq!(
            AggSpec::sum("x", "sx").reaggregate(),
            AggSpec::sum("sx", "sx")
        );
        assert_eq!(AggSpec::min("x", "m").reaggregate(), AggSpec::min("m", "m"));
        assert_eq!(AggSpec::max("x", "m").reaggregate(), AggSpec::max("m", "m"));
    }
}
