//! UNION ALL with a `Grp-Tag` column.
//!
//! A GROUPING SETS query returns the union-all of its member Group Bys in
//! one result set. §5.1.1 introduces a `Grp-Tag` column "with each tuple
//! that denotes which Group By query it is a result of", used to filter
//! the relevant rows above a join. This operator builds exactly that
//! result: the schema is the union of all input schemas (missing columns
//! padded with NULL) plus the tag column.

use crate::error::{ExecError, Result};
use crate::metrics::ExecMetrics;
use gbmqo_storage::{ColumnBuilder, DataType, Field, Schema, Table};
use std::time::Instant;

/// Union-all the `(tag, table)` pairs into one tagged result.
pub fn union_all_tagged(
    inputs: &[(&str, &Table)],
    tag_col: &str,
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    let start = Instant::now();

    // Output columns: union of input column names, first-seen order.
    let mut fields: Vec<Field> = Vec::new();
    for (_, t) in inputs {
        for f in t.schema().fields() {
            match fields.iter().find(|g| g.name == f.name) {
                None => fields.push(Field::new(&f.name, f.data_type)),
                Some(g) if g.data_type != f.data_type => {
                    return Err(ExecError::Invalid(format!(
                        "column {} has conflicting types {:?} vs {:?}",
                        f.name, g.data_type, f.data_type
                    )))
                }
                Some(_) => {}
            }
        }
    }
    if fields.iter().any(|f| f.name == tag_col) {
        return Err(ExecError::Invalid(format!(
            "tag column {tag_col} collides with an input column"
        )));
    }

    let total_rows: usize = inputs.iter().map(|(_, t)| t.num_rows()).sum();
    let mut builders: Vec<ColumnBuilder> = fields
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type, total_rows))
        .collect();
    let mut tag_builder = ColumnBuilder::with_capacity(DataType::Utf8, total_rows);

    for (tag, t) in inputs {
        let mapping: Vec<Option<usize>> = fields
            .iter()
            .map(|f| t.schema().index_of(&f.name).ok())
            .collect();
        for row in 0..t.num_rows() {
            for (b, src) in builders.iter_mut().zip(&mapping) {
                match src {
                    Some(c) => b.push(&t.value(row, *c))?,
                    None => b.push_null(),
                }
            }
            tag_builder.push_str(tag);
        }
    }

    fields.push(Field::not_null(tag_col, DataType::Utf8));
    let mut columns: Vec<_> = builders.into_iter().map(ColumnBuilder::finish).collect();
    columns.push(tag_builder.finish());
    let out = Table::new(Schema::new(fields)?, columns)?;
    metrics.rows_output += out.num_rows() as u64;
    metrics.add_elapsed(start.elapsed());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{TableBuilder, Value};

    fn one_col(name: &str, vals: &[i64]) -> Table {
        let schema = Schema::new(vec![Field::new(name, DataType::Int64)]).unwrap();
        let mut tb = TableBuilder::new(schema);
        for &v in vals {
            tb.push_row(&[Value::Int(v)]).unwrap();
        }
        tb.finish().unwrap()
    }

    #[test]
    fn union_pads_missing_columns_with_null() {
        let a = one_col("a", &[1, 2]);
        let b = one_col("b", &[9]);
        let mut m = ExecMetrics::new();
        let u = union_all_tagged(&[("ga", &a), ("gb", &b)], "grp_tag", &mut m).unwrap();
        assert_eq!(u.num_rows(), 3);
        assert_eq!(u.schema().names(), vec!["a", "b", "grp_tag"]);
        assert_eq!(u.value(0, 0), Value::Int(1));
        assert_eq!(u.value(0, 1), Value::Null);
        assert_eq!(u.value(2, 0), Value::Null);
        assert_eq!(u.value(2, 1), Value::Int(9));
        assert_eq!(u.value(2, 2), Value::str("gb"));
    }

    #[test]
    fn shared_columns_align() {
        let a = one_col("k", &[1]);
        let b = one_col("k", &[2]);
        let mut m = ExecMetrics::new();
        let u = union_all_tagged(&[("x", &a), ("y", &b)], "tag", &mut m).unwrap();
        assert_eq!(u.num_columns(), 2);
        assert_eq!(u.value(1, 0), Value::Int(2));
        assert_eq!(u.value(1, 1), Value::str("y"));
    }

    #[test]
    fn conflicting_types_rejected() {
        let a = one_col("k", &[1]);
        let schema = Schema::new(vec![Field::new("k", DataType::Utf8)]).unwrap();
        let mut tb = TableBuilder::new(schema);
        tb.push_row(&[Value::str("s")]).unwrap();
        let b = tb.finish().unwrap();
        let mut m = ExecMetrics::new();
        assert!(union_all_tagged(&[("x", &a), ("y", &b)], "tag", &mut m).is_err());
    }

    #[test]
    fn tag_collision_rejected() {
        let a = one_col("tag", &[1]);
        let mut m = ExecMetrics::new();
        assert!(union_all_tagged(&[("x", &a)], "tag", &mut m).is_err());
    }

    #[test]
    fn empty_inputs() {
        let mut m = ExecMetrics::new();
        let u = union_all_tagged(&[], "tag", &mut m).unwrap();
        assert_eq!(u.num_rows(), 0);
        assert_eq!(u.schema().names(), vec!["tag"]);
    }
}
