//! ROLLUP: the hierarchy of Group Bys `(c1..ck), (c1..ck-1), …, ()`.
//!
//! §7.1 of the paper considers replacing a merged node with a ROLLUP query.
//! Each level is computed by re-aggregating the previous (finer) level, so
//! the whole hierarchy costs little more than the finest Group By.

use crate::agg::AggSpec;
use crate::error::Result;
use crate::group_by::hash_group_by;
use crate::metrics::ExecMetrics;
use gbmqo_storage::Table;

/// Compute `ROLLUP(cols)` over `input`.
///
/// Returns one table per level, finest first: index 0 groups by all of
/// `cols`, index `k` by `cols[..cols.len()-k]`, and the last entry is the
/// grand total (empty grouping). Aggregates in levels below the finest are
/// the re-aggregations of `aggs`.
///
/// Follows this engine's GROUP BY convention that an empty input produces
/// empty results at every level — including the grand total, where SQL's
/// `ROLLUP` would emit a single `COUNT(*) = 0` row.
pub fn rollup(
    input: &Table,
    cols: &[usize],
    aggs: &[AggSpec],
    metrics: &mut ExecMetrics,
) -> Result<Vec<Table>> {
    let mut levels = Vec::with_capacity(cols.len() + 1);
    let finest = hash_group_by(input, cols, aggs, metrics)?;
    levels.push(finest);

    let reaggs: Vec<AggSpec> = aggs.iter().map(AggSpec::reaggregate).collect();
    for level in (0..cols.len()).rev() {
        let prev = levels.last().expect("at least the finest level");
        // The previous level's schema lays out group columns first, in the
        // order of `cols`; the next level keeps the first `level` of them.
        let keep: Vec<usize> = (0..level).collect();
        let next = hash_group_by(prev, &keep, &reaggs, metrics)?;
        levels.push(next);
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn input() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for (a, b) in [(1, 1), (1, 2), (2, 1), (1, 1)] {
            tb.push_row(&[Value::Int(a), Value::Int(b)]).unwrap();
        }
        tb.finish().unwrap()
    }

    #[test]
    fn rollup_levels_have_expected_shapes() {
        let t = input();
        let mut m = ExecMetrics::new();
        let levels = rollup(&t, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].num_rows(), 3); // (1,1),(1,2),(2,1)
        assert_eq!(levels[1].num_rows(), 2); // a=1, a=2
        assert_eq!(levels[2].num_rows(), 1); // grand total
        assert_eq!(levels[2].value(0, 0), Value::Int(4));
    }

    #[test]
    fn rollup_counts_match_direct_group_bys() {
        let t = input();
        let mut m = ExecMetrics::new();
        let levels = rollup(&t, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        let direct_a = hash_group_by(&t, &[0], &[AggSpec::count()], &mut m).unwrap();
        let norm = |t: &Table| {
            let mut v: Vec<(Value, i64)> = (0..t.num_rows())
                .map(|r| {
                    (
                        t.value(r, 0),
                        t.value(r, t.num_columns() - 1).as_int().unwrap(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&levels[1]), norm(&direct_a));
    }

    #[test]
    fn rollup_single_column() {
        let t = input();
        let mut m = ExecMetrics::new();
        let levels = rollup(&t, &[1], &[AggSpec::count()], &mut m).unwrap();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].num_rows(), 2);
        assert_eq!(levels[1].num_rows(), 1);
    }
}
