//! Execution metrics collected by operators and the engine.

use std::ops::AddAssign;
use std::time::Duration;

/// Counters describing the work one or more operators performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Input rows read by scans.
    pub rows_scanned: u64,
    /// Rows produced.
    pub rows_output: u64,
    /// Approximate bytes read. This aggregates heterogeneous layers
    /// (key-column bytes in operators, full-width bytes under row-store
    /// emulation), so treat it as an order-of-magnitude indicator rather
    /// than an exact byte count.
    pub bytes_scanned: u64,
    /// Queries (operator pipelines) executed.
    pub queries_executed: u64,
    /// Temp tables materialized.
    pub tables_materialized: u64,
    /// Wall time spent in operators, nanoseconds.
    pub elapsed_nanos: u64,
    /// Radix partitions aggregated by the partitioned group-by kernel
    /// (cumulative across kernel invocations; 0 when only scalar paths ran).
    pub radix_partitions: u64,
    /// Rows whose group key took the packed `u64`/`u128` fast path.
    pub packed_key_rows: u64,
    /// Rows whose group key fell back to the byte `RowKey` encoding
    /// (wide, too-many-distinct or `Float64` group columns).
    pub fallback_key_rows: u64,
    /// Group hash-table growths (rehash + move) observed by kernels.
    pub hash_resizes: u64,
    /// Workload requests answered from the materialized aggregate
    /// cache (a covering superset already held, no base-table scan).
    pub matcache_hits: u64,
    /// Bytes currently resident in the materialized aggregate cache
    /// (a gauge snapshot, not cumulative — `+=` keeps the larger side).
    pub matcache_bytes: u64,
    /// Cached aggregates evicted to stay under the cache byte budget.
    pub matcache_evictions: u64,
    /// Estimated base-table rows whose scan was avoided by cache hits.
    pub matcache_rows_saved: u64,
    /// Shards the executed plan fanned out across (a gauge: `+=` keeps
    /// the larger side; 0 when the base table is unsharded).
    pub shards: u64,
    /// Base rows read through per-shard scans (summed across shards).
    pub shard_rows: u64,
    /// Rows fed through final cross-shard re-aggregation merges. Stays 0
    /// for merge-elided deliveries (grouping covers the shard key) and
    /// for concatenation-only merges.
    pub merge_rows: u64,
    /// Shard skew: largest shard's row share as a percentage of the
    /// mean shard size (100 = perfectly even; a gauge, `+=` keeps max).
    pub shard_skew: u64,
    /// Appended rows aggregated through delta scans (ingest pipeline).
    pub delta_rows: u64,
    /// Stale cached aggregates brought current by merging a delta
    /// aggregate instead of recomputing from the base table.
    pub delta_refreshes: u64,
    /// Stale cached aggregates dropped instead of refreshed (delta chain
    /// compacted away, chain too large a fraction of the base, or the
    /// refresh policy disabled).
    pub delta_fallbacks: u64,
    /// Base rows a delta refresh did *not* rescan: the rows already
    /// summarized by the stale entry (base size minus delta size).
    pub refresh_rows_saved: u64,
    /// Appends whose delta pushed shard skew past the resharding
    /// threshold — the signal that `Session::reshard` is worth calling.
    pub reshard_hints: u64,
    /// Plan nodes whose estimated and observed group counts were both
    /// available, i.e. nodes contributing to the q-error fields below.
    pub qerror_nodes: u64,
    /// Sum of per-node q-errors ×100 (q-error = max(est/obs, obs/est),
    /// so 100 per node means exact). Divide by `qerror_nodes` for the
    /// mean q-error of the run.
    pub qerror_sum_x100: u64,
    /// Worst per-node q-error ×100 seen (a gauge: `+=` keeps max).
    pub qerror_max_x100: u64,
    /// Per-plan-node cardinality observations fed to the feedback store.
    pub feedback_observations: u64,
    /// Cached plans invalidated for re-optimization because corrected
    /// estimates shifted their cost past the adaptive threshold.
    pub plan_reopts: u64,
    /// Delta refreshes absorbed by online distinct sketches (each one a
    /// full re-sample avoided).
    pub sketch_refreshes: u64,
}

impl ExecMetrics {
    /// Zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Elapsed wall time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos)
    }

    /// Record elapsed time.
    pub fn add_elapsed(&mut self, d: Duration) {
        self.elapsed_nanos += d.as_nanos() as u64;
    }

    /// Scanned rows per second of operator wall time (0 if no time was
    /// recorded). A kernel-level throughput figure for profiling output.
    pub fn rows_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.rows_scanned as f64 / (self.elapsed_nanos as f64 / 1e9)
        }
    }

    /// Every counter as `(name, value)` pairs, in declaration order.
    /// The single source of truth for machine-readable output: both
    /// [`ExecMetrics::to_json`] and the server's Stats response are
    /// built from this list, so the two stay field-for-field identical.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rows_scanned", self.rows_scanned),
            ("rows_output", self.rows_output),
            ("bytes_scanned", self.bytes_scanned),
            ("queries_executed", self.queries_executed),
            ("tables_materialized", self.tables_materialized),
            ("elapsed_nanos", self.elapsed_nanos),
            ("radix_partitions", self.radix_partitions),
            ("packed_key_rows", self.packed_key_rows),
            ("fallback_key_rows", self.fallback_key_rows),
            ("hash_resizes", self.hash_resizes),
            ("matcache_hits", self.matcache_hits),
            ("matcache_bytes", self.matcache_bytes),
            ("matcache_evictions", self.matcache_evictions),
            ("matcache_rows_saved", self.matcache_rows_saved),
            ("shards", self.shards),
            ("shard_rows", self.shard_rows),
            ("merge_rows", self.merge_rows),
            ("shard_skew", self.shard_skew),
            ("delta_rows", self.delta_rows),
            ("delta_refreshes", self.delta_refreshes),
            ("delta_fallbacks", self.delta_fallbacks),
            ("refresh_rows_saved", self.refresh_rows_saved),
            ("reshard_hints", self.reshard_hints),
            ("qerror_nodes", self.qerror_nodes),
            ("qerror_sum_x100", self.qerror_sum_x100),
            ("qerror_max_x100", self.qerror_max_x100),
            ("feedback_observations", self.feedback_observations),
            ("plan_reopts", self.plan_reopts),
            ("sketch_refreshes", self.sketch_refreshes),
        ]
    }

    /// One flat JSON object of all counters (no trailing newline).
    /// All values are unsigned integers, so no escaping is needed.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields()
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Parse a JSON object produced by [`ExecMetrics::to_json`] (or any
    /// superset object — unknown keys are ignored). Used by the wire
    /// protocol's Stats decoding so client and server share one format.
    pub fn from_json(json: &str) -> Option<Self> {
        let inner = json.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut m = ExecMetrics::new();
        for pair in inner.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value: u64 = value.trim().parse().ok()?;
            match key {
                "rows_scanned" => m.rows_scanned = value,
                "rows_output" => m.rows_output = value,
                "bytes_scanned" => m.bytes_scanned = value,
                "queries_executed" => m.queries_executed = value,
                "tables_materialized" => m.tables_materialized = value,
                "elapsed_nanos" => m.elapsed_nanos = value,
                "radix_partitions" => m.radix_partitions = value,
                "packed_key_rows" => m.packed_key_rows = value,
                "fallback_key_rows" => m.fallback_key_rows = value,
                "hash_resizes" => m.hash_resizes = value,
                "matcache_hits" => m.matcache_hits = value,
                "matcache_bytes" => m.matcache_bytes = value,
                "matcache_evictions" => m.matcache_evictions = value,
                "matcache_rows_saved" => m.matcache_rows_saved = value,
                "shards" => m.shards = value,
                "shard_rows" => m.shard_rows = value,
                "merge_rows" => m.merge_rows = value,
                "shard_skew" => m.shard_skew = value,
                "delta_rows" => m.delta_rows = value,
                "delta_refreshes" => m.delta_refreshes = value,
                "delta_fallbacks" => m.delta_fallbacks = value,
                "refresh_rows_saved" => m.refresh_rows_saved = value,
                "reshard_hints" => m.reshard_hints = value,
                "qerror_nodes" => m.qerror_nodes = value,
                "qerror_sum_x100" => m.qerror_sum_x100 = value,
                "qerror_max_x100" => m.qerror_max_x100 = value,
                "feedback_observations" => m.feedback_observations = value,
                "plan_reopts" => m.plan_reopts = value,
                "sketch_refreshes" => m.sketch_refreshes = value,
                _ => {}
            }
        }
        Some(m)
    }
}

impl AddAssign for ExecMetrics {
    fn add_assign(&mut self, rhs: Self) {
        self.rows_scanned += rhs.rows_scanned;
        self.rows_output += rhs.rows_output;
        self.bytes_scanned += rhs.bytes_scanned;
        self.queries_executed += rhs.queries_executed;
        self.tables_materialized += rhs.tables_materialized;
        self.elapsed_nanos += rhs.elapsed_nanos;
        self.radix_partitions += rhs.radix_partitions;
        self.packed_key_rows += rhs.packed_key_rows;
        self.fallback_key_rows += rhs.fallback_key_rows;
        self.hash_resizes += rhs.hash_resizes;
        self.matcache_hits += rhs.matcache_hits;
        // Resident-bytes is a gauge: accumulating totals keeps the
        // most recent (larger-scope) snapshot rather than a sum.
        self.matcache_bytes = self.matcache_bytes.max(rhs.matcache_bytes);
        self.matcache_evictions += rhs.matcache_evictions;
        self.matcache_rows_saved += rhs.matcache_rows_saved;
        // Shard fan-out and skew are gauges like matcache_bytes.
        self.shards = self.shards.max(rhs.shards);
        self.shard_rows += rhs.shard_rows;
        self.merge_rows += rhs.merge_rows;
        self.shard_skew = self.shard_skew.max(rhs.shard_skew);
        self.delta_rows += rhs.delta_rows;
        self.delta_refreshes += rhs.delta_refreshes;
        self.delta_fallbacks += rhs.delta_fallbacks;
        self.refresh_rows_saved += rhs.refresh_rows_saved;
        self.reshard_hints += rhs.reshard_hints;
        self.qerror_nodes += rhs.qerror_nodes;
        self.qerror_sum_x100 += rhs.qerror_sum_x100;
        // Worst-case q-error is a gauge like shard_skew.
        self.qerror_max_x100 = self.qerror_max_x100.max(rhs.qerror_max_x100);
        self.feedback_observations += rhs.feedback_observations;
        self.plan_reopts += rhs.plan_reopts;
        self.sketch_refreshes += rhs.sketch_refreshes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = ExecMetrics {
            rows_scanned: 10,
            rows_output: 2,
            bytes_scanned: 80,
            queries_executed: 1,
            tables_materialized: 1,
            elapsed_nanos: 100,
            radix_partitions: 4,
            packed_key_rows: 8,
            fallback_key_rows: 2,
            hash_resizes: 1,
            matcache_hits: 1,
            matcache_bytes: 100,
            matcache_evictions: 1,
            matcache_rows_saved: 50,
            shards: 4,
            shard_rows: 40,
            merge_rows: 10,
            shard_skew: 110,
            delta_rows: 20,
            delta_refreshes: 2,
            delta_fallbacks: 1,
            refresh_rows_saved: 200,
            reshard_hints: 1,
            qerror_nodes: 3,
            qerror_sum_x100: 450,
            qerror_max_x100: 220,
            feedback_observations: 3,
            plan_reopts: 1,
            sketch_refreshes: 2,
        };
        let b = ExecMetrics {
            rows_scanned: 5,
            rows_output: 1,
            bytes_scanned: 40,
            queries_executed: 1,
            tables_materialized: 0,
            elapsed_nanos: 50,
            radix_partitions: 2,
            packed_key_rows: 5,
            fallback_key_rows: 0,
            hash_resizes: 3,
            matcache_hits: 2,
            matcache_bytes: 60,
            matcache_evictions: 0,
            matcache_rows_saved: 25,
            shards: 2,
            shard_rows: 15,
            merge_rows: 5,
            shard_skew: 130,
            delta_rows: 5,
            delta_refreshes: 1,
            delta_fallbacks: 2,
            refresh_rows_saved: 100,
            reshard_hints: 0,
            qerror_nodes: 2,
            qerror_sum_x100: 210,
            qerror_max_x100: 110,
            feedback_observations: 2,
            plan_reopts: 0,
            sketch_refreshes: 1,
        };
        a += b;
        assert_eq!(a.rows_scanned, 15);
        assert_eq!(a.rows_output, 3);
        assert_eq!(a.bytes_scanned, 120);
        assert_eq!(a.queries_executed, 2);
        assert_eq!(a.tables_materialized, 1);
        assert_eq!(a.elapsed(), Duration::from_nanos(150));
        assert_eq!(a.radix_partitions, 6);
        assert_eq!(a.packed_key_rows, 13);
        assert_eq!(a.fallback_key_rows, 2);
        assert_eq!(a.hash_resizes, 4);
        assert_eq!(a.matcache_hits, 3);
        assert_eq!(a.matcache_bytes, 100, "bytes is a gauge: max, not sum");
        assert_eq!(a.matcache_evictions, 1);
        assert_eq!(a.matcache_rows_saved, 75);
        assert_eq!(a.shards, 4, "shards is a gauge: max, not sum");
        assert_eq!(a.shard_rows, 55);
        assert_eq!(a.merge_rows, 15);
        assert_eq!(a.shard_skew, 130, "skew is a gauge: max, not sum");
        assert_eq!(a.delta_rows, 25);
        assert_eq!(a.delta_refreshes, 3);
        assert_eq!(a.delta_fallbacks, 3);
        assert_eq!(a.refresh_rows_saved, 300);
        assert_eq!(a.reshard_hints, 1);
        assert_eq!(a.qerror_nodes, 5);
        assert_eq!(a.qerror_sum_x100, 660);
        assert_eq!(a.qerror_max_x100, 220, "worst q-error is a gauge: max");
        assert_eq!(a.feedback_observations, 5);
        assert_eq!(a.plan_reopts, 1);
        assert_eq!(a.sketch_refreshes, 3);
    }

    #[test]
    fn rows_per_sec() {
        let mut m = ExecMetrics::new();
        assert_eq!(m.rows_per_sec(), 0.0);
        m.rows_scanned = 1_000;
        m.elapsed_nanos = 500_000_000; // 0.5 s
        assert!((m.rows_per_sec() - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn json_roundtrip_covers_every_field() {
        let m = ExecMetrics {
            rows_scanned: 1,
            rows_output: 2,
            bytes_scanned: 3,
            queries_executed: 4,
            tables_materialized: 5,
            elapsed_nanos: 6,
            radix_partitions: 7,
            packed_key_rows: 8,
            fallback_key_rows: 9,
            hash_resizes: 10,
            matcache_hits: 11,
            matcache_bytes: 12,
            matcache_evictions: 13,
            matcache_rows_saved: 14,
            shards: 15,
            shard_rows: 16,
            merge_rows: 17,
            shard_skew: 18,
            delta_rows: 19,
            delta_refreshes: 20,
            delta_fallbacks: 21,
            refresh_rows_saved: 22,
            reshard_hints: 23,
            qerror_nodes: 24,
            qerror_sum_x100: 25,
            qerror_max_x100: 26,
            feedback_observations: 27,
            plan_reopts: 28,
            sketch_refreshes: 29,
        };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"radix_partitions\":7"));
        // fields() enumerates every counter exactly once
        assert_eq!(m.fields().len(), 29);
        assert!(json.contains("\"qerror_max_x100\":26"));
        assert!(json.contains("\"delta_refreshes\":20"));
        assert!(json.contains("\"shard_rows\":16"));
        assert!(json.contains("\"matcache_hits\":11"));
        let back = ExecMetrics::from_json(&json).unwrap();
        assert_eq!(back, m);
        // unknown keys are tolerated, garbage is not
        assert!(ExecMetrics::from_json("{\"rows_scanned\":1,\"new_counter\":9}").is_some());
        assert!(ExecMetrics::from_json("not json").is_none());
    }

    #[test]
    fn add_elapsed() {
        let mut m = ExecMetrics::new();
        m.add_elapsed(Duration::from_micros(3));
        m.add_elapsed(Duration::from_micros(2));
        assert_eq!(m.elapsed(), Duration::from_micros(5));
    }
}
