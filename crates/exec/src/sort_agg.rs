//! Sort-based aggregation: sort, then stream.
//!
//! The classic alternative to hash aggregation (the paper's plans can use
//! "the standard Sort and Hash operators", §5.1). Sorting costs
//! `O(n log n)` but the subsequent aggregation is a single streaming pass
//! with no hash table, and the output comes out *ordered* — which is what
//! shared-sort GROUPING SETS implementations exploit for subsumed sets.

use crate::agg::AggSpec;
use crate::error::Result;
use crate::group_by::stream_group_by;
use crate::metrics::ExecMetrics;
use gbmqo_storage::{sort_permutation, Table};

/// Group `input` by `group_cols` using sort + streaming aggregation.
///
/// Produces the same multiset of rows as [`crate::hash_group_by`], but
/// ordered ascending by the grouping columns (NULLS FIRST).
pub fn sort_group_by(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    metrics: &mut ExecMetrics,
) -> Result<Table> {
    let order = sort_permutation(input, group_cols);
    stream_group_by(input, group_cols, aggs, &order, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_by::hash_group_by;
    use gbmqo_storage::{DataType, Field, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ])
        .unwrap();
        let mut tb = gbmqo_storage::TableBuilder::new(schema);
        for i in (0..100i64).rev() {
            tb.push_row(&[
                Value::Int(i % 7),
                Value::str(if i % 2 == 0 { "x" } else { "y" }),
            ])
            .unwrap();
        }
        tb.finish().unwrap()
    }

    #[test]
    fn matches_hash_group_by() {
        let t = table();
        let mut m = ExecMetrics::new();
        let sorted = sort_group_by(&t, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        let hashed = hash_group_by(&t, &[0, 1], &[AggSpec::count()], &mut m).unwrap();
        let norm = |t: &Table| {
            let mut v: Vec<(Value, Value, i64)> = (0..t.num_rows())
                .map(|r| {
                    (
                        t.value(r, 0),
                        t.value(r, 1),
                        t.value(r, 2).as_int().unwrap(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&sorted), norm(&hashed));
    }

    #[test]
    fn output_is_ordered() {
        let t = table();
        let mut m = ExecMetrics::new();
        let sorted = sort_group_by(&t, &[0], &[AggSpec::count()], &mut m).unwrap();
        for w in 0..sorted.num_rows() - 1 {
            assert!(sorted.value(w, 0) <= sorted.value(w + 1, 0));
        }
    }
}
