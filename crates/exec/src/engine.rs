//! The engine: runs named Group By queries against a catalog, the way the
//! paper's client-side implementation (§5.2) issues
//! `SELECT … INTO tmp FROM … GROUP BY …` statements against a DBMS.

use crate::agg::AggSpec;
use crate::cancel::CancelToken;
use crate::error::Result;
use crate::metrics::ExecMetrics;
use crate::radix::{group_by_with_strategy, GroupByStrategy};
use gbmqo_storage::{Catalog, Table};
use std::time::Instant;

/// A Group By query over a catalog table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupByQuery {
    /// Input table name.
    pub input: String,
    /// Grouping column names.
    pub group_cols: Vec<String>,
    /// Aggregates to compute.
    pub aggs: Vec<AggSpec>,
    /// `Some(name)`: materialize the result as temp table `name`
    /// (`SELECT … INTO name`); `None`: return the rows to the client.
    pub into: Option<String>,
    /// Optimizer cardinality estimate for this grouping (distinct
    /// groups), when the planner has one. Kernels use it to size radix
    /// partition fan-out; `None` falls back to rows-based heuristics.
    pub estimated_groups: Option<u64>,
}

impl GroupByQuery {
    /// `SELECT cols, COUNT(*) FROM input GROUP BY cols` returned to client.
    pub fn count_star(input: &str, group_cols: &[&str]) -> Self {
        GroupByQuery {
            input: input.to_string(),
            group_cols: group_cols.iter().map(|s| s.to_string()).collect(),
            aggs: vec![AggSpec::count()],
            into: None,
            estimated_groups: None,
        }
    }

    /// Materialize into `name`.
    pub fn into_temp(mut self, name: &str) -> Self {
        self.into = Some(name.to_string());
        self
    }

    /// Attach the optimizer's distinct-group estimate for this grouping.
    pub fn with_estimated_groups(mut self, groups: u64) -> Self {
        self.estimated_groups = Some(groups);
        self
    }
}

/// Executes queries against a [`Catalog`], accumulating [`ExecMetrics`].
#[derive(Debug)]
pub struct Engine {
    catalog: Catalog,
    metrics: ExecMetrics,
    io_ns_per_byte: f64,
    strategy: GroupByStrategy,
    kernel_threads: usize,
    cancel: Option<CancelToken>,
}

impl Engine {
    /// Wrap a catalog.
    pub fn new(catalog: Catalog) -> Self {
        Engine {
            catalog,
            metrics: ExecMetrics::new(),
            io_ns_per_byte: 0.0,
            strategy: GroupByStrategy::default(),
            kernel_threads: 1,
            cancel: None,
        }
    }

    /// Attach a [`CancelToken`] that every subsequent query polls at its
    /// morsel boundaries (and the plan executors poll between steps).
    /// `None` detaches — queries run to completion again. Callers running
    /// per-request deadlines attach a fresh token per request.
    pub fn set_cancel_token(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
    }

    /// The currently attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Fail fast if the attached token (if any) has tripped. Plan
    /// executors call this between steps/waves so cancellation is
    /// observed even when individual queries are too small to poll.
    pub fn check_cancelled(&self) -> Result<()> {
        crate::cancel::check(self.cancel.as_ref())
    }

    /// Choose the group-by kernel for un-indexed groupings (default
    /// [`GroupByStrategy::Auto`]).
    pub fn set_group_by_strategy(&mut self, strategy: GroupByStrategy) {
        self.strategy = strategy;
    }

    /// The configured group-by kernel strategy.
    pub fn group_by_strategy(&self) -> GroupByStrategy {
        self.strategy
    }

    /// Threads a *single* query run through [`Engine::run_group_by`] may
    /// use inside its kernel (default 1 — fully serial). Batch execution
    /// via [`Engine::run_group_bys_parallel`] manages its own budget and
    /// ignores this.
    pub fn set_kernel_threads(&mut self, threads: usize) {
        self.kernel_threads = threads.max(1);
    }

    /// The per-query kernel thread budget.
    pub fn kernel_threads(&self) -> usize {
        self.kernel_threads
    }

    /// Configure disk-based row-store emulation (see [`crate::rowstore`]):
    /// when `ns_per_byte > 0`, un-indexed scans read the full width of
    /// their input table and pay a simulated transfer time of
    /// `bytes × ns_per_byte`; index-served scans pay I/O only for the key
    /// columns; materializing a temp table pays write I/O. `0.0` (the
    /// default) disables the emulation.
    pub fn set_io_ns_per_byte(&mut self, ns_per_byte: f64) {
        self.io_ns_per_byte = ns_per_byte;
    }

    /// Current simulated I/O cost (0 = off).
    pub fn io_ns_per_byte(&self) -> f64 {
        self.io_ns_per_byte
    }

    /// Borrow the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutably borrow the catalog (index management, table registration).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> ExecMetrics {
        self.metrics
    }

    /// Zero the metrics (and the peak-storage watermark).
    pub fn reset_metrics(&mut self) {
        self.metrics = ExecMetrics::new();
        self.catalog.reset_peak();
    }

    /// Run one Group By query. The result is returned either way; when
    /// `q.into` is set it is also materialized as a temp table.
    ///
    /// If the input table has an index whose order serves the grouping,
    /// the engine streams over it instead of hashing — the executor-level
    /// counterpart of the paper's observation that its plans "automatically
    /// benefit from the addition of indices" (§6.9).
    pub fn run_group_by(&mut self, q: &GroupByQuery) -> Result<Table> {
        let start = Instant::now();
        let entry = self.catalog.get(&q.input)?;
        let table = &entry.table;
        let cols: Vec<usize> = q
            .group_cols
            .iter()
            .map(|n| table.schema().index_of(n))
            .collect::<gbmqo_storage::Result<_>>()?;

        let order = self
            .catalog
            .index_serving(&q.input, &cols)
            .map(|idx| idx.perm.clone());

        let result = {
            let table = self.catalog.table(&q.input)?;
            // Row-store emulation: an index-order scan pays I/O only for
            // its key columns; everything else reads (and waits out) the
            // full width of the input.
            if self.io_ns_per_byte > 0.0 {
                let bytes = match self.catalog.index_serving(&q.input, &cols) {
                    Some(idx) => idx
                        .key_cols
                        .iter()
                        .map(|&c| table.column(c).byte_size() as u64)
                        .sum(),
                    None => {
                        std::hint::black_box(crate::rowstore::full_scan_tax(table));
                        table.byte_size() as u64
                    }
                };
                crate::rowstore::simulated_io_wait(bytes, self.io_ns_per_byte);
                self.metrics.bytes_scanned += bytes;
            }
            group_by_with_strategy(
                table,
                &cols,
                &q.aggs,
                order.as_deref(),
                self.strategy,
                self.kernel_threads,
                q.estimated_groups,
                self.cancel.as_ref(),
                &mut self.metrics,
            )?
        };
        self.metrics.queries_executed += 1;

        if let Some(name) = &q.into {
            if self.io_ns_per_byte > 0.0 {
                // Write I/O for the temp table.
                crate::rowstore::simulated_io_wait(result.byte_size() as u64, self.io_ns_per_byte);
            }
            self.catalog.create_temp(name.clone(), result.clone())?;
            self.metrics.tables_materialized += 1;
        }
        self.metrics.add_elapsed(start.elapsed());
        Ok(result)
    }

    /// Run one Group By over only rows `[start, start + rows)` of the
    /// input — the delta-scan node of the ingest pipeline. It feeds the
    /// same radix/scalar kernels as [`Engine::run_group_by`], but over a
    /// cheap O(rows) slice of the table, so refreshing a cached
    /// aggregate after an append costs work proportional to the delta
    /// rather than the base. Indexes are ignored (they describe the
    /// pre-append ordering) and under row-store emulation only the
    /// slice's bytes are charged.
    pub fn run_group_by_range(
        &mut self,
        q: &GroupByQuery,
        start: usize,
        rows: usize,
    ) -> Result<Table> {
        let t0 = Instant::now();
        let table = self.catalog.table(&q.input)?;
        let cols: Vec<usize> = q
            .group_cols
            .iter()
            .map(|n| table.schema().index_of(n))
            .collect::<gbmqo_storage::Result<_>>()?;
        let slice = table.slice_rows(start, rows)?;
        if self.io_ns_per_byte > 0.0 {
            let bytes = slice.byte_size() as u64;
            crate::rowstore::simulated_io_wait(bytes, self.io_ns_per_byte);
            self.metrics.bytes_scanned += bytes;
        }
        let result = group_by_with_strategy(
            &slice,
            &cols,
            &q.aggs,
            None,
            self.strategy,
            self.kernel_threads,
            q.estimated_groups,
            self.cancel.as_ref(),
            &mut self.metrics,
        )?;
        self.metrics.queries_executed += 1;
        self.metrics.delta_rows += rows as u64;
        if let Some(name) = &q.into {
            if self.io_ns_per_byte > 0.0 {
                crate::rowstore::simulated_io_wait(result.byte_size() as u64, self.io_ns_per_byte);
            }
            self.catalog.create_temp(name.clone(), result.clone())?;
            self.metrics.tables_materialized += 1;
        }
        self.metrics.add_elapsed(t0.elapsed());
        Ok(result)
    }

    /// Run a batch of **independent** Group By queries concurrently on up
    /// to `threads` scoped worker threads (one wave of the dependency-
    /// parallel plan executor). Results come back in query order.
    ///
    /// Workers read tables through shared catalog borrows and keep
    /// private metrics, merged race-free after the join; `elapsed_nanos`
    /// advances by the batch's wall-clock time, not the summed worker
    /// time. Queries with `into` set are materialized serially after the
    /// parallel section, in query order. No query in the batch may read a
    /// table another one materializes — that dependency belongs in the
    /// next wave.
    ///
    /// When the batch is narrower than `threads`, spare threads are used
    /// *inside* large un-indexed queries via
    /// [`crate::parallel_hash_group_by`].
    pub fn run_group_bys_parallel(
        &mut self,
        queries: &[GroupByQuery],
        threads: usize,
    ) -> Result<Vec<Table>> {
        let start = Instant::now();
        let (tables, batch_metrics) = crate::driver::run_batch(
            &self.catalog,
            self.io_ns_per_byte,
            queries,
            threads,
            self.strategy,
            self.cancel.as_ref(),
        )?;
        self.metrics += batch_metrics;
        self.metrics.queries_executed += queries.len() as u64;
        for (q, t) in queries.iter().zip(&tables) {
            if let Some(name) = &q.into {
                if self.io_ns_per_byte > 0.0 {
                    crate::rowstore::simulated_io_wait(t.byte_size() as u64, self.io_ns_per_byte);
                }
                self.catalog.create_temp(name.clone(), t.clone())?;
                self.metrics.tables_materialized += 1;
            }
        }
        self.metrics.add_elapsed(start.elapsed());
        Ok(tables)
    }

    /// Run several Group Bys over the same input in **one shared scan**
    /// (the server-side execution style of §5.1: PipeHash-like shared
    /// scans across the members of a GROUPING SETS). Under row-store
    /// emulation the input's scan I/O is paid once, not once per query.
    /// Results are returned in order and are not materialized.
    pub fn run_shared_group_bys(
        &mut self,
        input: &str,
        groupings: &[Vec<String>],
        aggs: &[crate::agg::AggSpec],
    ) -> Result<Vec<Table>> {
        self.check_cancelled()?;
        let start = Instant::now();
        // Arc clone: a shared handle, not a copy of the rows. Owning the
        // handle keeps borrows simple while `self.metrics` is mutated.
        let table = self.catalog.table_arc(input)?;
        let ords: Vec<Vec<usize>> = groupings
            .iter()
            .map(|cols| {
                cols.iter()
                    .map(|n| table.schema().index_of(n))
                    .collect::<gbmqo_storage::Result<_>>()
            })
            .collect::<gbmqo_storage::Result<_>>()?;
        if self.io_ns_per_byte > 0.0 {
            std::hint::black_box(crate::rowstore::full_scan_tax(&table));
            let bytes = table.byte_size() as u64;
            crate::rowstore::simulated_io_wait(bytes, self.io_ns_per_byte);
            self.metrics.bytes_scanned += bytes;
        }
        let results = crate::shared::shared_scan_group_by(&table, &ords, aggs, &mut self.metrics)?;
        self.metrics.queries_executed += groupings.len() as u64;
        self.metrics.add_elapsed(start.elapsed());
        Ok(results)
    }

    /// Materialize `table` as a temp table, charging simulated write I/O
    /// when row-store emulation is active.
    pub fn materialize_temp(&mut self, name: &str, table: Table) -> Result<()> {
        if self.io_ns_per_byte > 0.0 {
            crate::rowstore::simulated_io_wait(table.byte_size() as u64, self.io_ns_per_byte);
        }
        self.catalog.create_temp(name.to_string(), table)?;
        self.metrics.tables_materialized += 1;
        Ok(())
    }

    /// Run a selection over a table (§5.1.1's pushed-down selection),
    /// optionally materializing the result. Charges scan (and write) I/O
    /// under row-store emulation.
    pub fn run_filter(
        &mut self,
        input: &str,
        predicate: &crate::filter::Predicate,
        into: Option<&str>,
    ) -> Result<Table> {
        let start = Instant::now();
        // Arc clone, not a row-data copy (the input may be a large base
        // table; see gbmqo_storage::Catalog::table_arc).
        let table = self.catalog.table_arc(input)?;
        if self.io_ns_per_byte > 0.0 {
            std::hint::black_box(crate::rowstore::full_scan_tax(&table));
            let bytes = table.byte_size() as u64;
            crate::rowstore::simulated_io_wait(bytes, self.io_ns_per_byte);
            self.metrics.bytes_scanned += bytes;
        }
        let result = crate::filter::filter(&table, predicate, &mut self.metrics)?;
        self.metrics.queries_executed += 1;
        if let Some(name) = into {
            self.materialize_temp(name, result.clone())?;
        }
        self.metrics.add_elapsed(start.elapsed());
        Ok(result)
    }

    /// Drop a temp table produced by an earlier `INTO`.
    pub fn drop_temp(&mut self, name: &str) -> Result<()> {
        Ok(self.catalog.drop_temp(name)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbmqo_storage::{Column, DataType, Field, IndexKind, Schema, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64(vec![1, 1, 2, 2, 2]),
                Column::from_i64(vec![7, 8, 7, 7, 9]),
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("r", t).unwrap();
        c
    }

    #[test]
    fn run_returns_results() {
        let mut e = Engine::new(catalog());
        let r = e
            .run_group_by(&GroupByQuery::count_star("r", &["a"]))
            .unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(e.metrics().queries_executed, 1);
        assert_eq!(e.metrics().tables_materialized, 0);
    }

    #[test]
    fn into_materializes_temp_table() {
        let mut e = Engine::new(catalog());
        let q = GroupByQuery::count_star("r", &["a", "b"]).into_temp("t_ab");
        e.run_group_by(&q).unwrap();
        assert!(e.catalog().contains("t_ab"));
        assert_eq!(e.metrics().tables_materialized, 1);
        assert!(e.catalog().accounting().current_temp_bytes > 0);

        // re-aggregate from the temp
        let r = e
            .run_group_by(&GroupByQuery {
                input: "t_ab".into(),
                group_cols: vec!["b".into()],
                aggs: vec![AggSpec::sum_count()],
                into: None,
                estimated_groups: None,
            })
            .unwrap();
        let direct = e
            .run_group_by(&GroupByQuery::count_star("r", &["b"]))
            .unwrap();
        let norm = |t: &Table| {
            let mut v: Vec<(Value, i64)> = (0..t.num_rows())
                .map(|i| (t.value(i, 0), t.value(i, 1).as_int().unwrap()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&r), norm(&direct));

        e.drop_temp("t_ab").unwrap();
        assert!(!e.catalog().contains("t_ab"));
        assert_eq!(e.catalog().accounting().current_temp_bytes, 0);
    }

    #[test]
    fn index_is_used_when_it_serves() {
        let mut e = Engine::new(catalog());
        e.catalog_mut()
            .create_index("r", "ix_a", IndexKind::NonClustered, vec![0])
            .unwrap();
        let with_index = e
            .run_group_by(&GroupByQuery::count_star("r", &["a"]))
            .unwrap();
        let mut v: Vec<(i64, i64)> = (0..with_index.num_rows())
            .map(|i| {
                (
                    with_index.value(i, 0).as_int().unwrap(),
                    with_index.value(i, 1).as_int().unwrap(),
                )
            })
            .collect();
        v.sort();
        assert_eq!(v, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn parallel_batch_matches_serial_and_materializes() {
        let mut serial = Engine::new(catalog());
        let mut par = Engine::new(catalog());
        let queries = vec![
            GroupByQuery::count_star("r", &["a"]),
            GroupByQuery::count_star("r", &["b"]).into_temp("t_b"),
            GroupByQuery::count_star("r", &["a", "b"]),
        ];
        let par_tables = par.run_group_bys_parallel(&queries, 4).unwrap();
        let norm = |t: &Table| {
            let mut v: Vec<Vec<Value>> = (0..t.num_rows())
                .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
                .collect();
            v.sort();
            v
        };
        for (q, pt) in queries.iter().zip(&par_tables) {
            let st = serial.run_group_by(q).unwrap();
            assert_eq!(norm(&st), norm(pt));
        }
        assert!(par.catalog().contains("t_b"));
        assert_eq!(par.metrics().queries_executed, 3);
        assert_eq!(par.metrics().tables_materialized, 1);
        assert_eq!(par.metrics().rows_scanned, serial.metrics().rows_scanned);
        par.drop_temp("t_b").unwrap();
        serial.drop_temp("t_b").unwrap();
    }

    #[test]
    fn range_scan_aggregates_only_the_slice() {
        let mut e = Engine::new(catalog());
        // full table: a=1 ×2, a=2 ×3. Tail slice [2,5): a=2 ×3.
        let r = e
            .run_group_by_range(&GroupByQuery::count_star("r", &["a"]), 2, 3)
            .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 0), Value::Int(2));
        assert_eq!(r.value(0, 1), Value::Int(3));
        assert_eq!(e.metrics().delta_rows, 3);
        assert_eq!(e.metrics().queries_executed, 1);
        // empty range: zero groups, still counted as a query
        let empty = e
            .run_group_by_range(&GroupByQuery::count_star("r", &["a"]), 5, 0)
            .unwrap();
        assert_eq!(empty.num_rows(), 0);
        // out-of-range rejected
        assert!(e
            .run_group_by_range(&GroupByQuery::count_star("r", &["a"]), 4, 5)
            .is_err());
    }

    #[test]
    fn missing_table_and_column_error() {
        let mut e = Engine::new(catalog());
        assert!(e
            .run_group_by(&GroupByQuery::count_star("ghost", &["a"]))
            .is_err());
        assert!(e
            .run_group_by(&GroupByQuery::count_star("r", &["ghost"]))
            .is_err());
    }

    #[test]
    fn attached_token_cancels_queries() {
        let mut e = Engine::new(catalog());
        let token = CancelToken::new();
        e.set_cancel_token(Some(token.clone()));
        assert!(e.check_cancelled().is_ok());
        // not tripped yet: queries run normally
        e.run_group_by(&GroupByQuery::count_star("r", &["a"]))
            .unwrap();
        token.cancel();
        assert!(e.check_cancelled().is_err());
        let err = e
            .run_group_by(&GroupByQuery::count_star("r", &["a"]))
            .unwrap_err();
        assert_eq!(err, crate::ExecError::Cancelled { timed_out: false });
        // detach: back to normal
        e.set_cancel_token(None);
        e.run_group_by(&GroupByQuery::count_star("r", &["a"]))
            .unwrap();
    }

    #[test]
    fn reset_metrics_clears_counters() {
        let mut e = Engine::new(catalog());
        e.run_group_by(&GroupByQuery::count_star("r", &["a"]))
            .unwrap();
        assert!(e.metrics().queries_executed > 0);
        e.reset_metrics();
        assert_eq!(e.metrics(), ExecMetrics::new());
    }
}
