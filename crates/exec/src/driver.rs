//! Batch execution of independent Group By queries on scoped threads.
//!
//! The GB-MQO plan tree is a DAG of Group By edges; all edges whose
//! source table is already materialized are independent and can run
//! concurrently (the paper's §5.1 server-side integration leaves this
//! to the host DBMS's scheduler — here we are the scheduler). The
//! driver runs one wave of such edges: every worker owns a disjoint
//! subset of the queries, reads its input tables through shared
//! `&Catalog` borrows, and accumulates private [`ExecMetrics`] that the
//! coordinator merges after the join, so no locks are taken anywhere.
//!
//! When a wave has fewer queries than available threads, the spare
//! threads flow into intra-query parallelism (the radix kernel's
//! partitioned pass 2, or [`crate::parallel_hash_group_by`] under the
//! Scalar strategy) so a single large edge still uses the whole machine.

use crate::agg::AggSpec;
use crate::cancel::CancelToken;
use crate::engine::GroupByQuery;
use crate::error::Result;
use crate::metrics::ExecMetrics;
use crate::radix::{group_by_with_strategy, GroupByStrategy};
use gbmqo_storage::{Catalog, Table};

/// Inputs below this many rows are not worth intra-query partitioning.
const INNER_PARALLEL_MIN_ROWS: usize = 16 * 1024;

/// A query with its catalog lookups done up front, so workers touch the
/// catalog only through these shared borrows.
struct Resolved<'a> {
    table: &'a Table,
    cols: Vec<usize>,
    aggs: &'a [AggSpec],
    /// Index order serving the grouping, if any.
    order: Option<&'a [u32]>,
    /// Simulated scan I/O to pay (row-store emulation), 0 when off.
    io_bytes: u64,
    io_ns_per_byte: f64,
    /// Threads this query may use internally.
    inner_threads: usize,
    /// Kernel selection for un-indexed groupings.
    strategy: GroupByStrategy,
    /// Optimizer distinct-group estimate, threaded to the radix kernel.
    estimated_groups: Option<u64>,
}

impl Resolved<'_> {
    fn run(&self, cancel: Option<&CancelToken>, metrics: &mut ExecMetrics) -> Result<Table> {
        // Per-query cancellation boundary: a worker draining its strided
        // queue stops picking up new queries once the token trips.
        crate::cancel::check(cancel)?;
        if self.io_ns_per_byte > 0.0 {
            if self.order.is_none() {
                std::hint::black_box(crate::rowstore::full_scan_tax(self.table));
            }
            crate::rowstore::simulated_io_wait(self.io_bytes, self.io_ns_per_byte);
            metrics.bytes_scanned += self.io_bytes;
        }
        // Intra-query partition parallelism uses `inner_threads` — the
        // share of the wave's thread budget this edge was handed — so
        // plan-level wave parallelism and in-kernel parallelism draw
        // from one pool instead of oversubscribing the machine.
        group_by_with_strategy(
            self.table,
            &self.cols,
            self.aggs,
            self.order,
            self.strategy,
            self.inner_threads,
            self.estimated_groups,
            cancel,
            metrics,
        )
    }
}

/// Run `queries` concurrently on up to `threads` workers, returning the
/// result tables in query order plus the merged worker metrics.
///
/// The queries must be independent: none may read a table that another
/// one in the same batch materializes. `into` targets are *not*
/// materialized here (the catalog is shared read-only across workers);
/// the caller materializes them after the batch returns.
///
/// The merged metrics carry summed counters but `elapsed_nanos = 0`:
/// summing per-worker wall time would double-count overlapping work, so
/// the caller records the batch's wall-clock time instead.
pub(crate) fn run_batch(
    catalog: &Catalog,
    io_ns_per_byte: f64,
    queries: &[GroupByQuery],
    threads: usize,
    strategy: GroupByStrategy,
    cancel: Option<&CancelToken>,
) -> Result<(Vec<Table>, ExecMetrics)> {
    let threads = threads.max(1);
    let mut resolved: Vec<Resolved<'_>> = Vec::with_capacity(queries.len());
    // Spare threads flow into intra-query partitioning when the wave is
    // narrower than the machine.
    let inner = if queries.is_empty() {
        1
    } else {
        (threads / queries.len()).max(1)
    };
    for q in queries {
        let table = catalog.table(&q.input)?;
        let cols: Vec<usize> = q
            .group_cols
            .iter()
            .map(|n| table.schema().index_of(n))
            .collect::<gbmqo_storage::Result<_>>()?;
        let order = catalog
            .index_serving(&q.input, &cols)
            .map(|idx| idx.perm.as_slice());
        let io_bytes = if io_ns_per_byte > 0.0 {
            match catalog.index_serving(&q.input, &cols) {
                Some(idx) => idx
                    .key_cols
                    .iter()
                    .map(|&c| table.column(c).byte_size() as u64)
                    .sum(),
                None => table.byte_size() as u64,
            }
        } else {
            0
        };
        let inner_threads = if order.is_none() && table.num_rows() >= INNER_PARALLEL_MIN_ROWS {
            inner
        } else {
            1
        };
        resolved.push(Resolved {
            table,
            cols,
            aggs: &q.aggs,
            order,
            io_bytes,
            io_ns_per_byte,
            inner_threads,
            strategy,
            estimated_groups: q.estimated_groups,
        });
    }

    // Per-worker output: its metrics plus the (query index, result) pairs
    // it owned under the strided assignment.
    type WorkerOutput = (ExecMetrics, Vec<(usize, Result<Table>)>);
    let workers = threads.min(resolved.len()).max(1);
    let outputs: Vec<WorkerOutput> = if workers <= 1 {
        // Serial fallback: no reason to pay thread spawn for one worker.
        let mut m = ExecMetrics::new();
        let out = resolved
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.run(cancel, &mut m)))
            .collect();
        vec![(m, out)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wid| {
                    let resolved = &resolved;
                    scope.spawn(move || {
                        let mut m = ExecMetrics::new();
                        let mut out = Vec::new();
                        // Strided ownership: worker w takes queries
                        // w, w+W, w+2W, … — deterministic and disjoint.
                        let mut i = wid;
                        while i < resolved.len() {
                            out.push((i, resolved[i].run(cancel, &mut m)));
                            i += workers;
                        }
                        (m, out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        })
    };

    let mut metrics = ExecMetrics::new();
    let mut slots: Vec<Option<Table>> = (0..resolved.len()).map(|_| None).collect();
    let mut first_err = None;
    for (m, out) in outputs {
        metrics += m;
        for (i, r) in out {
            match r {
                Ok(t) => slots[i] = Some(t),
                // Keep the error from the earliest query for determinism.
                Err(e) => match first_err {
                    Some((j, _)) if j < i => {}
                    _ => first_err = Some((i, e)),
                },
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    metrics.elapsed_nanos = 0;
    let tables = slots
        .into_iter()
        .map(|t| t.expect("no error, so every slot filled"))
        .collect();
    Ok((tables, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_by::group_by;
    use gbmqo_storage::{Column, DataType, Field, Schema, Value};

    fn catalog(rows: i64) -> Catalog {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ])
        .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::from_i64((0..rows).map(|i| i % 7).collect()),
                Column::from_i64((0..rows).map(|i| i % 11).collect()),
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("r", t).unwrap();
        c
    }

    fn norm(t: &Table) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = (0..t.num_rows())
            .map(|r| (0..t.num_columns()).map(|c| t.value(r, c)).collect())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn batch_matches_serial_per_query() {
        let cat = catalog(5_000);
        let queries = vec![
            GroupByQuery::count_star("r", &["a"]),
            GroupByQuery::count_star("r", &["b"]),
            GroupByQuery::count_star("r", &["a", "b"]),
        ];
        let (tables, metrics) =
            run_batch(&cat, 0.0, &queries, 4, GroupByStrategy::Auto, None).unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(metrics.rows_scanned, 3 * 5_000);
        assert_eq!(metrics.elapsed_nanos, 0);
        for (q, t) in queries.iter().zip(&tables) {
            let mut m = ExecMetrics::new();
            let table = cat.table("r").unwrap();
            let cols: Vec<usize> = q
                .group_cols
                .iter()
                .map(|n| table.schema().index_of(n).unwrap())
                .collect();
            let serial = group_by(table, &cols, &q.aggs, None, &mut m).unwrap();
            assert_eq!(norm(t), norm(&serial), "{:?}", q.group_cols);
        }
    }

    #[test]
    fn single_query_uses_inner_parallelism() {
        let cat = catalog(40_000);
        let queries = vec![GroupByQuery::count_star("r", &["a", "b"])];
        let (tables, _) = run_batch(&cat, 0.0, &queries, 8, GroupByStrategy::Auto, None).unwrap();
        assert_eq!(tables[0].num_rows(), 77);
    }

    #[test]
    fn missing_table_errors_cleanly() {
        let cat = catalog(10);
        let queries = vec![GroupByQuery::count_star("ghost", &["a"])];
        assert!(run_batch(&cat, 0.0, &queries, 4, GroupByStrategy::Auto, None).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let cat = catalog(10);
        let (tables, _) = run_batch(&cat, 0.0, &[], 4, GroupByStrategy::Auto, None).unwrap();
        assert!(tables.is_empty());
    }
}
