//! Property-based tests over the storage layer's core invariants.

use gbmqo_storage::{
    sort_permutation, Column, ColumnBuilder, DataType, Field, KeyEncoder, Schema, Table, Value,
};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        5 => (-50i64..50).prop_map(Value::Int),
        5 => (-10i32..10).prop_map(Value::Date),
        5 => prop::sample::select(vec!["a", "b", "cc", "dd", "e"]).prop_map(Value::str),
    ]
}

fn column_strategy(len: usize) -> impl Strategy<Value = (DataType, Vec<Value>)> {
    prop_oneof![
        Just(DataType::Int64),
        Just(DataType::Date32),
        Just(DataType::Utf8),
    ]
    .prop_flat_map(move |dt| {
        let elem = value_strategy().prop_filter("type match", move |v| {
            v.is_null() || v.data_type() == Some(dt)
        });
        prop::collection::vec(elem, len..=len).prop_map(move |vals| (dt, vals))
    })
}

fn build_column(dt: DataType, vals: &[Value]) -> Column {
    let mut b = ColumnBuilder::new(dt);
    for v in vals {
        b.push(v).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder → column → value() roundtrips every input value.
    #[test]
    fn column_roundtrip((dt, vals) in column_strategy(40)) {
        let col = build_column(dt, &vals);
        prop_assert_eq!(col.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(&col.value(i), v);
        }
        prop_assert_eq!(col.null_count(), vals.iter().filter(|v| v.is_null()).count());
    }

    /// The key encoding is injective per column: two rows encode equally
    /// iff their values are equal.
    #[test]
    fn key_encoding_is_injective((dt, vals) in column_strategy(30)) {
        let col = build_column(dt, &vals);
        let mut enc = KeyEncoder::new();
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                let same_key = enc.encode(&[&col], i) == enc.encode(&[&col], j);
                prop_assert_eq!(same_key, vals[i] == vals[j], "rows {} vs {}", i, j);
                prop_assert_eq!(col.rows_equal(i, j), vals[i] == vals[j]);
            }
        }
    }

    /// Sorting produces a permutation ordered per Value's total order
    /// (NULLS FIRST), and gather applies it faithfully.
    #[test]
    fn sort_permutation_orders_values((dt, vals) in column_strategy(30)) {
        let schema = Schema::new(vec![Field::new("x", dt)]).unwrap();
        let table = Table::new(schema, vec![build_column(dt, &vals)]).unwrap();
        let perm = sort_permutation(&table, &[0]);
        // a permutation…
        let mut seen = perm.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..vals.len() as u32).collect::<Vec<_>>());
        // …in sorted order
        let sorted = table.gather(&perm);
        for w in 0..vals.len().saturating_sub(1) {
            prop_assert!(sorted.value(w, 0) <= sorted.value(w + 1, 0));
        }
    }

    /// gather(project) == project(gather) and both preserve cell values.
    #[test]
    fn gather_project_commute(
        (dt, vals) in column_strategy(20),
        picks in prop::collection::vec(0u32..20, 0..15),
    ) {
        let schema = Schema::new(vec![
            Field::new("x", dt),
            Field::new("row", DataType::Int64),
        ])
        .unwrap();
        let rows = Column::from_i64((0..vals.len() as i64).collect());
        let table = Table::new(schema, vec![build_column(dt, &vals), rows]).unwrap();
        let a = table.gather(&picks).project(&[1, 0]);
        let b = table.project(&[1, 0]).gather(&picks);
        prop_assert_eq!(a.num_rows(), b.num_rows());
        for r in 0..a.num_rows() {
            for c in 0..2 {
                prop_assert_eq!(a.value(r, c), b.value(r, c));
            }
        }
    }
}
