//! Hash-disjoint sharding of base tables.
//!
//! A sharded table is stored as N parts routed by a salted hash of each
//! row's *values* in the shard-key columns. Rows that agree on the key
//! columns always land in the same shard, so the shards hold disjoint
//! group sets for any grouping that covers the shard key: Group By
//! results over such groupings concatenate across shards with no
//! re-aggregation (the merge-elision rule), and every other grouping
//! merges by re-aggregating per-shard partials — the paper's §7
//! aggregate-union argument applied across shards.
//!
//! Routing hashes resolved values, never dictionary codes: a delta
//! appended later carries its own dictionary, and the same string must
//! route to the same shard as the base rows it joins.

use crate::column::{Column, ColumnData};
use crate::error::{Result, StorageError};
use crate::table::Table;
use rustc_hash::{FxHashSet, FxHasher};
use std::hash::Hasher;

/// Sharding metadata the catalog keeps per sharded table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDesc {
    /// Names of the columns whose values route rows to shards.
    pub key_cols: Vec<String>,
    /// Number of hash-disjoint shards (a power of two ≥ 2).
    pub shard_count: u32,
}

/// Salt folded into every routing hash so shard routing stays
/// uncorrelated with the unsalted row-key hash the radix group-by
/// kernel uses to scatter rows *within* a shard (identical bits would
/// collapse the kernel's partitions to one per shard).
const SHARD_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Catalog name of shard `shard` of the sharded table `table`.
pub fn shard_table_name(table: &str, shard: u32) -> String {
    format!("__gbmqo_shard_{table}_{shard}")
}

/// splitmix64 finalizer: FxHasher's output is weak in its high bits for
/// short inputs, and routing reads only the top `log2(shards)` bits.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_row(key_cols: &[&Column], row: usize) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(SHARD_SALT);
    for col in key_cols {
        if col.is_null(row) {
            h.write_u8(0);
            continue;
        }
        h.write_u8(1);
        match col.data() {
            ColumnData::Int64(v) => h.write_i64(v[row]),
            ColumnData::Float64(v) => {
                // normalize -0.0 so SQL-equal values route identically
                let bits = if v[row] == 0.0 { 0 } else { v[row].to_bits() };
                h.write_u64(bits);
            }
            ColumnData::Utf8 { codes, dict } => {
                let s = dict.get(codes[row]);
                h.write_usize(s.len());
                h.write(s.as_bytes());
            }
            ColumnData::Date32(v) => h.write_i32(v[row]),
        }
    }
    mix(h.finish())
}

/// Shard assignment per row: the top `log2(shards)` bits of a salted
/// value hash over the key columns. `shards` must be a power of two;
/// `shards <= 1` routes every row to shard 0.
pub fn route_rows(key_cols: &[&Column], num_rows: usize, shards: u32) -> Vec<u32> {
    debug_assert!(shards.is_power_of_two(), "shard count must be 2^k");
    if shards <= 1 {
        return vec![0; num_rows];
    }
    let shift = 64 - shards.trailing_zeros();
    (0..num_rows)
        .map(|r| (hash_row(key_cols, r) >> shift) as u32)
        .collect()
}

/// Split `table` into `shards` hash-disjoint parts routed by `key_cols`.
/// Parts come back in shard order; empty shards are empty tables.
pub fn split_table(table: &Table, key_cols: &[String], shards: u32) -> Result<Vec<Table>> {
    if !shards.is_power_of_two() {
        return Err(StorageError::Malformed(format!(
            "shard count must be a power of two, got {shards}"
        )));
    }
    if shards <= 1 {
        return Ok(vec![table.clone()]);
    }
    let cols: Vec<&Column> = key_cols
        .iter()
        .map(|n| table.schema().index_of(n).map(|o| table.column(o)))
        .collect::<Result<_>>()?;
    let routes = route_rows(&cols, table.num_rows(), shards);
    let mut indices: Vec<Vec<u32>> = vec![Vec::new(); shards as usize];
    for (row, &s) in routes.iter().enumerate() {
        indices[s as usize].push(row as u32);
    }
    Ok(indices.iter().map(|idx| table.gather(idx)).collect())
}

/// Default shard key: the column with the most distinct values over a
/// strided sample of at most 64Ki rows (ties break to the lowest
/// ordinal). High cardinality spreads groups evenly across shards and
/// keeps the merge-elision rule applicable to the groupings most likely
/// to dominate result sizes.
pub fn select_shard_key(table: &Table) -> Option<String> {
    if table.num_columns() == 0 {
        return None;
    }
    let rows = table.num_rows();
    let step = (rows / 65_536).max(1);
    let mut best_ord = 0;
    let mut best_distinct = 0usize;
    for c in 0..table.num_columns() {
        let col = [table.column(c)];
        let mut seen = FxHashSet::default();
        let mut r = 0;
        while r < rows {
            seen.insert(hash_row(&col, r));
            r += step;
        }
        if seen.len() > best_distinct {
            best_distinct = seen.len();
            best_ord = c;
        }
    }
    Some(table.schema().field(best_ord).name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ])
        .unwrap();
        let names: Vec<String> = (0..500).map(|i| format!("user-{}", i % 40)).collect();
        Table::new(
            schema,
            vec![
                Column::from_i64((0..500).collect()),
                Column::from_strs(&names),
            ],
        )
        .unwrap()
    }

    #[test]
    fn split_partitions_all_rows_disjointly() {
        let t = sample();
        let parts = split_table(&t, &["name".into()], 4).unwrap();
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Table::num_rows).sum();
        assert_eq!(total, t.num_rows());
        // every row of shard s routes back to s
        for (s, part) in parts.iter().enumerate() {
            let col = [part.column_by_name("name").unwrap()];
            for &r in &route_rows(&col, part.num_rows(), 4) {
                assert_eq!(r as usize, s);
            }
        }
        // no shard hogs everything: 40 names over 4 shards should spread
        assert!(parts.iter().all(|p| p.num_rows() > 0));
    }

    #[test]
    fn routing_hashes_string_values_not_codes() {
        // Same values interned in a different order get different codes;
        // routing must agree anyway (append deltas carry fresh dicts).
        let base = Column::from_strs(&["alpha", "beta", "gamma"]);
        let delta = Column::from_strs(&["gamma", "beta", "alpha"]);
        let rb = route_rows(&[&base], 3, 8);
        let rd = route_rows(&[&delta], 3, 8);
        assert_eq!(rb[0], rd[2]);
        assert_eq!(rb[1], rd[1]);
        assert_eq!(rb[2], rd[0]);
    }

    #[test]
    fn one_shard_is_identity_and_non_power_of_two_rejected() {
        let t = sample();
        let one = split_table(&t, &["id".into()], 1).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].num_rows(), t.num_rows());
        assert!(split_table(&t, &["id".into()], 3).is_err());
        assert!(split_table(&t, &["ghost".into()], 4).is_err());
    }

    #[test]
    fn nulls_route_consistently() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]).unwrap();
        let mut b = crate::table::TableBuilder::new(schema);
        for i in 0..100 {
            let v = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(i % 11)
            };
            b.push_row(&[v]).unwrap();
        }
        let t = b.finish().unwrap();
        let parts = split_table(&t, &["k".into()], 4).unwrap();
        // all NULL rows share one shard (NULL is one group key)
        let null_shards: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.column(0).null_count() > 0)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(null_shards.len(), 1);
        let total: usize = parts.iter().map(Table::num_rows).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn select_shard_key_prefers_high_cardinality() {
        let t = sample(); // id: 500 distinct, name: 40 distinct
        assert_eq!(select_shard_key(&t).as_deref(), Some("id"));
        let empty = Table::empty(t.schema().clone());
        assert_eq!(select_shard_key(&empty).as_deref(), Some("id"));
    }
}
