//! Sort permutations over tables.

use crate::table::Table;
use std::cmp::Ordering;

/// Compute a stable permutation of row ids that orders `table` by the given
/// key column ordinals (ascending, NULLS FIRST).
///
/// The permutation is the backbone of non-clustered indexes and of
/// sort-based (streaming) aggregation.
pub fn sort_permutation(table: &Table, key_cols: &[usize]) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..table.num_rows() as u32).collect();
    let cols: Vec<&crate::column::Column> = key_cols.iter().map(|&c| table.column(c)).collect();
    perm.sort_by(|&a, &b| {
        for col in &cols {
            match col.cmp_rows(a as usize, b as usize) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    });
    perm
}

/// True if `perm` orders `table` by `key_cols` (ascending, NULLS FIRST).
pub fn is_sorted_by(table: &Table, key_cols: &[usize], perm: &[u32]) -> bool {
    let cols: Vec<&crate::column::Column> = key_cols.iter().map(|&c| table.column(c)).collect();
    perm.windows(2).all(|w| {
        cols.iter()
            .map(|c| c.cmp_rows(w[0] as usize, w[1] as usize))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
            != Ordering::Greater
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ])
        .unwrap();
        let mut tb = TableBuilder::new(schema);
        for (a, b) in [
            (Value::Int(3), Value::str("z")),
            (Value::Int(1), Value::str("y")),
            (Value::Null, Value::str("x")),
            (Value::Int(1), Value::str("a")),
        ] {
            tb.push_row(&[a, b]).unwrap();
        }
        tb.finish().unwrap()
    }

    #[test]
    fn single_key_sort_nulls_first() {
        let t = table();
        let p = sort_permutation(&t, &[0]);
        assert_eq!(p[0], 2); // NULL first
        let vals: Vec<Value> = p.iter().map(|&i| t.value(i as usize, 0)).collect();
        assert_eq!(
            vals,
            vec![Value::Null, Value::Int(1), Value::Int(1), Value::Int(3)]
        );
        assert!(is_sorted_by(&t, &[0], &p));
    }

    #[test]
    fn multi_key_sort_is_lexicographic() {
        let t = table();
        let p = sort_permutation(&t, &[0, 1]);
        // (NULL,x), (1,a), (1,y), (3,z)
        assert_eq!(p, vec![2, 3, 1, 0]);
        assert!(is_sorted_by(&t, &[0, 1], &p));
        assert!(!is_sorted_by(&t, &[0, 1], &[0, 1, 2, 3]));
    }

    #[test]
    fn stability_preserves_input_order_on_ties() {
        let t = table();
        let p = sort_permutation(&t, &[]);
        assert_eq!(p, vec![0, 1, 2, 3]); // no keys: identity (stable)
    }

    #[test]
    fn empty_table_sorts() {
        let t = Table::empty(table().schema().clone());
        assert!(sort_permutation(&t, &[0]).is_empty());
        assert!(is_sorted_by(&t, &[0], &[]));
    }
}
